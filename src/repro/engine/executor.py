"""The parallel experiment engine.

The :class:`Engine` turns lists of :class:`~repro.engine.spec.RunSpec` into
deterministic lists of :class:`~repro.engine.spec.RunResult`:

* **functional traces** (the expensive part — interpreting a workload and
  verifying it against its reference) are computed once per
  (workload, scale, seed), shared by every architecture model and every
  parameter sweep, and survive across processes in the content-addressed
  :class:`~repro.engine.cache.TraceCache`;
* **cycle results** are cached under the full spec identity (params +
  model + engine version), so re-running a report with a warm cache does
  no model evaluation either;
* :meth:`Engine.execute` is the throughput mode: with ``jobs > 1`` both
  phases fan out over a ``multiprocessing`` pool, chunked so each worker
  builds as few kernel instances as possible; results are reassembled in
  spec order, so parallel and serial runs are indistinguishable
  downstream;
* :meth:`Engine.stream` is the latency mode: it yields ``(index,
  RunResult)`` pairs *as workers finish* — a spec is simulated the moment
  its trace lands instead of behind a whole-batch trace barrier — and
  every input position is yielded exactly once, so callers can reassemble
  the deterministic spec order for reports.

:attr:`Engine.stats` counts what actually ran — ``traces_computed`` is the
number of workload functional simulations this engine performed.  With a
persistent cache, :meth:`Engine.record_run` appends those counters to the
cache's run log, where ``repro cache stats`` turns them into hit rates.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.baselines.base import CycleResult, KernelInstance
from repro.engine.batching import batch_key, group_specs
from repro.engine.cache import TraceCache
from repro.engine.spec import (
    ModelSpec,
    RunResult,
    RunSpec,
    trace_cache_key,
)
from repro.errors import EngineError
from repro.ir.trace import DynamicTrace
from repro.workloads import Workload, WorkloadInstance, get_workload

#: (workload short name, scale, seed) — identity of one functional trace.
TraceKey = Tuple[str, str, int]


class KernelRun:
    """One workload's cached execution (kernel + trace).

    ``instance`` (the input/reference binding) is built lazily: on a warm
    trace cache, experiments that only need the kernel never pay for
    random input generation and the Python reference implementation.
    """

    def __init__(self, workload: Workload, kernel: KernelInstance,
                 scale: str, seed: int,
                 instance: Optional[WorkloadInstance] = None) -> None:
        self.workload = workload
        self.kernel = kernel
        self.scale = scale
        self.seed = seed
        self._instance = instance

    @property
    def instance(self) -> WorkloadInstance:
        """The workload's input/reference binding.

        On a cache-hit path this rebinds fresh inputs without
        re-interpreting or re-checking — the trace was verified against
        the reference when it was recorded.
        """
        if self._instance is None:
            self._instance = self.workload.instance(
                self.scale, seed=self.seed
            )
        return self._instance


@dataclass
class EngineStats:
    """What one engine actually computed (persisted to the run log)."""

    traces_computed: int = 0   # workload functional simulations performed
    trace_cache_hits: int = 0  # traces served from the on-disk cache
    simulations: int = 0       # architecture model evaluations performed
    sim_cache_hits: int = 0    # cycle results served from the cache
    sim_memo_hits: int = 0     # re-lookups served from this engine's memo
    # Batch data-plane counters (repro.sim.batch): accrued when this
    # stats object is passed to ``simulate_batch(stats=...)`` — e.g. by
    # array-level harnesses; the engine's analytical models leave them 0.
    vector_evals: int = 0      # cohort firings priced with one ufunc call
    scalar_evals: int = 0      # cohort firings priced row-by-row
    fallback_rows: int = 0     # batch members re-simulated exactly
    tape_hits: int = 0         # cohorts served from the schedule-tape memo
    tape_records: int = 0      # schedule tapes recorded

    def as_dict(self) -> Dict[str, int]:
        return {
            "traces_computed": self.traces_computed,
            "trace_cache_hits": self.trace_cache_hits,
            "simulations": self.simulations,
            "sim_cache_hits": self.sim_cache_hits,
            "sim_memo_hits": self.sim_memo_hits,
            "vector_evals": self.vector_evals,
            "scalar_evals": self.scalar_evals,
            "fallback_rows": self.fallback_rows,
            "tape_hits": self.tape_hits,
            "tape_records": self.tape_records,
        }


# ----------------------------------------------------------------------
# Worker-process entry points (module-level: picklable under spawn too)
# ----------------------------------------------------------------------
_WORKER_TRACES: Dict[TraceKey, dict] = {}
_WORKER_KERNELS: Dict[TraceKey, KernelInstance] = {}
#: (workload, scale) -> shared placement memo (the batching law: the
#: CDFG and therefore every block's placement is seed-independent, so
#: one worker prices a whole seed sweep against one set of placements).
_WORKER_PLACEMENTS: Dict[Tuple[str, str], Dict] = {}


def _register_kernel_documents(documents) -> None:
    """Admit external kernel documents in this (worker) process.

    ``get_workload`` resolves ``kernel:`` tokens against a process-wide
    registry; fork-started workers inherit the parent's, but spawn
    starts clean, so every pool initializer re-registers the documents
    its tasks will need.  No-op (and import-free) without kernels.
    """
    if not documents:
        return
    from repro.kernels.registry import register_documents

    register_documents(
        documents.values() if isinstance(documents, dict) else documents
    )


def _trace_job(key: TraceKey) -> Tuple[TraceKey, dict]:
    """Interpret one workload, verify it, return its trace payload."""
    short, scale, seed = key
    try:
        instance = get_workload(short).instance(scale, seed=seed)
        instance.check()
        return key, instance.run().trace.to_payload()
    except Exception as error:
        raise _trace_error(key, error) from error


def _reset_tape_store() -> None:
    """Start pool workers from a cold schedule-tape memo.

    Fork-started workers inherit the parent's process-wide
    :class:`~repro.sim.batch.TapeStore`; clearing it keeps worker
    behaviour identical across fork and spawn (and bounds what a
    long-lived pool pins in memory).  Import is lazy: engines that
    never simulate arrays never load the sim stack.
    """
    from repro.sim.batch import default_tape_store

    default_tape_store().clear()


def _init_trace_worker(kernel_documents=None) -> None:
    _register_kernel_documents(kernel_documents)
    _reset_tape_store()


def _init_sim_worker(traces: Dict[TraceKey, dict],
                     kernel_documents=None) -> None:
    global _WORKER_TRACES, _WORKER_KERNELS, _WORKER_PLACEMENTS
    _WORKER_TRACES = traces
    _WORKER_KERNELS = {}
    _WORKER_PLACEMENTS = {}
    _register_kernel_documents(kernel_documents)
    _reset_tape_store()


def _kernel_from_payload(key: TraceKey, payload: dict) -> KernelInstance:
    short, scale, _seed = key
    workload = get_workload(short)
    cdfg = workload.build(workload.sizes(scale))
    kernel = KernelInstance(cdfg, DynamicTrace.from_payload(payload))
    kernel.share_placements(
        _WORKER_PLACEMENTS.setdefault((short, scale), {})
    )
    return kernel


def _simulate_with_memo(spec: RunSpec, trace_payload: dict) -> dict:
    """Price one spec, memoising its kernel instance per worker."""
    key = spec.trace_key()
    kernel = _WORKER_KERNELS.get(key)
    if kernel is None:
        kernel = _kernel_from_payload(key, trace_payload)
        _WORKER_KERNELS[key] = kernel
    return spec.model.build(spec.params).simulate(kernel).to_payload()


def _sim_job(item: Tuple[int, RunSpec]) -> Tuple[int, dict]:
    """Batch-mode pricing: traces come from worker initializer state."""
    index, spec = item
    try:
        return index, _simulate_with_memo(
            spec, _WORKER_TRACES[spec.trace_key()]
        )
    except Exception as error:
        raise _sim_error(spec, error) from error


def _stream_sim_chunk(specs: Sequence[RunSpec],
                      trace_payload: dict) -> List[dict]:
    """Streaming-mode pricing: the trace rides along with the task.

    Streaming submits simulations the moment a trace lands, before a
    batch-wide trace table exists, so the payload is an argument instead
    of worker initializer state.  One task carries a *chunk* of the
    trace's specs so the payload is pickled at most once per worker, not
    once per parameter point.
    """
    results = []
    for spec in specs:
        try:
            results.append(_simulate_with_memo(spec, trace_payload))
        except Exception as error:
            raise _sim_error(spec, error) from error
    return results


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _trace_error(key: TraceKey, error: BaseException) -> EngineError:
    if isinstance(error, EngineError):   # already named its spec
        return error
    short, scale, seed = key
    return EngineError(
        f"functional trace for workload={short!r} scale={scale!r} "
        f"seed={seed} failed: {error}"
    )


def _sim_error(spec: RunSpec, error: BaseException) -> EngineError:
    if isinstance(error, EngineError):   # already named its spec
        return error
    return EngineError(
        f"simulation of {spec.workload!r} @ {spec.scale!r} seed={spec.seed} "
        f"on model {spec.model.model!r} failed: {error}"
    )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class Engine:
    """Executes :class:`RunSpec` batches with caching and parallelism.

    ``cache_dir`` keeps the historical local-directory cache;
    ``backend`` attaches any ``CacheBackend`` instead (e.g. an
    ``HTTPBackend`` pointed at a ``repro serve`` cache server, which is
    how distributed workers share traces live).
    """

    def __init__(self, cache_dir=None, jobs: int = 1,
                 backend=None, grouping: bool = True,
                 group_size: Optional[int] = None) -> None:
        self.jobs = max(1, int(jobs))
        #: apply the batch grouping law (repro.engine.batching) when
        #: executing; off exists for differential testing only — both
        #: settings produce byte-identical results and records.
        self.grouping = bool(grouping)
        if group_size is not None and int(group_size) < 1:
            raise EngineError(
                f"group_size must be >= 1, got {group_size}"
            )
        #: optional cap on batch size under the grouping law
        #: (`repro bench --group-size`); None means unbounded.
        self.group_size = None if group_size is None else int(group_size)
        self.cache = TraceCache(cache_dir, backend=backend)
        self.stats = EngineStats()
        self._trace_payloads: Dict[TraceKey, dict] = {}
        self._instances: Dict[TraceKey, WorkloadInstance] = {}
        self._kernels: Dict[TraceKey, KernelInstance] = {}
        self._kernel_runs: Dict[TraceKey, KernelRun] = {}
        self._cycles: Dict[RunSpec, CycleResult] = {}
        #: (workload, scale) -> placement memo shared across the batch
        #: (every seed / latency variant of one program + geometry).
        self._placement_pools: Dict[Tuple[str, str], Dict] = {}

    # -- traces ----------------------------------------------------------
    def _compute_trace(self, key: TraceKey) -> None:
        """Interpret + verify one workload in-process, cache the trace."""
        short, scale, seed = key
        try:
            instance = get_workload(short).instance(scale, seed=seed)
            instance.check()
            payload = instance.run().trace.to_payload()
        except EngineError:
            raise
        except Exception as error:
            raise _trace_error(key, error) from error
        self._instances[key] = instance
        self._store_trace(key, payload)

    def _store_trace(self, key: TraceKey, payload: dict) -> None:
        self._trace_payloads[key] = payload
        self.cache.put(trace_cache_key(*key), payload)
        self.stats.traces_computed += 1

    def _lookup_trace(self, key: TraceKey) -> bool:
        """Pull one trace from the memo or cache; True when available."""
        if key in self._trace_payloads:
            return True
        payload = self.cache.get(trace_cache_key(*key))
        if payload is not None:
            self.stats.trace_cache_hits += 1
            self._trace_payloads[key] = payload
            return True
        return False

    @staticmethod
    def _kernel_documents(keys) -> Dict[str, dict]:
        """External kernel documents backing a set of trace keys/specs.

        Spawn-started pool workers cannot resolve ``kernel:`` tokens
        unless their initializer re-registers the documents; this
        collects them (token -> canonical document) for the pool
        ``initargs``.  Empty (without importing repro.kernels) when the
        batch has no external kernels.
        """
        tokens = {
            key[0] if isinstance(key, tuple) else key.workload
            for key in keys
        }
        kernel_tokens = sorted(t for t in tokens
                               if t.startswith("kernel:"))
        if not kernel_tokens:
            return {}
        from repro.kernels.registry import document_for

        return {token: document_for(token) for token in kernel_tokens}

    def _ensure_traces(self, keys: Set[TraceKey]) -> None:
        missing = [k for k in sorted(keys) if not self._lookup_trace(k)]
        if not missing:
            return
        if self.jobs > 1 and len(missing) > 1:
            ctx = _pool_context()
            with ctx.Pool(
                min(self.jobs, len(missing)),
                initializer=_init_trace_worker,
                initargs=(self._kernel_documents(missing),),
            ) as pool:
                computed = list(pool.imap_unordered(_trace_job, missing))
            for key, payload in computed:
                self._store_trace(key, payload)
        else:
            for key in missing:
                self._compute_trace(key)

    def _kernel(self, key: TraceKey) -> KernelInstance:
        if key not in self._kernels:
            self._ensure_traces({key})
            payload = self._trace_payloads[key]
            instance = self._instances.get(key)
            if instance is not None:
                cdfg = instance.cdfg
            else:
                short, scale, _seed = key
                workload = get_workload(short)
                cdfg = workload.build(workload.sizes(scale))
            kernel = KernelInstance(
                cdfg, DynamicTrace.from_payload(payload)
            )
            if self.grouping:
                short, scale, _seed = key
                kernel.share_placements(
                    self._placement_pools.setdefault((short, scale), {})
                )
            self._kernels[key] = kernel
        return self._kernels[key]

    def kernel_run(self, workload: Workload, scale: str = "small",
                   seed: int = 0) -> KernelRun:
        """One workload's verified execution (cached at every layer)."""
        key = (workload.short.lower(), scale, seed)
        if key not in self._kernel_runs:
            self._ensure_traces({key})
            self._kernel_runs[key] = KernelRun(
                workload=workload, kernel=self._kernel(key),
                scale=scale, seed=seed,
                instance=self._instances.get(key),
            )
        return self._kernel_runs[key]

    # -- cycle results ---------------------------------------------------
    def _lookup_cycles(self, spec: RunSpec) -> Tuple[Optional[CycleResult],
                                                     bool]:
        """(cached result or None, whether it came from this engine's
        memo rather than the cross-run cache)."""
        cached = self._cycles.get(spec)
        if cached is not None:
            return cached, True
        payload = self.cache.get(spec.cache_key())
        if payload is not None:
            cached = CycleResult.from_payload(payload)
            self._cycles[spec] = cached
            return cached, False
        return None, False

    def _store_cycles(self, spec: RunSpec, outcome: CycleResult) -> None:
        self._cycles[spec] = outcome
        self.cache.put(spec.cache_key(), outcome.to_payload())

    def execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Run every spec; results come back in spec order."""
        results: List[Optional[RunResult]] = [None] * len(specs)
        pending: Dict[RunSpec, List[int]] = {}
        for index, spec in enumerate(specs):
            cached, from_memo = self._lookup_cycles(spec)
            if cached is not None:
                # Memo re-reads within this engine (run_all prefetches,
                # then each experiment looks its specs up again) are not
                # evidence of a warm cache — count them apart.
                if from_memo:
                    self.stats.sim_memo_hits += 1
                else:
                    self.stats.sim_cache_hits += 1
                results[index] = RunResult(spec, cached, cached=True)
            else:
                pending.setdefault(spec, []).append(index)

        if pending:
            order = list(pending)
            if self.grouping:
                # Batch-compatible specs (same program + geometry, see
                # repro.engine.batching) run adjacently so they feed one
                # shared placement pool / kernel memo back to back.
                order = [
                    spec for batch in group_specs(order, self.group_size)
                    for spec in batch.specs
                ]
            self._ensure_traces({spec.trace_key() for spec in order})
            if self.jobs > 1 and len(order) > 1:
                needed = {spec.trace_key() for spec in order}
                traces = {k: self._trace_payloads[k] for k in needed}
                # Group a kernel's specs into one chunk so each worker
                # builds (and analyses) as few kernel instances as
                # possible — and, under the grouping law, so a batch's
                # members land on one worker's shared placement pool.
                items = sorted(
                    enumerate(order),
                    key=lambda item: (batch_key(item[1]),
                                      item[1].trace_key())
                    if self.grouping else item[1].trace_key(),
                )
                workers = min(self.jobs, len(order))
                chunk = -(-len(items) // workers)
                ctx = _pool_context()
                with ctx.Pool(
                    workers,
                    initializer=_init_sim_worker,
                    initargs=(traces, self._kernel_documents(needed)),
                ) as pool:
                    computed = list(pool.imap_unordered(
                        _sim_job, items, chunksize=chunk
                    ))
                by_index = dict(computed)
                outcomes = [
                    CycleResult.from_payload(by_index[i])
                    for i in range(len(order))
                ]
            else:
                outcomes = []
                for spec in order:
                    try:
                        model = spec.model.build(spec.params)
                        outcomes.append(
                            model.simulate(self._kernel(spec.trace_key()))
                        )
                    except Exception as error:
                        raise _sim_error(spec, error) from error
            self.stats.simulations += len(order)
            for spec, outcome in zip(order, outcomes):
                self._store_cycles(spec, outcome)
                for index in pending[spec]:
                    results[index] = RunResult(spec, outcome, cached=False)

        return list(results)

    # -- streaming -------------------------------------------------------
    def stream(self, specs: Sequence[RunSpec]
               ) -> Iterator[Tuple[int, RunResult]]:
        """Yield ``(index, result)`` pairs as results become available.

        Every input position is yielded exactly once (duplicates of one
        spec share a single simulation but each position still gets its
        pair); cached specs come first, in index order, then computed
        specs in completion order.  Unlike :meth:`execute`, a spec is
        priced the moment its trace lands — there is no batch-wide trace
        barrier — so time-to-first-result is one trace plus one worker's
        chunk of model evaluations, not the whole batch.  Collect and index-sort the
        pairs to recover the deterministic :meth:`execute` ordering.

        A failing worker raises :class:`~repro.errors.EngineError` naming
        the spec; records already completed are in the cache (writes are
        atomic and per-record), so a crashed stream never corrupts it.
        """
        pending: Dict[RunSpec, List[int]] = {}
        for index, spec in enumerate(specs):
            cached, from_memo = self._lookup_cycles(spec)
            if cached is not None:
                if from_memo:
                    self.stats.sim_memo_hits += 1
                else:
                    self.stats.sim_cache_hits += 1
                yield index, RunResult(spec, cached, cached=True)
            else:
                pending.setdefault(spec, []).append(index)
        if not pending:
            return

        groups: Dict[TraceKey, List[RunSpec]] = {}
        for spec in pending:
            groups.setdefault(spec.trace_key(), []).append(spec)
        ready = [key for key in sorted(groups) if self._lookup_trace(key)]
        missing = [key for key in sorted(groups)
                   if key not in self._trace_payloads]

        if self.jobs > 1 and len(pending) > 1:
            yield from self._stream_parallel(groups, ready, missing, pending)
            return
        for key in ready + missing:
            if key not in self._trace_payloads:
                self._compute_trace(key)
            kernel = self._kernel(key)
            for spec in groups[key]:
                try:
                    outcome = spec.model.build(spec.params).simulate(kernel)
                except Exception as error:
                    raise _sim_error(spec, error) from error
                self.stats.simulations += 1
                self._store_cycles(spec, outcome)
                for index in pending[spec]:
                    yield index, RunResult(spec, outcome, cached=False)

    def _stream_parallel(self, groups: Dict[TraceKey, List[RunSpec]],
                         ready: List[TraceKey], missing: List[TraceKey],
                         pending: Dict[RunSpec, List[int]]
                         ) -> Iterator[Tuple[int, RunResult]]:
        workers = min(self.jobs, len(pending) + len(missing))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context(),
            initializer=_init_trace_worker,
            initargs=(self._kernel_documents(groups),),
        ) as pool:
            trace_futures: Dict[object, TraceKey] = {}
            sim_futures: Dict[object, List[RunSpec]] = {}

            def submit_sims(key: TraceKey) -> List[object]:
                # Split the trace's specs over the workers: parallelism
                # is preserved, but the trace payload is pickled per
                # chunk, not per parameter point.
                payload = self._trace_payloads[key]
                specs = groups[key]
                size = -(-len(specs) // min(len(specs), workers))
                submitted = []
                for start in range(0, len(specs), size):
                    chunk = specs[start:start + size]
                    future = pool.submit(_stream_sim_chunk, chunk, payload)
                    sim_futures[future] = chunk
                    submitted.append(future)
                return submitted

            outstanding = set()
            for key in missing:
                future = pool.submit(_trace_job, key)
                trace_futures[future] = key
                outstanding.add(future)
            for key in ready:
                outstanding.update(submit_sims(key))

            try:
                while outstanding:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        error = future.exception()
                        if future in trace_futures:
                            key = trace_futures[future]
                            if error is not None:
                                raise _trace_error(key, error) from error
                            _key, payload = future.result()
                            self._store_trace(key, payload)
                            outstanding.update(submit_sims(key))
                        else:
                            chunk = sim_futures[future]
                            if error is not None:
                                # Worker-side failures are already
                                # EngineErrors naming their spec;
                                # anything else (a broken pool) gets the
                                # chunk's first spec as context.
                                raise _sim_error(chunk[0], error) \
                                    from error
                            for spec, payload in zip(chunk,
                                                     future.result()):
                                outcome = CycleResult.from_payload(
                                    payload
                                )
                                self.stats.simulations += 1
                                self._store_cycles(spec, outcome)
                                for index in pending[spec]:
                                    yield index, RunResult(
                                        spec, outcome, cached=False
                                    )
            except BaseException:
                # Drop queued work so the pool tears down promptly; the
                # cache stays valid (completed records were written
                # atomically, nothing else was).
                for future in trace_futures:
                    future.cancel()
                for future in sim_futures:
                    future.cancel()
                raise

    # -- working-set completeness (shard exports) ------------------------
    def prefetch_traces(self, specs: Sequence[RunSpec]) -> None:
        """Pull every spec's trace into this engine's working set.

        A warm persistent cache satisfies cycle lookups without ever
        reading traces, so a shard export built from such a run would be
        missing the trace records the merged report reads.  Touching each
        distinct trace key here (cache hit, or compute — in parallel with
        ``jobs > 1`` — as a last resort) makes the export self-contained
        regardless of cache warmth.
        """
        self._ensure_traces({spec.trace_key() for spec in specs})

    def ensure_trace(self, workload: str, scale: str, seed: int) -> bool:
        """Make one functional trace resident; True when computed here.

        The distributed worker's trace-task entry point: a cache hit
        (memory or backend) returns False without interpreting
        anything; a miss computes, verifies, and writes the trace
        through to the cache backend, so with a shared backend every
        other worker sees it immediately.
        """
        # Verbatim, like RunSpec.trace_key() and every execute() cache
        # path: lower-casing here (only) would store a mixed-case
        # workload's trace under a key no sim task ever looks up.
        key = (str(workload), str(scale), int(seed))
        if self._lookup_trace(key):
            return False
        self._compute_trace(key)
        return True

    # -- run accounting --------------------------------------------------
    def record_run(self, **context: object) -> None:
        """Persist this engine's counters to the cache run log.

        ``context`` (command, scale, seed, jobs, shard, ...) is stored
        alongside the :class:`EngineStats` so ``repro cache stats`` can
        attribute hit rates to runs.  No-op without a persistent cache.
        """
        if not self.cache.persistent:
            return
        record = dict(context)
        record["stats"] = self.stats.as_dict()
        self.cache.record_run(record)


# ----------------------------------------------------------------------
# Bench profiling (`repro bench --profile`)
# ----------------------------------------------------------------------
#: Schema tag carried by every profile document this build writes.
BENCH_PROFILE_SCHEMA = "repro.bench.profile/1"


class BenchProfiler:
    """Times a bench run's phases and emits the ``BENCH_*.json`` document.

    The perf trajectory's unit of record: wall-clock seconds plus the
    :class:`EngineStats` delta per phase, so a reader can tell a
    cold-trace run (``traces_computed > 0`` in the ``trace`` phase) from
    a warm-cache one (``trace_cache_hits`` / ``sim_cache_hits``) without
    comparing absolute times across machines.  The document schema is
    specified in docs/ENGINE.md ("Performance"); bump
    :data:`BENCH_PROFILE_SCHEMA` when it changes.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.phases: List[Dict[str, object]] = []
        self._started = time.perf_counter()
        self._created = time.time()  # schema: unix time the run started

    def phase(self, name: str, fn: Callable[[], object], *,
              specs: Optional[int] = None) -> object:
        """Run ``fn`` as the named phase; returns its result.

        Alongside the :class:`EngineStats` delta, any batch data-plane
        activity (``repro.sim.batch`` — schedule-tape record, follower
        replay, vectorized evaluation) that occurred in-process during
        the phase is reported as a ``batch_split`` dict of
        :class:`~repro.sim.batch.BatchStats` deltas, so a
        ``simulate:batch`` phase splits record vs replay vs vector-eval
        time.  Phases with no batch activity omit the key.
        """
        from repro.sim.batch import batch_stats

        before = self.engine.stats.as_dict()
        batch_before = batch_stats().as_dict()
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        after = self.engine.stats.as_dict()
        batch_after = batch_stats().as_dict()
        record: Dict[str, object] = {
            "phase": name,
            "seconds": seconds,
            "stats_delta": {
                key: after[key] - before[key]
                for key in after if after[key] != before[key]
            },
        }
        batch_split = {
            key: batch_after[key] - batch_before[key]
            for key in batch_after if batch_after[key] != batch_before[key]
        }
        if batch_split:
            record["batch_split"] = batch_split
        if specs is not None:
            record["specs"] = specs
        self.phases.append(record)
        return result

    def run_engine_phases(self, specs: Sequence[RunSpec]
                          ) -> List[RunResult]:
        """The engine-side phases of a profiled bench run.

        One ``trace`` phase ensures every distinct functional trace is
        resident (the expensive part on a cold cache); then every spec
        that shares its batch (program + geometry, the grouping law in
        ``repro.engine.batching``) with at least one other is priced in
        a single ``simulate:batch`` phase, and the remaining singletons
        get one ``simulate:<model>`` phase per architecture model.  Each
        spec is executed exactly once across the partitions, so the
        reassembled result list is exactly what one ``execute(specs)``
        batch returns.
        """
        self.phase(
            "trace", lambda: self.engine.prefetch_traces(specs),
            specs=len({spec.trace_key() for spec in specs}),
        )
        results: List[Optional[RunResult]] = [None] * len(specs)
        solo: List[Tuple[int, RunSpec]] = []
        batched: List[Tuple[int, RunSpec]] = []
        for batch in group_specs(specs, self.engine.group_size):
            target = batched if self.engine.grouping and len(batch) > 1 \
                else solo
            target.extend(zip(batch.indices, batch.specs))
        if batched:
            batch_specs = [spec for _index, spec in batched]
            outcomes = self.phase(
                "simulate:batch",
                lambda: self.engine.execute(batch_specs),
                specs=len(batched),
            )
            for (index, _spec), outcome in zip(batched, outcomes):
                results[index] = outcome
        by_model: Dict[str, List[Tuple[int, RunSpec]]] = {}
        for index, spec in sorted(solo):
            label = spec.model.label or spec.model.model
            by_model.setdefault(label, []).append((index, spec))
        for label, items in by_model.items():
            subspecs = [spec for _index, spec in items]
            outcomes = self.phase(
                f"simulate:{label}",
                lambda subspecs=subspecs: self.engine.execute(subspecs),
                specs=len(items),
            )
            for (index, _spec), outcome in zip(items, outcomes):
                results[index] = outcome
        return list(results)

    def document(self, *, scale: str, seed: int, jobs: int,
                 spec_count: int) -> Dict[str, object]:
        """The machine-readable profile (see docs/ENGINE.md for schema)."""
        from repro.engine.cache import ENGINE_VERSION

        return {
            "schema": BENCH_PROFILE_SCHEMA,
            "created": self._created,
            "engine_version": ENGINE_VERSION,
            "scale": scale,
            "seed": seed,
            "jobs": jobs,
            "spec_count": spec_count,
            "phases": self.phases,
            "total_seconds": time.perf_counter() - self._started,
            "engine_stats": self.engine.stats.as_dict(),
        }


# ----------------------------------------------------------------------
# Default engine (shared by experiments invoked without one)
# ----------------------------------------------------------------------
_DEFAULT: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide engine every experiment shares by default."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Engine()
    return _DEFAULT


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace (or, with None, reset) the process-wide default engine."""
    global _DEFAULT
    _DEFAULT = engine
