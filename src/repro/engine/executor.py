"""The parallel experiment engine.

The :class:`Engine` turns lists of :class:`~repro.engine.spec.RunSpec` into
deterministic lists of :class:`~repro.engine.spec.RunResult`:

* **functional traces** (the expensive part — interpreting a workload and
  verifying it against its reference) are computed once per
  (workload, scale, seed), shared by every architecture model and every
  parameter sweep, and survive across processes in the content-addressed
  :class:`~repro.engine.cache.TraceCache`;
* **cycle results** are cached under the full spec identity (params +
  model + engine version), so re-running a report with a warm cache does
  no model evaluation either;
* with ``jobs > 1`` both phases fan out over a ``multiprocessing`` pool;
  results are reassembled in spec order, so parallel and serial runs are
  indistinguishable downstream.

:attr:`Engine.stats` counts what actually ran — ``traces_computed`` is the
number of workload functional simulations this engine performed, the
counter the warm-cache acceptance check reads from the JSON export.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import CycleResult, KernelInstance
from repro.engine.cache import (
    ENGINE_VERSION,
    TraceCache,
    params_token,
)
from repro.engine.spec import ModelSpec, RunResult, RunSpec
from repro.ir.trace import DynamicTrace
from repro.workloads import Workload, WorkloadInstance, get_workload

#: (workload short name, scale, seed) — identity of one functional trace.
TraceKey = Tuple[str, str, int]


class KernelRun:
    """One workload's cached execution (kernel + trace).

    ``instance`` (the input/reference binding) is built lazily: on a warm
    trace cache, experiments that only need the kernel never pay for
    random input generation and the Python reference implementation.
    """

    def __init__(self, workload: Workload, kernel: KernelInstance,
                 scale: str, seed: int,
                 instance: Optional[WorkloadInstance] = None) -> None:
        self.workload = workload
        self.kernel = kernel
        self.scale = scale
        self.seed = seed
        self._instance = instance

    @property
    def instance(self) -> WorkloadInstance:
        """The workload's input/reference binding.

        On a cache-hit path this rebinds fresh inputs without
        re-interpreting or re-checking — the trace was verified against
        the reference when it was recorded.
        """
        if self._instance is None:
            self._instance = self.workload.instance(
                self.scale, seed=self.seed
            )
        return self._instance


@dataclass
class EngineStats:
    """What one engine actually computed (exposed in the JSON export)."""

    traces_computed: int = 0   # workload functional simulations performed
    trace_cache_hits: int = 0  # traces served from the on-disk cache
    simulations: int = 0       # architecture model evaluations performed
    sim_cache_hits: int = 0    # cycle results served from the cache
    sim_memo_hits: int = 0     # re-lookups served from this engine's memo

    def as_dict(self) -> Dict[str, int]:
        return {
            "traces_computed": self.traces_computed,
            "trace_cache_hits": self.trace_cache_hits,
            "simulations": self.simulations,
            "sim_cache_hits": self.sim_cache_hits,
            "sim_memo_hits": self.sim_memo_hits,
        }


# ----------------------------------------------------------------------
# Worker-process entry points (module-level: picklable under spawn too)
# ----------------------------------------------------------------------
_WORKER_TRACES: Dict[TraceKey, dict] = {}
_WORKER_KERNELS: Dict[TraceKey, KernelInstance] = {}


def _trace_job(key: TraceKey) -> Tuple[TraceKey, dict]:
    """Interpret one workload, verify it, return its trace payload."""
    short, scale, seed = key
    instance = get_workload(short).instance(scale, seed=seed)
    instance.check()
    return key, instance.run().trace.to_payload()


def _init_sim_worker(traces: Dict[TraceKey, dict]) -> None:
    global _WORKER_TRACES, _WORKER_KERNELS
    _WORKER_TRACES = traces
    _WORKER_KERNELS = {}


def _kernel_from_payload(key: TraceKey, payload: dict) -> KernelInstance:
    short, scale, _seed = key
    workload = get_workload(short)
    cdfg = workload.build(workload.sizes(scale))
    return KernelInstance(cdfg, DynamicTrace.from_payload(payload))


def _sim_job(item: Tuple[int, RunSpec]) -> Tuple[int, dict]:
    """Price one spec against its (worker-memoised) kernel instance."""
    index, spec = item
    key = spec.trace_key()
    kernel = _WORKER_KERNELS.get(key)
    if kernel is None:
        kernel = _kernel_from_payload(key, _WORKER_TRACES[key])
        _WORKER_KERNELS[key] = kernel
    model = spec.model.build(spec.params)
    return index, model.simulate(kernel).to_payload()


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class Engine:
    """Executes :class:`RunSpec` batches with caching and parallelism."""

    def __init__(self, cache_dir=None, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = TraceCache(cache_dir)
        self.stats = EngineStats()
        self._trace_payloads: Dict[TraceKey, dict] = {}
        self._instances: Dict[TraceKey, WorkloadInstance] = {}
        self._kernels: Dict[TraceKey, KernelInstance] = {}
        self._kernel_runs: Dict[TraceKey, KernelRun] = {}
        self._cycles: Dict[RunSpec, CycleResult] = {}

    # -- cache keys ------------------------------------------------------
    @staticmethod
    def _trace_cache_key(key: TraceKey) -> Dict[str, object]:
        short, scale, seed = key
        return {
            "kind": "trace", "version": ENGINE_VERSION,
            "workload": short, "scale": scale, "seed": seed,
        }

    @staticmethod
    def _cycles_cache_key(spec: RunSpec) -> Dict[str, object]:
        return {
            "kind": "cycles", "version": ENGINE_VERSION,
            "workload": spec.workload, "scale": spec.scale,
            "seed": spec.seed, "model": spec.model.token(),
            "params": params_token(spec.params),
        }

    # -- traces ----------------------------------------------------------
    def _ensure_traces(self, keys: Set[TraceKey]) -> None:
        missing: List[TraceKey] = []
        for key in sorted(keys):
            if key in self._trace_payloads:
                continue
            payload = self.cache.get(self._trace_cache_key(key))
            if payload is not None:
                self.stats.trace_cache_hits += 1
                self._trace_payloads[key] = payload
                continue
            missing.append(key)
        if not missing:
            return
        if self.jobs > 1 and len(missing) > 1:
            ctx = _pool_context()
            with ctx.Pool(min(self.jobs, len(missing))) as pool:
                computed = list(pool.imap_unordered(_trace_job, missing))
        else:
            computed = []
            for key in missing:
                short, scale, seed = key
                instance = get_workload(short).instance(scale, seed=seed)
                instance.check()
                self._instances[key] = instance
                computed.append((key, instance.run().trace.to_payload()))
        for key, payload in computed:
            self._trace_payloads[key] = payload
            self.cache.put(self._trace_cache_key(key), payload)
        self.stats.traces_computed += len(missing)

    def _kernel(self, key: TraceKey) -> KernelInstance:
        if key not in self._kernels:
            self._ensure_traces({key})
            payload = self._trace_payloads[key]
            instance = self._instances.get(key)
            if instance is not None:
                cdfg = instance.cdfg
            else:
                short, scale, _seed = key
                workload = get_workload(short)
                cdfg = workload.build(workload.sizes(scale))
            self._kernels[key] = KernelInstance(
                cdfg, DynamicTrace.from_payload(payload)
            )
        return self._kernels[key]

    def kernel_run(self, workload: Workload, scale: str = "small",
                   seed: int = 0) -> KernelRun:
        """One workload's verified execution (cached at every layer)."""
        key = (workload.short.lower(), scale, seed)
        if key not in self._kernel_runs:
            self._ensure_traces({key})
            self._kernel_runs[key] = KernelRun(
                workload=workload, kernel=self._kernel(key),
                scale=scale, seed=seed,
                instance=self._instances.get(key),
            )
        return self._kernel_runs[key]

    # -- cycle results ---------------------------------------------------
    def execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Run every spec; results come back in spec order."""
        results: List[Optional[RunResult]] = [None] * len(specs)
        pending: Dict[RunSpec, List[int]] = {}
        for index, spec in enumerate(specs):
            cached = self._cycles.get(spec)
            from_memo = cached is not None
            if cached is None:
                payload = self.cache.get(self._cycles_cache_key(spec))
                if payload is not None:
                    cached = CycleResult.from_payload(payload)
                    self._cycles[spec] = cached
            if cached is not None:
                # Memo re-reads within this engine (run_all prefetches,
                # then each experiment looks its specs up again) are not
                # evidence of a warm cache — count them apart.
                if from_memo:
                    self.stats.sim_memo_hits += 1
                else:
                    self.stats.sim_cache_hits += 1
                results[index] = RunResult(spec, cached, cached=True)
            else:
                pending.setdefault(spec, []).append(index)

        if pending:
            order = list(pending)
            self._ensure_traces({spec.trace_key() for spec in order})
            if self.jobs > 1 and len(order) > 1:
                needed = {spec.trace_key() for spec in order}
                traces = {k: self._trace_payloads[k] for k in needed}
                # Group a kernel's specs into one chunk so each worker
                # builds (and analyses) as few kernel instances as possible.
                items = sorted(
                    enumerate(order), key=lambda item: item[1].trace_key()
                )
                workers = min(self.jobs, len(order))
                chunk = -(-len(items) // workers)
                ctx = _pool_context()
                with ctx.Pool(
                    workers,
                    initializer=_init_sim_worker, initargs=(traces,),
                ) as pool:
                    computed = list(pool.imap_unordered(
                        _sim_job, items, chunksize=chunk
                    ))
                by_index = dict(computed)
                outcomes = [
                    CycleResult.from_payload(by_index[i])
                    for i in range(len(order))
                ]
            else:
                outcomes = []
                for spec in order:
                    model = spec.model.build(spec.params)
                    outcomes.append(
                        model.simulate(self._kernel(spec.trace_key()))
                    )
            self.stats.simulations += len(order)
            for spec, outcome in zip(order, outcomes):
                self._cycles[spec] = outcome
                self.cache.put(
                    self._cycles_cache_key(spec), outcome.to_payload()
                )
                for index in pending[spec]:
                    results[index] = RunResult(spec, outcome, cached=False)

        return list(results)


# ----------------------------------------------------------------------
# Default engine (shared by experiments invoked without one)
# ----------------------------------------------------------------------
_DEFAULT: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide engine every experiment shares by default."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Engine()
    return _DEFAULT


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace (or, with None, reset) the process-wide default engine."""
    global _DEFAULT
    _DEFAULT = engine
