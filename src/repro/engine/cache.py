"""Content-addressed on-disk cache for traces and cycle results.

Every record is addressed by the SHA-256 of its canonical-JSON key — the
key spells out everything the record depends on (workload name, scale,
seed, architecture parameters, model identity, engine version), so a
change to any input lands on a different address and stale records are
simply never read again.  Records are JSON files under
``<root>/<hh>/<hash>.json`` (two-level fan-out), written atomically via a
temp file + rename so concurrent worker processes can share one
directory.

The cache also keeps an in-memory layer, making it usable as the engine's
process-local memo when no directory is configured.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.arch.params import ArchParams

#: Bump to invalidate every cached record (trace format or any execution
#: model changed in a result-affecting way).
ENGINE_VERSION = 1


def params_token(params: ArchParams) -> Dict[str, object]:
    """JSON-safe identity of an :class:`ArchParams` (cache key component)."""
    return dataclasses.asdict(params)


def fingerprint(key: Mapping[str, object]) -> str:
    """SHA-256 content address of a canonical-JSON key."""
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TraceCache:
    """Two-layer (memory + optional disk) content-addressed store."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else None
        self._memory: Dict[str, object] = {}
        self.disk_hits = 0
        self.memory_hits = 0
        self.misses = 0

    @property
    def persistent(self) -> bool:
        return self.root is not None

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    def get(self, key: Mapping[str, object]) -> Optional[object]:
        """Stored payload for ``key``, or None."""
        digest = fingerprint(key)
        if digest in self._memory:
            self.memory_hits += 1
            return self._memory[digest]
        if self.root is not None:
            path = self._path(digest)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = None
            if payload is not None:
                self._memory[digest] = payload
                self.disk_hits += 1
                return payload
        self.misses += 1
        return None

    def put(self, key: Mapping[str, object], payload: object) -> None:
        """Store ``payload`` under ``key`` (atomic on disk)."""
        digest = fingerprint(key)
        self._memory[digest] = payload
        if self.root is None:
            return
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
