"""Content-addressed on-disk cache for traces and cycle results.

Every record is addressed by the SHA-256 of its canonical-JSON key — the
key spells out everything the record depends on (workload name, scale,
seed, architecture parameters, model identity, engine version), so a
change to any input lands on a different address and stale records are
simply never read again.  Records are JSON *envelopes*
``{"key": ..., "payload": ...}`` under ``<root>/<hh>/<hash>.json``
(two-level fan-out): the embedded key makes the store introspectable, so
:mod:`repro.engine.cache_admin` can report per-kind statistics and prune
by age, engine version, or size budget without guessing what a file is.
Writes go through a temp file + rename so concurrent worker processes can
share one directory.

Storage is pluggable: the directory store described above is the
:class:`~repro.engine.distributed.backend.LocalBackend`, one
implementation of the ``CacheBackend`` protocol (get/put/contains/
iter-keys over envelopes).  Passing ``backend=`` instead of a root —
e.g. an :class:`~repro.engine.distributed.backend.HTTPBackend` pointed
at a ``repro serve`` cache server — makes machines share records live;
the envelope validation here is backend-independent, so a corrupt or
foreign record is a miss regardless of where it came from.

The cache also keeps an in-memory layer (digest -> payload), making it
usable as the engine's process-local memo when no directory is
configured; :meth:`TraceCache.snapshot` / :meth:`TraceCache.preload`
expose that layer so shard exports can ship a run's working set to a
merge step on another machine.

Alongside the records, a persistent cache keeps an append-only run log
(``runs.jsonl``): one JSON line per engine run with its hit/miss
counters, which ``repro cache stats`` turns into per-run and aggregate
hit rates.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional

try:                              # POSIX-only; the lock degrades to a
    import fcntl                  # best-effort no-op elsewhere
except ImportError:               # pragma: no cover
    fcntl = None

from repro.arch.params import ArchParams
from repro.errors import ConfigurationError

#: Bump to invalidate every cached record (trace format or any execution
#: model changed in a result-affecting way).  v2: records became
#: ``{"key", "payload"}`` envelopes — v1 caches held raw payloads at the
#: same addresses, which the envelope check would silently treat as
#: misses; the bump moves every key to a fresh address and lets
#: ``repro cache prune --drop-stale-versions`` reclaim the old files.
#: v3: the architecture-description layer added ``control_topology`` to
#: every params token, so every cycle-record key changed shape; the bump
#: makes the orphaned v2 records reclaimable instead of invisible.
ENGINE_VERSION = 3

#: Append-only per-run statistics log kept next to the records.
RUN_LOG_NAME = "runs.jsonl"

#: Compact the run log once it grows past this size...
RUN_LOG_MAX_BYTES = 1 << 20

#: ...keeping only this many newest records, so a long-lived shared
#: cache directory's log stays bounded (the records themselves are the
#: cache; the log is diagnostics).
RUN_LOG_KEEP = 256


def params_token(params: ArchParams) -> Dict[str, object]:
    """JSON-safe identity of an :class:`ArchParams` (cache key component)."""
    return dataclasses.asdict(params)


def fingerprint(key: Mapping[str, object]) -> str:
    """SHA-256 content address of a canonical-JSON key."""
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TraceCache:
    """Two-layer (memory + optional backend) content-addressed store.

    ``root`` keeps the historical constructor: a directory path backed
    by the atomic on-disk store.  ``backend`` accepts any
    ``CacheBackend`` (e.g. an HTTP client for a shared cache server);
    the two are mutually exclusive.  Run-log bookkeeping is a property
    of the *local directory* deployment — a remote backend's server owns
    its own directory — so it stays tied to ``root``.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 backend: Optional[object] = None) -> None:
        if root is not None and backend is not None:
            raise ConfigurationError(
                "TraceCache takes a directory root or a backend, not both"
            )
        self.root = Path(root) if root is not None else None
        if backend is None and self.root is not None:
            # Function-level import: repro.engine.cache is imported while
            # repro.engine.distributed initializes, and vice versa.
            from repro.engine.distributed.backend import LocalBackend
            backend = LocalBackend(self.root)
        self.backend = backend
        self._memory: Dict[str, object] = {}
        self.disk_hits = 0
        self.memory_hits = 0
        self.misses = 0

    @property
    def persistent(self) -> bool:
        """Whether this cache is backed by a *local* directory (and so
        carries a run log and participates in size budgeting)."""
        return self.root is not None

    # ------------------------------------------------------------------
    def get(self, key: Mapping[str, object]) -> Optional[object]:
        """Stored payload for ``key``, or None."""
        digest = fingerprint(key)
        if digest in self._memory:
            self.memory_hits += 1
            return self._memory[digest]
        if self.backend is not None:
            record = self.backend.get(digest)
            # Only well-formed envelopes count; anything else (corrupt
            # file, foreign JSON) is a miss and gets recomputed.
            if isinstance(record, dict) and "payload" in record:
                payload = record["payload"]
                self._memory[digest] = payload
                self.disk_hits += 1
                return payload
        self.misses += 1
        return None

    def put(self, key: Mapping[str, object], payload: object) -> None:
        """Store ``payload`` under ``key`` (write-through to the backend)."""
        digest = fingerprint(key)
        self._memory[digest] = payload
        if self.backend is not None:
            self.backend.put(digest, {"key": dict(key), "payload": payload})

    # -- working-set transfer (shard exports) --------------------------
    def snapshot(self) -> Dict[str, object]:
        """Everything this cache holds in memory, as digest -> payload.

        After an engine run this is exactly the run's working set: every
        trace and cycle record it computed *or* read.  A shard export is
        this dict plus identifying metadata.
        """
        return dict(self._memory)

    def preload(self, entries: Mapping[str, object]) -> None:
        """Seed the memory layer with digest -> payload entries.

        Content addressing does the matching: a later :meth:`get` whose
        key hashes to a preloaded digest is a memory hit, so a merge step
        can replay a report assembly without recomputing anything.
        """
        self._memory.update(entries)

    # -- per-run statistics log -----------------------------------------
    @property
    def run_log_path(self) -> Optional[Path]:
        return self.root / RUN_LOG_NAME if self.root is not None else None

    def record_run(self, record: Mapping[str, object]) -> None:
        """Append one run record to ``runs.jsonl`` (persistent only).

        The log self-compacts to its newest :data:`RUN_LOG_KEEP` records
        once it exceeds :data:`RUN_LOG_MAX_BYTES`, so it cannot become
        its own unbounded-growth footgun on a long-lived shared cache.
        """
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {"time": time.time()}
        entry.update(record)
        with self._run_log_lock():
            with open(self.run_log_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            try:
                oversized = (self.run_log_path.stat().st_size
                             > RUN_LOG_MAX_BYTES)
            except OSError:
                return
            if oversized:
                self._compact_run_log()

    @contextlib.contextmanager
    def _run_log_lock(self) -> Iterator[None]:
        """Serialize run-log mutations across processes.

        Compaction replaces the file, so appends must not interleave with
        it — parallel shard lanes sharing one cache directory would lose
        records.  The lock lives on a side file that is never replaced
        (locking ``runs.jsonl`` itself would pin a stale inode).
        """
        if fcntl is None:
            yield
            return
        lock_path = self.root / (RUN_LOG_NAME + ".lock")
        with open(lock_path, "w", encoding="utf-8") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _compact_run_log(self) -> None:
        """Rewrite the run log keeping only the newest records (atomic)."""
        try:
            lines = self.run_log_path.read_text(
                encoding="utf-8"
            ).splitlines()
        except OSError:
            return
        kept = lines[-RUN_LOG_KEEP:]
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("".join(line + "\n" for line in kept))
            os.replace(tmp, self.run_log_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def read_run_log(self) -> List[Dict[str, object]]:
        """Every recorded run, oldest first (malformed lines skipped)."""
        if self.root is None:
            return []
        try:
            lines = self.run_log_path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        records = []
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records
