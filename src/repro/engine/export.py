"""Machine-readable experiment exports (JSON / CSV).

The ASCII tables of :class:`~repro.experiments.common.ExperimentResult`
are for reading; these exporters are for diffing and post-processing —
the golden-result regression tests snapshot the JSON form, and
``repro bench --format json`` attaches the engine statistics so a warm
cache run can prove it re-simulated nothing.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

import numpy as np


def _plain(value: object) -> object:
    """Coerce numpy scalars/arrays so payloads are pure-JSON types."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def result_payload(result) -> Dict[str, object]:
    """One :class:`ExperimentResult` as a JSON-safe dict."""
    return {
        "experiment": result.experiment,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [_plain(row) for row in result.rows],
        "summary": _plain(result.summary),
        "paper_claim": result.paper_claim,
        "notes": list(result.notes),
    }


def report_json(results: Sequence, *, stats: Optional[Dict[str, int]] = None,
                meta: Optional[Dict[str, object]] = None,
                indent: int = 2) -> str:
    """A whole report (plus engine stats) as one JSON document."""
    document: Dict[str, object] = {}
    if meta:
        document.update(_plain(meta))
    if stats is not None:
        document["engine_stats"] = dict(stats)
    document["experiments"] = [result_payload(r) for r in results]
    return json.dumps(document, indent=indent, sort_keys=False)


def report_csv(results: Sequence) -> str:
    """A whole report as CSV, one header+rows section per experiment."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for result in results:
        # Section headers are comment lines, not CSV records — write them
        # raw so a comma in a title does not get quoted.
        buffer.write(f"# {result.experiment}: {result.title}\n")
        writer.writerow(["experiment"] + list(result.columns))
        for row in result.rows:
            writer.writerow(
                [result.experiment]
                + [_plain(row.get(c, "")) for c in result.columns]
            )
        if result.summary:
            # Summaries carry different fields than the data rows, so
            # they form their own mini-section with a matching header.
            buffer.write(f"# {result.experiment}: summary\n")
            writer.writerow(["experiment", "summary_key", "summary_value"])
            for key, value in result.summary.items():
                writer.writerow([result.experiment, key, _plain(value)])
        writer.writerow([])
    return buffer.getvalue()
