"""Machine-readable experiment exports (JSON / CSV), and shard exports.

The ASCII tables of :class:`~repro.experiments.common.ExperimentResult`
are for reading; these exporters are for diffing and post-processing —
the golden-result regression tests snapshot the JSON form.  The report
documents carry only *content* (scale, seed, experiment payloads), never
run-environment facts like job counts or cache-hit counters, so batch,
streamed, warm-cache, and shard-merged invocations of ``repro bench``
emit byte-identical output (engine statistics live in the cache run log
and behind ``repro bench --stats``).

A **shard export** is one ``repro bench --shard K/N`` run's working set
— every content-addressed record the run computed or read, digest ->
payload — plus identifying metadata.  :func:`merge_shard_documents`
validates that a set of exports belongs together (same scale, seed,
engine version; shard indices covering ``1..N``) and unions the
entries; preloading that union into a fresh engine's cache replays the
canonical report assembly without recomputing anything.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import cache as _cache
from repro.errors import EngineError

#: Shard export file format marker / version.
SHARD_FORMAT = "repro-shard-export"
SHARD_FORMAT_VERSION = 1


def _plain(value: object) -> object:
    """Coerce numpy scalars/arrays so payloads are pure-JSON types."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def result_payload(result) -> Dict[str, object]:
    """One :class:`ExperimentResult` as a JSON-safe dict."""
    return {
        "experiment": result.experiment,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [_plain(row) for row in result.rows],
        "summary": _plain(result.summary),
        "paper_claim": result.paper_claim,
        "notes": list(result.notes),
    }


def report_json(results: Sequence, *, stats: Optional[Dict[str, int]] = None,
                meta: Optional[Dict[str, object]] = None,
                indent: int = 2) -> str:
    """A whole report (plus engine stats) as one JSON document."""
    document: Dict[str, object] = {}
    if meta:
        document.update(_plain(meta))
    if stats is not None:
        document["engine_stats"] = dict(stats)
    document["experiments"] = [result_payload(r) for r in results]
    return json.dumps(document, indent=indent, sort_keys=False)


def shard_export_document(engine, *, scale: str, seed: int,
                          shard: Optional[Tuple[int, int]] = None,
                          params=None, arch: Optional[str] = None,
                          kernels: Optional[Sequence] = None
                          ) -> Dict[str, object]:
    """One engine run's working set as a mergeable shard export.

    ``params`` (an :class:`~repro.arch.params.ArchParams`, or None for
    the default architecture) and ``arch`` (the variant name from an
    ``--arch`` description, if any) record which architecture the shard
    priced — the merge step re-derives the spec batch from the exports,
    so shards of different arch variants cannot be silently mixed.

    ``kernels`` (a sequence of loaded
    :class:`~repro.kernels.package.KernelPackage`) records which
    external kernel suite, if any, extended the shard's spec batch —
    as full canonical documents, so a merged export is self-contained:
    the merge step re-registers them without the original package
    directories on disk.
    """
    document = {
        "format": SHARD_FORMAT,
        "format_version": SHARD_FORMAT_VERSION,
        "engine_version": _cache.ENGINE_VERSION,
        "scale": scale,
        "seed": seed,
        "shard": list(shard) if shard is not None else None,
        "params": (_cache.params_token(params)
                   if params is not None else None),
        "arch": arch,
        "stats": engine.stats.as_dict(),
        "entries": engine.cache.snapshot(),
    }
    if kernels:
        document["kernels"] = [package.to_document()
                               for package in kernels]
    return document


def backend_export_document(backend, *, scale: str,
                            seed: int) -> Dict[str, object]:
    """A cache backend's whole store as a mergeable shard export.

    The bridge from the live distributed subsystem back to the
    file-based one: ``GET /export`` on a ``repro serve`` server renders
    its store through this, and the resulting document goes straight
    into ``repro bench --merge-shards`` — a worker fleet's working set
    can be archived and replayed offline like any shard export.
    Entries that are not well-formed envelopes are skipped, matching
    ``TraceCache``'s read-side validation.
    """
    entries: Dict[str, object] = {}
    for digest in backend.iter_keys():
        record = backend.get(digest)
        if isinstance(record, dict) and "payload" in record:
            entries[digest] = record["payload"]
    return {
        "format": SHARD_FORMAT,
        "format_version": SHARD_FORMAT_VERSION,
        "engine_version": _cache.ENGINE_VERSION,
        "scale": str(scale),
        "seed": int(seed),
        "shard": None,
        # A server's store may hold records from many jobs and arch
        # variants; no single params record applies, so the merge step
        # assembles with the architecture the driver asks for.
        "params": None,
        "arch": None,
        "entries": entries,
    }


def write_shard_export(path, document: Dict[str, object]) -> None:
    Path(path).write_text(
        json.dumps(document, sort_keys=True), encoding="utf-8"
    )


def read_shard_export(path) -> Dict[str, object]:
    """Load + validate one shard export file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise EngineError(f"unreadable shard export {path}: {error}") \
            from error
    if not isinstance(document, dict) \
            or document.get("format") != SHARD_FORMAT:
        raise EngineError(f"{path} is not a repro shard export")
    if document.get("format_version") != SHARD_FORMAT_VERSION:
        raise EngineError(
            f"{path}: shard export format version "
            f"{document.get('format_version')!r} not supported "
            f"(expected {SHARD_FORMAT_VERSION})"
        )
    if document.get("engine_version") != _cache.ENGINE_VERSION:
        raise EngineError(
            f"{path}: recorded with engine version "
            f"{document.get('engine_version')!r}, this build is "
            f"{_cache.ENGINE_VERSION} — re-run the shards"
        )
    missing = [name for name in ("scale", "seed", "entries")
               if name not in document]
    problem = None
    if missing:
        problem = f"missing {', '.join(missing)}"
    elif not isinstance(document["entries"], dict):
        problem = "entries is not a digest -> payload table"
    elif not isinstance(document["scale"], str) \
            or not isinstance(document["seed"], int):
        problem = "scale/seed are not a string/integer"
    elif document.get("shard") is not None and not (
            isinstance(document["shard"], list)
            and len(document["shard"]) == 2
            and all(isinstance(v, int) for v in document["shard"])):
        problem = f"shard coordinates {document.get('shard')!r} are " \
                  f"not a [K, N] pair"
    elif document.get("params") is not None \
            and not isinstance(document["params"], dict):
        problem = "params is not an architecture-parameter table"
    elif document.get("kernels") is not None and not (
            isinstance(document["kernels"], list)
            and all(isinstance(k, dict) for k in document["kernels"])):
        problem = "kernels is not a list of kernel documents"
    if problem is not None:
        raise EngineError(f"{path}: malformed shard export — {problem}")
    return document


def merge_shard_documents(documents: Sequence[Dict[str, object]]
                          ) -> Dict[str, object]:
    """Union a consistent, complete set of shard exports.

    Entries are content-addressed, so the union is conflict-free by
    construction; what can go wrong is humans mixing files, which is
    what the validation targets: every export must share one
    (scale, seed), and when shard coordinates are present they must use
    one shard count and cover every index ``1..N`` exactly once.
    """
    if not documents:
        raise EngineError("no shard exports to merge")
    scale_seed = {(doc["scale"], doc["seed"]) for doc in documents}
    if len(scale_seed) != 1:
        raise EngineError(
            f"shard exports disagree on (scale, seed): "
            f"{sorted(scale_seed)}"
        )
    # Shards of two arch variants partition two *different* spec
    # batches; a union of them is neither report.  Exports without a
    # params record (e.g. a server-side backend export) merge as the
    # default architecture.
    tokens = {json.dumps(doc.get("params"), sort_keys=True)
              for doc in documents if doc.get("params") is not None}
    if len(tokens) > 1:
        raise EngineError(
            "shard exports disagree on architecture parameters — "
            "merge one arch variant at a time"
        )
    params_token = (json.loads(tokens.pop()) if tokens else None)
    # Same argument as params: shards that priced different external
    # kernel suites partition different spec batches.  Kernel documents
    # are canonical JSON, so agreement is a string comparison.
    kernel_sets = {json.dumps(doc["kernels"], sort_keys=True)
                   for doc in documents if doc.get("kernels") is not None}
    if len(kernel_sets) > 1:
        raise EngineError(
            "shard exports disagree on external kernel suites — "
            "merge one kernel suite at a time"
        )
    kernels = json.loads(kernel_sets.pop()) if kernel_sets else None
    arch_names = {doc.get("arch") for doc in documents
                  if doc.get("arch") is not None}
    shards = [tuple(doc["shard"]) for doc in documents
              if doc.get("shard") is not None]
    if shards:
        counts = {count for _index, count in shards}
        if len(counts) != 1:
            raise EngineError(
                f"shard exports disagree on shard count: {sorted(counts)}"
            )
        count = counts.pop()
        indices = sorted(index for index, _count in shards)
        if indices != list(range(1, count + 1)):
            raise EngineError(
                f"shard exports cover shards {indices} of {count} — "
                f"need each of 1..{count} exactly once"
            )
    entries: Dict[str, object] = {}
    for document in documents:
        entries.update(document["entries"])
    (scale, seed), = scale_seed
    return {"scale": scale, "seed": seed, "shards": shards,
            "params": params_token,
            "arch": arch_names.pop() if len(arch_names) == 1 else None,
            "kernels": kernels,
            "entries": entries}


def report_csv(results: Sequence) -> str:
    """A whole report as CSV, one header+rows section per experiment."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for result in results:
        # Section headers are comment lines, not CSV records — write them
        # raw so a comma in a title does not get quoted.
        buffer.write(f"# {result.experiment}: {result.title}\n")
        writer.writerow(["experiment"] + list(result.columns))
        for row in result.rows:
            writer.writerow(
                [result.experiment]
                + [_plain(row.get(c, "")) for c in result.columns]
            )
        if result.summary:
            # Summaries carry different fields than the data rows, so
            # they form their own mini-section with a matching header.
            buffer.write(f"# {result.experiment}: summary\n")
            writer.writerow(["experiment", "summary_key", "summary_value"])
            for key, value in result.summary.items():
                writer.writerow([result.experiment, key, _plain(value)])
        writer.writerow([])
    return buffer.getvalue()
