"""The parallel experiment engine.

Layers (bottom up):

* :mod:`repro.engine.spec` — declarative :class:`RunSpec`/:class:`ModelSpec`
  enumeration of the (workload, scale, seed, model, params) space;
* :mod:`repro.engine.cache` — content-addressed on-disk cache for
  functional traces and cycle results;
* :mod:`repro.engine.executor` — the :class:`Engine`: batch execution with
  multiprocessing, deterministic result ordering, and run statistics;
* :mod:`repro.engine.export` — JSON/CSV report exports.

See ``docs/ENGINE.md`` for the cache layout and the CLI surface.
"""

from repro.engine.cache import ENGINE_VERSION, TraceCache, fingerprint
from repro.engine.executor import (
    Engine,
    EngineStats,
    KernelRun,
    default_engine,
    set_default_engine,
)
from repro.engine.export import report_csv, report_json, result_payload
from repro.engine.spec import MODEL_REGISTRY, ModelSpec, RunResult, RunSpec

__all__ = [
    "ENGINE_VERSION",
    "Engine",
    "EngineStats",
    "KernelRun",
    "MODEL_REGISTRY",
    "ModelSpec",
    "RunResult",
    "RunSpec",
    "TraceCache",
    "default_engine",
    "fingerprint",
    "report_csv",
    "report_json",
    "result_payload",
    "set_default_engine",
]
