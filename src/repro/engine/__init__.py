"""The parallel experiment engine.

Layers (bottom up):

* :mod:`repro.engine.spec` — declarative :class:`RunSpec`/:class:`ModelSpec`
  enumeration of the (workload, scale, seed, model, params) space, spec
  fingerprints, and fingerprint-prefix sharding;
* :mod:`repro.engine.cache` — content-addressed on-disk cache for
  functional traces and cycle results, plus the per-run statistics log;
* :mod:`repro.engine.cache_admin` — cache inventory, statistics, and
  pruning (the ``repro cache`` subcommand);
* :mod:`repro.engine.batching` — the grouping law: which specs may
  share batched work (same program + geometry), applied by the
  executor, the worker pool, and the profiler;
* :mod:`repro.engine.executor` — the :class:`Engine`: batch execution
  (:meth:`Engine.execute`) and streaming execution (:meth:`Engine.stream`)
  with multiprocessing, deterministic result ordering, and run statistics;
* :mod:`repro.engine.export` — JSON/CSV report exports and shard
  export/merge documents;
* :mod:`repro.engine.distributed` — the multi-machine layer: pluggable
  cache backends (local / memory / HTTP), the ``repro serve`` cache
  server + work-stealing coordinator, and the ``repro worker`` /
  ``repro bench --dispatch`` loops.

See ``docs/ENGINE.md`` for the cache layout and the CLI surface, and
``docs/DISTRIBUTED.md`` for the multi-machine subsystem.
"""

from repro.engine.batching import SpecBatch, batch_key, group_specs
from repro.engine.cache import ENGINE_VERSION, TraceCache, fingerprint
from repro.engine.distributed import (
    CacheBackend,
    Coordinator,
    HTTPBackend,
    LocalBackend,
    MemoryBackend,
)
from repro.engine.executor import (
    BENCH_PROFILE_SCHEMA,
    BenchProfiler,
    Engine,
    EngineStats,
    KernelRun,
    default_engine,
    set_default_engine,
)
from repro.engine.export import (
    backend_export_document,
    merge_shard_documents,
    read_shard_export,
    report_csv,
    report_json,
    result_payload,
    shard_export_document,
    write_shard_export,
)
from repro.engine.spec import (
    MODEL_REGISTRY,
    ModelSpec,
    RunResult,
    RunSpec,
    parse_shard,
    shard_of,
    shard_specs,
)

__all__ = [
    "BENCH_PROFILE_SCHEMA",
    "BenchProfiler",
    "CacheBackend",
    "Coordinator",
    "ENGINE_VERSION",
    "Engine",
    "EngineStats",
    "HTTPBackend",
    "KernelRun",
    "LocalBackend",
    "MODEL_REGISTRY",
    "MemoryBackend",
    "ModelSpec",
    "RunResult",
    "RunSpec",
    "SpecBatch",
    "TraceCache",
    "backend_export_document",
    "batch_key",
    "default_engine",
    "fingerprint",
    "group_specs",
    "merge_shard_documents",
    "parse_shard",
    "read_shard_export",
    "report_csv",
    "report_json",
    "result_payload",
    "set_default_engine",
    "shard_export_document",
    "shard_of",
    "shard_specs",
    "write_shard_export",
]
