"""The parallel experiment engine.

Layers (bottom up):

* :mod:`repro.engine.spec` — declarative :class:`RunSpec`/:class:`ModelSpec`
  enumeration of the (workload, scale, seed, model, params) space, spec
  fingerprints, and fingerprint-prefix sharding;
* :mod:`repro.engine.cache` — content-addressed on-disk cache for
  functional traces and cycle results, plus the per-run statistics log;
* :mod:`repro.engine.cache_admin` — cache inventory, statistics, and
  pruning (the ``repro cache`` subcommand);
* :mod:`repro.engine.executor` — the :class:`Engine`: batch execution
  (:meth:`Engine.execute`) and streaming execution (:meth:`Engine.stream`)
  with multiprocessing, deterministic result ordering, and run statistics;
* :mod:`repro.engine.export` — JSON/CSV report exports and shard
  export/merge documents.

See ``docs/ENGINE.md`` for the cache layout and the CLI surface.
"""

from repro.engine.cache import ENGINE_VERSION, TraceCache, fingerprint
from repro.engine.executor import (
    Engine,
    EngineStats,
    KernelRun,
    default_engine,
    set_default_engine,
)
from repro.engine.export import (
    merge_shard_documents,
    read_shard_export,
    report_csv,
    report_json,
    result_payload,
    shard_export_document,
    write_shard_export,
)
from repro.engine.spec import (
    MODEL_REGISTRY,
    ModelSpec,
    RunResult,
    RunSpec,
    parse_shard,
    shard_of,
    shard_specs,
)

__all__ = [
    "ENGINE_VERSION",
    "Engine",
    "EngineStats",
    "KernelRun",
    "MODEL_REGISTRY",
    "ModelSpec",
    "RunResult",
    "RunSpec",
    "TraceCache",
    "default_engine",
    "fingerprint",
    "merge_shard_documents",
    "parse_shard",
    "read_shard_export",
    "report_csv",
    "report_json",
    "result_payload",
    "set_default_engine",
    "shard_export_document",
    "shard_of",
    "shard_specs",
    "write_shard_export",
]
