"""Declarative run specifications.

A :class:`RunSpec` names one (workload, scale, seed, model, params) point of
the evaluation space without constructing anything: workloads by their
registry short name, models by a :class:`ModelSpec` (registry key plus
keyword options).  Specs are frozen, hashable, and picklable, so they can be
deduplicated, used as cache keys, and shipped to worker processes — the
experiments enumerate specs, the :class:`~repro.engine.executor.Engine`
decides where and whether each one actually runs.

A spec's full identity is its :meth:`RunSpec.cache_key` — the canonical
JSON mapping the content-addressed cache hashes — and
:meth:`RunSpec.fingerprint` is that hash.  The fingerprint doubles as the
sharding coordinate: :func:`shard_specs` partitions a batch into ``N``
disjoint, covering subsets by fingerprint prefix, so independent CI jobs
can each run ``repro bench --shard K/N`` against one shared cache and a
merge step can reassemble the canonical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.arch.params import ArchParams
from repro.engine import cache as _cache
from repro.baselines import (
    ArchModel,
    CycleResult,
    DataflowModel,
    IdealModel,
    MarionetteModel,
    RevelModel,
    RipTideModel,
    SoftbrainModel,
    TIAModel,
    VonNeumannModel,
)
from repro.errors import ConfigurationError

#: Architecture model registry: spec key -> model class.
MODEL_REGISTRY: Dict[str, Type[ArchModel]] = {
    "von_neumann": VonNeumannModel,
    "dataflow": DataflowModel,
    "softbrain": SoftbrainModel,
    "tia": TIAModel,
    "revel": RevelModel,
    "riptide": RipTideModel,
    "marionette": MarionetteModel,
    "ideal": IdealModel,
}

#: Registry keys whose class accepts feature toggles / a display name
#: (only Marionette is parameterisable; the baselines are fixed presets).
_CONFIGURABLE = frozenset({"marionette"})


@dataclass(frozen=True)
class ModelSpec:
    """One architecture model, named declaratively.

    ``options`` is a sorted tuple of (keyword, value) pairs so equal model
    configurations hash equally; ``label`` overrides the model's display
    name (it flows into :attr:`CycleResult.arch`, so it is part of the
    cache identity).
    """

    model: str
    options: Tuple[Tuple[str, object], ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.model not in MODEL_REGISTRY:
            raise ConfigurationError(
                f"unknown model {self.model!r}; "
                f"known: {sorted(MODEL_REGISTRY)}"
            )
        if (self.options or self.label) and (
                self.model not in _CONFIGURABLE):
            raise ConfigurationError(
                f"model {self.model!r} takes no options"
            )

    @classmethod
    def make(cls, model: str, label: Optional[str] = None,
             **options: object) -> "ModelSpec":
        return cls(model, tuple(sorted(options.items())), label)

    def build(self, params: ArchParams) -> ArchModel:
        """Instantiate the model for one parameter set."""
        kwargs = dict(self.options)
        if self.label is not None:
            kwargs["name"] = self.label
        return MODEL_REGISTRY[self.model](params, **kwargs)

    def token(self) -> Dict[str, object]:
        """JSON-safe identity (cache key component)."""
        return {
            "model": self.model,
            "options": [[k, v] for k, v in self.options],
            "label": self.label,
        }

    @classmethod
    def from_token(cls, token: Mapping[str, object]) -> "ModelSpec":
        """Rebuild a spec from its :meth:`token` (JSON round-trip safe)."""
        try:
            options = tuple(
                (str(key), value) for key, value in token["options"]
            )
            return cls(str(token["model"]), options, token.get("label"))
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed model token {token!r}: {error}"
            ) from error


def trace_cache_key(workload: str, scale: str,
                    seed: int) -> Dict[str, object]:
    """Cache key of one functional trace (parameter/model independent)."""
    return {
        "kind": "trace", "version": _cache.ENGINE_VERSION,
        "workload": workload, "scale": scale, "seed": seed,
    }


@dataclass(frozen=True)
class RunSpec:
    """One point of the evaluation space: workload x model x parameters."""

    workload: str          # workload registry short name ("gemm", "crc", ..)
    scale: str
    seed: int
    model: ModelSpec
    params: ArchParams

    def trace_key(self) -> Tuple[str, str, int]:
        """Identity of the functional trace this run replays (parameters
        and model do not affect functional execution)."""
        return (self.workload, self.scale, self.seed)

    def cache_key(self) -> Dict[str, object]:
        """Canonical-JSON identity of this spec's cycle result.

        Spells out every input the result depends on — any change to the
        workload, scale, seed, model (key, options, or label), any
        architecture parameter, or the engine version lands on a
        different content address.
        """
        return {
            "kind": "cycles", "version": _cache.ENGINE_VERSION,
            "workload": self.workload, "scale": self.scale,
            "seed": self.seed, "model": self.model.token(),
            "params": _cache.params_token(self.params),
        }

    def fingerprint(self) -> str:
        """SHA-256 content address of :meth:`cache_key` (also the
        sharding coordinate)."""
        return _cache.fingerprint(self.cache_key())

    # -- wire form (work dispatch) -------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe wire form, for shipping specs to remote workers.

        Unlike :meth:`cache_key` this is a *constructive* encoding —
        :meth:`from_payload` rebuilds an equal spec from it, so the
        dispatching client and a worker on another machine derive
        identical fingerprints and cache addresses.

        External kernels (``kernel:<name>@<fingerprint>`` workload
        tokens) additionally carry their full package document, so the
        receiving process can register and run a kernel it has never
        seen on disk.  The token already carries the content
        fingerprint, so the document does not change the cache key.
        """
        payload: Dict[str, object] = {
            "workload": self.workload, "scale": self.scale,
            "seed": self.seed, "model": self.model.token(),
            "params": _cache.params_token(self.params),
        }
        if self.workload.startswith("kernel:"):
            from repro.kernels.registry import document_for

            payload["kernel"] = document_for(self.workload)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_payload` output.

        A ``kernel`` document stanza is validated and registered
        process-wide before the spec is constructed, and must agree
        with the workload token — a payload claiming one kernel while
        shipping another is refused, not silently mis-cached.
        """
        document = payload.get("kernel") if isinstance(payload, Mapping) \
            else None
        if document is not None:
            from repro.kernels.registry import register_document

            token = register_document(document, "<run-spec payload>")
            if token != payload.get("workload"):
                raise ConfigurationError(
                    f"run-spec payload names workload "
                    f"{payload.get('workload')!r} but ships the kernel "
                    f"document of {token!r}"
                )
        try:
            return cls(
                workload=str(payload["workload"]),
                scale=str(payload["scale"]),
                seed=int(payload["seed"]),
                model=ModelSpec.from_token(payload["model"]),
                params=ArchParams(**payload["params"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed run-spec payload: {error}"
            ) from error


# ----------------------------------------------------------------------
# Fingerprint-prefix sharding
# ----------------------------------------------------------------------
#: Hex digits of the fingerprint used as the shard coordinate.  8 digits
#: (32 bits) keeps the modulus uniform for any sane shard count while
#: staying stable if the digest tail ever changes representation.
SHARD_PREFIX_HEX = 8


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``K/N`` shard selector into (index, count), 1-based.

    ``1/3`` is the first of three shards.  Raises
    :class:`~repro.errors.ConfigurationError` on malformed input.
    """
    parts = str(text).split("/")
    if len(parts) != 2:
        raise ConfigurationError(
            f"shard selector {text!r} is not of the form K/N"
        )
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"shard selector {text!r} is not of the form K/N"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ConfigurationError(
            f"shard selector {text!r} out of range (need 1 <= K <= N)"
        )
    return index, count


def shard_of(spec: "RunSpec", count: int) -> int:
    """This spec's 0-based shard assignment among ``count`` shards.

    Derived from the fingerprint prefix, so the partition is a pure
    function of spec content: every machine agrees on it without
    coordination, and it is independent of batch ordering.
    """
    return int(spec.fingerprint()[:SHARD_PREFIX_HEX], 16) % count


def shard_specs(specs: Sequence["RunSpec"], index: int,
                count: int) -> List["RunSpec"]:
    """The ``index``/``count`` (1-based) shard of a spec batch, in order.

    The ``1/N .. N/N`` shards of one batch are disjoint and cover it.
    """
    if count < 1 or not 1 <= index <= count:
        raise ConfigurationError(
            f"shard {index}/{count} out of range (need 1 <= K <= N)"
        )
    return [s for s in specs if shard_of(s, count) == index - 1]


@dataclass
class RunResult:
    """Outcome of one :class:`RunSpec`."""

    spec: RunSpec
    result: CycleResult
    cached: bool = False

    @property
    def cycles(self) -> int:
        return self.result.cycles
