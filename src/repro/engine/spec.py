"""Declarative run specifications.

A :class:`RunSpec` names one (workload, scale, seed, model, params) point of
the evaluation space without constructing anything: workloads by their
registry short name, models by a :class:`ModelSpec` (registry key plus
keyword options).  Specs are frozen, hashable, and picklable, so they can be
deduplicated, used as cache keys, and shipped to worker processes — the
experiments enumerate specs, the :class:`~repro.engine.executor.Engine`
decides where and whether each one actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Type

from repro.arch.params import ArchParams
from repro.baselines import (
    ArchModel,
    CycleResult,
    DataflowModel,
    IdealModel,
    MarionetteModel,
    RevelModel,
    RipTideModel,
    SoftbrainModel,
    TIAModel,
    VonNeumannModel,
)
from repro.errors import ConfigurationError

#: Architecture model registry: spec key -> model class.
MODEL_REGISTRY: Dict[str, Type[ArchModel]] = {
    "von_neumann": VonNeumannModel,
    "dataflow": DataflowModel,
    "softbrain": SoftbrainModel,
    "tia": TIAModel,
    "revel": RevelModel,
    "riptide": RipTideModel,
    "marionette": MarionetteModel,
    "ideal": IdealModel,
}

#: Registry keys whose class accepts feature toggles / a display name
#: (only Marionette is parameterisable; the baselines are fixed presets).
_CONFIGURABLE = frozenset({"marionette"})


@dataclass(frozen=True)
class ModelSpec:
    """One architecture model, named declaratively.

    ``options`` is a sorted tuple of (keyword, value) pairs so equal model
    configurations hash equally; ``label`` overrides the model's display
    name (it flows into :attr:`CycleResult.arch`, so it is part of the
    cache identity).
    """

    model: str
    options: Tuple[Tuple[str, object], ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.model not in MODEL_REGISTRY:
            raise ConfigurationError(
                f"unknown model {self.model!r}; "
                f"known: {sorted(MODEL_REGISTRY)}"
            )
        if (self.options or self.label) and (
                self.model not in _CONFIGURABLE):
            raise ConfigurationError(
                f"model {self.model!r} takes no options"
            )

    @classmethod
    def make(cls, model: str, label: Optional[str] = None,
             **options: object) -> "ModelSpec":
        return cls(model, tuple(sorted(options.items())), label)

    def build(self, params: ArchParams) -> ArchModel:
        """Instantiate the model for one parameter set."""
        kwargs = dict(self.options)
        if self.label is not None:
            kwargs["name"] = self.label
        return MODEL_REGISTRY[self.model](params, **kwargs)

    def token(self) -> Dict[str, object]:
        """JSON-safe identity (cache key component)."""
        return {
            "model": self.model,
            "options": [[k, v] for k, v in self.options],
            "label": self.label,
        }


@dataclass(frozen=True)
class RunSpec:
    """One point of the evaluation space: workload x model x parameters."""

    workload: str          # workload registry short name ("gemm", "crc", ..)
    scale: str
    seed: int
    model: ModelSpec
    params: ArchParams

    def trace_key(self) -> Tuple[str, str, int]:
        """Identity of the functional trace this run replays (parameters
        and model do not affect functional execution)."""
        return (self.workload, self.scale, self.seed)


@dataclass
class RunResult:
    """Outcome of one :class:`RunSpec`."""

    spec: RunSpec
    result: CycleResult
    cached: bool = False

    @property
    def cycles(self) -> int:
        return self.result.cycles
