"""The grouping law for batch execution of compatible RunSpecs.

Two specs may share batched work only when they evaluate the *same
program on the same geometry*: the workload and scale pin the CDFG (and
therefore every block's structure), and ``rows``/``cols`` pin the grid
the compiler places onto.  Everything else — seed, latency parameters,
model — may differ inside a batch: seeds change data, not structure, and
the spatial placement analysis (``KernelInstance.placement_ii``) is
already keyed by ``(block, rows, cols)`` alone, so members of one batch
can legally share a placement memo.  A mixed-arch sweep therefore
splits exactly at geometry boundaries and nowhere else.

The engine applies the law in :meth:`Engine.execute` (batch members are
simulated adjacently, feeding one shared placement pool per
``(workload, scale)``), in the worker pool (specs are chunked so a
batch lands on one worker), and in ``BenchProfiler`` (grouped specs are
timed as the ``simulate:batch`` phase).  Per-spec results, cache
records, and stats stay byte-identical to ungrouped execution —
``tests/test_sim_batch.py`` locks that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.spec import RunSpec

#: (workload, scale, rows, cols) — the identity under which specs batch.
BatchKey = Tuple[str, str, int, int]


def batch_key(spec: RunSpec) -> BatchKey:
    """The grouping coordinate of one spec: program + geometry."""
    return (spec.workload, spec.scale,
            spec.params.rows, spec.params.cols)


@dataclass
class SpecBatch:
    """One group of batch-compatible specs (original order preserved)."""

    key: BatchKey
    indices: List[int] = field(default_factory=list)
    specs: List[RunSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)


def group_specs(specs: Sequence[RunSpec],
                limit: Optional[int] = None) -> List[SpecBatch]:
    """Partition ``specs`` into batches under the grouping law.

    Batches appear in first-member order and members keep their input
    order, so iterating batches then members is a deterministic
    permutation of the input — every spec lands in exactly one batch.

    ``limit`` bounds batch size (``repro bench --group-size``): a group
    that reaches the limit is sealed and later compatible specs open a
    fresh batch, preserving both orderings.  ``None`` means unbounded.
    """
    if limit is not None and limit < 1:
        raise ValueError(f"group size limit must be >= 1, got {limit}")
    batches: Dict[BatchKey, SpecBatch] = {}
    ordered: List[SpecBatch] = []
    for index, spec in enumerate(specs):
        key = batch_key(spec)
        batch = batches.get(key)
        if batch is None or (limit is not None and len(batch) >= limit):
            batch = batches[key] = SpecBatch(key)
            ordered.append(batch)
        batch.indices.append(index)
        batch.specs.append(spec)
    return ordered
