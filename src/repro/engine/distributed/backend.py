"""Pluggable storage backends for the content-addressed cache.

:class:`~repro.engine.cache.TraceCache` addresses records by the SHA-256
of their canonical-JSON key and stores them as ``{"key", "payload"}``
envelopes; *where* those envelopes live is this module's concern.  A
backend is anything satisfying :class:`CacheBackend` — get/put/contains/
iter-keys over digest-addressed envelopes:

* :class:`LocalBackend` — the original directory store (two-level
  fan-out, temp-file + atomic-rename writes), extracted from
  ``TraceCache`` so it is one implementation among several;
* :class:`MemoryBackend` — a lock-protected in-process dict, the default
  store of a ``repro serve`` cache server run without ``--cache-dir``;
* :class:`HTTPBackend` — a client for the ``repro serve`` cache server:
  shards and workers on different machines share trace and cycle
  records *live* through it instead of via shard-export files;
* :class:`TieredBackend` — a read-through local tier in front of any
  remote backend: a warm ``get`` costs zero network round trips, a
  remote hit is written back locally, and every ``put`` writes through
  to the remote so the fleet still shares each record exactly once.
  This is the WAN-fleet deployment shape (``repro worker --cache-dir``).

Backends never interpret envelopes — validation (is this a well-formed
``{"key", "payload"}`` record of the current engine version?) stays in
``TraceCache``, so every backend behaves identically on foreign or
corrupt data: it is simply a miss.

Connection-level failures of :class:`HTTPBackend` raise
:class:`~repro.errors.DistributedError`, which the CLI turns into a
one-line diagnostic and exit code 2 — a dead cache server never
surfaces as a traceback.
"""

from __future__ import annotations

import http.client
import json
import os
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Iterator, Optional, Protocol, Tuple

from repro.errors import DistributedError, DistributedUnavailable

#: Default timeout (seconds) for one HTTP round trip.
HTTP_TIMEOUT = 30.0


class CacheBackend(Protocol):
    """Digest-addressed envelope storage (the ``TraceCache`` substrate)."""

    def get(self, digest: str) -> Optional[dict]:
        """The stored envelope for ``digest``, or None."""

    def put(self, digest: str, envelope: dict) -> None:
        """Store ``envelope`` under ``digest`` (idempotent overwrite)."""

    def contains(self, digest: str) -> bool:
        """Whether a record exists under ``digest``."""

    def iter_keys(self) -> Iterator[str]:
        """Every stored digest (stable order not required)."""

    def describe(self) -> str:
        """Human-readable location, for diagnostics."""


class LocalBackend:
    """The on-disk directory store: ``<root>/<hh>/<digest>.json``.

    Writes go through a temp file + rename so concurrent worker
    processes (and concurrent ``repro`` invocations) can share one
    directory; readers never observe a half-written record.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict]:
        try:
            with open(self._path(digest), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, digest: str, envelope: dict) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def contains(self, digest: str) -> bool:
        return self._path(digest).is_file()

    def iter_keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            if not path.name.startswith(".tmp-"):
                yield path.stem

    def describe(self) -> str:
        return f"dir:{self.root}"


class MemoryBackend:
    """An in-process store (the default for a ``repro serve`` server).

    The lock makes compound operations safe under the threading HTTP
    server; entries survive exactly as long as the owning process.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, dict] = {}
        self._lock = threading.Lock()

    def get(self, digest: str) -> Optional[dict]:
        with self._lock:
            return self._entries.get(digest)

    def put(self, digest: str, envelope: dict) -> None:
        with self._lock:
            self._entries[digest] = envelope

    def contains(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def iter_keys(self) -> Iterator[str]:
        with self._lock:
            digests = list(self._entries)
        return iter(digests)

    def describe(self) -> str:
        return "memory"


# ----------------------------------------------------------------------
# HTTP plumbing shared by the cache client and the coordinator client
# ----------------------------------------------------------------------
def http_json(method: str, url: str, body: Optional[object] = None,
              timeout: float = HTTP_TIMEOUT) -> Tuple[int, Optional[object]]:
    """One JSON-over-HTTP round trip: ``(status, decoded body or None)``.

    404 is a negative *answer* (returned), not a failure; every
    transport-level problem — refused connection, timeout, a server that
    went away mid-request — raises :class:`DistributedUnavailable` with
    a one-line description, so callers never leak urllib tracebacks and
    retry loops can tell "server momentarily gone" (retryable) apart
    from protocol-level rejections (plain :class:`DistributedError`,
    never retryable).
    """
    data = None
    headers = {"Accept": "application/json"}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        if status == 404:
            return status, None
        detail = _error_detail(raw) or error.reason
        raise DistributedError(
            f"{method} {url} failed: HTTP {status} ({detail})"
        ) from error
    except (urllib.error.URLError, ConnectionError, TimeoutError,
            OSError, http.client.HTTPException) as error:
        # http.client.HTTPException covers the mid-conversation breaks
        # that are *not* OSErrors: a server killed between sending its
        # headers and finishing the body raises IncompleteRead, a
        # half-written status line raises BadStatusLine.  Both mean the
        # same thing as a refused connection — the server went away —
        # and must be retryable, not a worker-killing traceback.
        reason = getattr(error, "reason", None) or error
        raise DistributedUnavailable(
            f"cannot reach {url}: {reason}"
        ) from error
    if not raw:
        return status, None
    try:
        return status, json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        # Non-JSON bytes mean we are not talking to a healthy repro
        # serve (a dying process, a proxy error page) — transport-class.
        raise DistributedUnavailable(
            f"{method} {url}: server sent malformed JSON ({error})"
        ) from error


def _error_detail(raw: bytes) -> Optional[str]:
    """The server's ``{"error": ...}`` message, when the body carries one."""
    try:
        decoded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if isinstance(decoded, dict) and isinstance(decoded.get("error"), str):
        return decoded["error"]
    return None


class HTTPBackend:
    """Client for the ``repro serve`` cache server's ``/records`` API.

    Workers on different machines attach one of these to their engine's
    ``TraceCache``: a trace computed by any worker is a live cache hit
    for every other, with no export/merge step in between.
    """

    def __init__(self, base_url: str, timeout: float = HTTP_TIMEOUT) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _record_url(self, digest: str) -> str:
        return f"{self.base_url}/records/{digest}"

    def get(self, digest: str) -> Optional[dict]:
        _status, record = http_json(
            "GET", self._record_url(digest), timeout=self.timeout
        )
        return record if isinstance(record, dict) else None

    def put(self, digest: str, envelope: dict) -> None:
        status, _document = http_json(
            "PUT", self._record_url(digest), body=envelope,
            timeout=self.timeout,
        )
        if status != 200:
            # http_json treats 404 as a benign answer (right for record
            # lookups, wrong here): a PUT that lands nowhere — a proxy,
            # a mis-rooted URL — must not silently drop the record, or
            # every worker quietly recomputes every trace.
            raise DistributedError(
                f"PUT {self._record_url(digest)} was not stored "
                f"(HTTP {status}) — is this a repro serve endpoint?"
            )

    def contains(self, digest: str) -> bool:
        # HEAD: an existence probe must not download a multi-megabyte
        # trace payload just to throw it away.
        status, _record = http_json(
            "HEAD", self._record_url(digest), timeout=self.timeout
        )
        return status == 200

    def iter_keys(self) -> Iterator[str]:
        _status, listing = http_json(
            "GET", f"{self.base_url}/records", timeout=self.timeout
        )
        digests = (listing or {}).get("digests", [])
        if not isinstance(digests, list):
            raise DistributedError(
                f"{self.base_url}/records: malformed digest listing"
            )
        return iter(str(digest) for digest in digests)

    def describe(self) -> str:
        return f"http:{self.base_url}"

    # -- server-level helpers ------------------------------------------
    def health(self) -> dict:
        """The server's ``/health`` document (raises when unreachable)."""
        _status, document = http_json(
            "GET", f"{self.base_url}/health", timeout=self.timeout
        )
        return document if isinstance(document, dict) else {}


class TieredBackend:
    """A read-through local tier in front of a remote backend.

    WAN workers talking straight to :class:`HTTPBackend` pay one round
    trip per ``get`` — including every re-read of a trace they already
    fetched for an earlier sim.  Tiering a :class:`LocalBackend` (or
    any other backend) in front changes that to one round trip per
    *distinct* record:

    * ``get`` — local tier first; a remote hit is written back into
      the local tier, so the next ``get`` of the same digest performs
      **zero** network calls;
    * ``put`` — write-through: the record lands in the local tier *and*
      the remote, so the rest of the fleet sees it immediately (the
      trace-exactly-once economy depends on that);
    * ``contains`` — local tier first, remote on a local miss (an
      existence probe must not be fooled by a cold local tier);
    * ``iter_keys`` — the union of both tiers (remote listings can be
      large; local-only records from a dead remote still enumerate).

    Content addressing makes the write-back safe: a digest names one
    immutable envelope, so the local copy can never go stale.  The
    local tier is just a cache — deleting it costs re-fetches, never
    correctness.
    """

    def __init__(self, local, remote) -> None:
        self.local = local
        self.remote = remote

    def get(self, digest: str) -> Optional[dict]:
        record = self.local.get(digest)
        if record is not None:
            return record
        record = self.remote.get(digest)
        if record is not None:
            self.local.put(digest, record)
        return record

    def put(self, digest: str, envelope: dict) -> None:
        self.local.put(digest, envelope)
        self.remote.put(digest, envelope)

    def contains(self, digest: str) -> bool:
        return self.local.contains(digest) or self.remote.contains(digest)

    def iter_keys(self) -> Iterator[str]:
        seen = set()
        for tier in (self.local, self.remote):
            for digest in tier.iter_keys():
                if digest not in seen:
                    seen.add(digest)
                    yield digest

    def describe(self) -> str:
        return f"tiered({self.local.describe()} -> {self.remote.describe()})"
