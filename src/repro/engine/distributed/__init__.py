"""Distributed execution: pluggable cache backends + work dispatch.

Three layers, one URL:

* :mod:`repro.engine.distributed.backend` — the ``CacheBackend``
  protocol behind :class:`~repro.engine.cache.TraceCache` (local
  directory, in-memory, HTTP client, and the read-through
  ``TieredBackend`` that puts a local disk tier in front of a remote
  one for WAN fleets);
* :mod:`repro.engine.distributed.coordinator` — the work-stealing
  dispatcher: a FIFO multi-job table whose lease/ack protocol grants
  batched leases, requeues crashed workers' tasks, and delivers every
  job's results exactly once, scoped by server-issued job ids;
* :mod:`repro.engine.distributed.server` — ``repro serve``: one stdlib
  HTTP server exposing the cache backend and the coordinator;
* :mod:`repro.engine.distributed.worker` — ``repro worker`` pull loops
  and the ``repro bench --dispatch`` client.

Only the backend and coordinator layers are re-exported here: they are
import-cycle-free (``TraceCache`` itself constructs a
``LocalBackend``).  Import ``server`` and ``worker`` explicitly — they
depend on the fully-initialized engine package.

See ``docs/DISTRIBUTED.md`` for the serve/worker/dispatch walkthrough
and the failure semantics.
"""

from repro.engine.distributed.backend import (
    CacheBackend,
    HTTPBackend,
    LocalBackend,
    MemoryBackend,
    TieredBackend,
)
from repro.engine.distributed.coordinator import (
    Coordinator,
    DEFAULT_LEASE_TIMEOUT,
)

__all__ = [
    "CacheBackend",
    "Coordinator",
    "DEFAULT_LEASE_TIMEOUT",
    "HTTPBackend",
    "LocalBackend",
    "MemoryBackend",
    "TieredBackend",
]
