"""Worker loops and dispatch clients for the distributed subsystem.

A **worker** (``repro worker --connect URL``) is a thin pull loop around
the ordinary :class:`~repro.engine.executor.Engine`: it leases tasks
from the coordinator, computes them with an engine whose cache is the
server's HTTP backend (so every record it computes or reads is shared
live with the rest of the fleet), and acknowledges results.  All the
heavy machinery — trace interpretation, model evaluation, content
addressing — is exactly the single-machine code path; distribution adds
only the lease/ack envelope around it.

A **dispatch client** (``repro bench --dispatch URL``) is the other
side: it submits a spec batch as one job, polls for results with a
cursor (each spec index delivered exactly once, in completion order),
and replays the report assembly locally against the shared cache —
which is why a dispatched report is byte-identical to a local run.

Failure semantics worth knowing:

* a worker that hits an :class:`~repro.errors.EngineError` on a task
  acks the *failure*; the coordinator fails the job fast and the
  dispatch client raises :class:`~repro.errors.DistributedError` with
  the worker's one-line diagnostic;
* a worker that dies silently simply stops acking — its leases expire
  and the tasks are requeued to surviving workers; if *no* worker
  survives (or none was ever started), the dispatch client notices the
  queue sitting idle and raises :class:`DistributedError` after a stall
  window instead of polling forever;
* an unreachable server raises :class:`DistributedError` from the HTTP
  layer, which the CLI prints as a one-line ``error:`` + exit 2.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.engine.cache import ENGINE_VERSION
from repro.engine.distributed.backend import HTTPBackend, http_json
from repro.errors import DistributedError, ReproError

#: Default seconds between polls when the queue has nothing ready.
DEFAULT_POLL = 0.2

#: Default seconds :func:`dispatch_job` tolerates with no results *and*
#: no leased tasks before concluding no worker is serving the queue.
DEFAULT_STALL_TIMEOUT = 30.0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class CoordinatorClient:
    """HTTP client for the coordinator half of a ``repro serve`` server."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _post(self, path: str, body: dict) -> dict:
        _status, document = http_json(
            "POST", f"{self.base_url}{path}", body=body,
            timeout=self.timeout,
        )
        return document if isinstance(document, dict) else {}

    def _get(self, path: str) -> dict:
        _status, document = http_json(
            "GET", f"{self.base_url}{path}", timeout=self.timeout
        )
        return document if isinstance(document, dict) else {}

    # ------------------------------------------------------------------
    def check_version(self) -> dict:
        """Health-check the server and fail loudly on version skew."""
        health = self._get("/health")
        version = health.get("engine_version")
        if version is None:
            # A listening socket that is not `repro serve` (typo'd URL,
            # proxy, some other service) has no /health document — that
            # is not a version skew, and saying so would send the
            # operator hunting for a build mismatch that does not exist.
            raise DistributedError(
                f"{self.base_url} does not look like a repro serve "
                f"endpoint (no /health engine_version)"
            )
        if version != ENGINE_VERSION:
            raise DistributedError(
                f"{self.base_url} runs engine version {version!r}, this "
                f"build is {ENGINE_VERSION} — matching builds are "
                f"required for shared cache records to line up"
            )
        return health

    def submit(self, specs: List[dict], *, scale: str, seed: int) -> dict:
        return self._post("/queue/job", {
            "specs": specs, "scale": scale, "seed": seed,
            "engine_version": ENGINE_VERSION,
        })

    def lease(self, worker: str) -> dict:
        return self._post("/queue/lease", {"worker": worker})

    def renew(self, task_id: str, lease: str) -> bool:
        return bool(self._post("/queue/renew", {
            "id": task_id, "lease": lease,
        }).get("renewed"))

    def ack(self, task_id: str, lease: str, *,
            result: Optional[dict] = None, computed: bool = False,
            error: Optional[str] = None) -> bool:
        body = {"id": task_id, "lease": lease, "computed": computed}
        if result is not None:
            body["result"] = result
        if error is not None:
            body["error"] = error
        return bool(self._post("/queue/ack", body).get("accepted"))

    def results_since(self, cursor: int) -> dict:
        return self._get(f"/queue/results?since={int(cursor)}")

    def status(self) -> dict:
        return self._get("/queue/status")

    def export(self, *, scale: str, seed: int) -> dict:
        return self._get(f"/export?scale={scale}&seed={int(seed)}")

    def shutdown(self) -> None:
        self._post("/admin/shutdown", {})


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
@dataclass
class WorkerSummary:
    """What one worker loop did before it exited."""

    traces_computed: int = 0
    trace_cache_hits: int = 0
    sims: int = 0
    failures: int = 0


def work_loop(url: str, *, poll: float = DEFAULT_POLL,
              max_idle: Optional[float] = None,
              worker_id: Optional[str] = None,
              on_task: Optional[Callable[[str, dict], None]] = None,
              client: Optional[CoordinatorClient] = None) -> WorkerSummary:
    """Pull tasks from ``url`` until told to shut down (or idled out).

    ``max_idle`` bounds how long the loop waits without receiving work
    before exiting on its own — None means serve until the coordinator
    drains.  ``on_task(kind, detail)`` fires after each completed task
    (the CLI's progress lines).
    """
    from repro.engine.distributed.coordinator import DEFAULT_LEASE_TIMEOUT
    from repro.engine.executor import Engine

    client = client or CoordinatorClient(url)
    health = client.check_version()
    lease_timeout = float(
        health.get("lease_timeout") or DEFAULT_LEASE_TIMEOUT
    )
    engine = Engine(backend=HTTPBackend(url))
    worker = worker_id or default_worker_id()
    summary = WorkerSummary()
    idle_since: Optional[float] = None
    tasks_since_idle = 0
    while True:
        response = client.lease(worker)
        if response.get("shutdown"):
            break
        if response.get("wait") or "task" not in response:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
                if tasks_since_idle:
                    # Going idle after doing work: drop the engine's
                    # per-trace/per-spec memos so a serve-indefinitely
                    # worker's memory stays bounded by one sweep's
                    # working set.  The records themselves live on the
                    # server; anything still needed is one GET away.
                    engine = Engine(backend=HTTPBackend(url))
                    tasks_since_idle = 0
            if max_idle is not None and now - idle_since >= max_idle:
                break
            time.sleep(poll)
            continue
        idle_since = None
        tasks_since_idle += 1
        task = response["task"]
        task_id, lease = response["id"], response["lease"]
        # Heartbeat while computing: a task slower than the lease
        # timeout must not be mistaken for a crashed worker (the
        # requeue would recompute it elsewhere and discard our ack).
        renew_stop = threading.Event()

        def _keep_renewed(task_id=task_id, lease=lease) -> None:
            misses = 0
            while not renew_stop.wait(lease_timeout / 3.0):
                try:
                    if not client.renew(task_id, lease):
                        return   # lease gone: renewing is pointless
                    misses = 0
                except DistributedError:
                    # One transient blip must not cost the lease —
                    # keep trying until a full lease timeout of
                    # consecutive failures says the server is gone.
                    misses += 1
                    if misses >= 3:
                        return

        renewer = threading.Thread(target=_keep_renewed, daemon=True)
        renewer.start()
        try:
            if task["kind"] == "trace":
                computed = engine.ensure_trace(
                    task["workload"], task["scale"], task["seed"]
                )
                # A rejected ack means the lease expired and the task
                # was redone elsewhere — our result was discarded, so
                # it must not count in the summary.
                accepted = client.ack(task_id, lease, computed=computed)
                if accepted:
                    if computed:
                        summary.traces_computed += 1
                    else:
                        summary.trace_cache_hits += 1
            else:
                from repro.engine.spec import RunSpec

                spec = RunSpec.from_payload(task["spec"])
                run_result, = engine.execute([spec])
                accepted = client.ack(
                    task_id, lease,
                    result=run_result.result.to_payload(),
                )
                if accepted:
                    summary.sims += 1
        except DistributedError:
            raise             # server went away: the loop cannot go on
        except ReproError as error:
            # The task itself failed (bad spec, model crash): report it
            # so the job fails fast with the diagnostic, then keep
            # serving — the next job may be fine.
            client.ack(task_id, lease, error=str(error))
            summary.failures += 1
        else:
            if accepted and on_task is not None:
                on_task(task["kind"], task)
        finally:
            renew_stop.set()
    return summary


# ----------------------------------------------------------------------
# The dispatching side
# ----------------------------------------------------------------------
def dispatch_job(client: CoordinatorClient, specs: List[dict], *,
                 scale: str, seed: int,
                 poll: float = DEFAULT_POLL,
                 stall_timeout: float = DEFAULT_STALL_TIMEOUT
                 ) -> Iterator[Tuple[int, dict]]:
    """Submit a job and yield ``(spec index, cycles payload)`` pairs.

    Pairs surface in completion order, each index exactly once (the
    cursor protocol), mirroring ``Engine.stream``'s delivery contract.
    Raises :class:`DistributedError` when the job fails remotely, the
    server disappears mid-flight, or — after ``stall_timeout`` seconds
    with no results and no leased tasks — no worker is serving the
    queue at all (leases held by live workers never trip the timer, so
    long-running tasks are fine).
    """
    client.check_version()
    receipt = client.submit(specs, scale=scale, seed=seed)
    job_id = receipt.get("job")
    cursor = 0
    last_progress = time.monotonic()
    while True:
        batch = client.results_since(cursor)
        if batch.get("job") != job_id:
            # Another driver replaced the job (submit() frees the slot
            # the instant a job completes): its payloads would preload
            # under *our* spec digests and silently corrupt the report.
            raise DistributedError(
                f"coordinator is serving job {batch.get('job')!r}, not "
                f"our job {job_id!r} — another driver took over the "
                f"queue mid-poll"
            )
        if batch.get("failed"):
            raise DistributedError(
                f"dispatched job failed: {batch['failed']}"
            )
        results = batch.get("results", [])
        for index, payload in results:
            yield int(index), payload
            cursor += 1
        if batch.get("done"):
            return
        now = time.monotonic()
        if results:
            last_progress = now
        elif now - last_progress >= stall_timeout:
            if not client.status().get("leased"):
                raise DistributedError(
                    f"dispatched job stalled: no results and no leased "
                    f"tasks for {stall_timeout:.0f}s — is any 'repro "
                    f"worker --connect {client.base_url}' process "
                    f"running?"
                )
            last_progress = now
        time.sleep(poll)
