"""Worker loops and dispatch clients for the distributed subsystem.

A **worker** (``repro worker --connect URL``) is a thin pull loop around
the ordinary :class:`~repro.engine.executor.Engine`: it leases tasks
from the coordinator, computes them with an engine whose cache is the
server's HTTP backend (so every record it computes or reads is shared
live with the rest of the fleet), and acknowledges results.  All the
heavy machinery — trace interpretation, model evaluation, content
addressing — is exactly the single-machine code path; distribution adds
only the lease/ack envelope around it.

Two knobs amortize the network for WAN fleets:

* ``--lease-batch N`` — one ``POST /queue/lease`` round trip leases up
  to N tasks, and the acks for a finished batch **piggyback on the next
  lease call** instead of costing a round trip each.  Failure acks are
  still sent immediately (the job must fail fast), and the ack-verdict
  list in the lease response keeps the worker's summary honest: a
  piggybacked ack rejected by exactly-once delivery is not counted;
* ``--cache-dir PATH`` — the engine's cache becomes a
  :class:`~repro.engine.distributed.backend.TieredBackend` (local disk
  in front of the HTTP backend): a warm ``get`` is served locally with
  zero network calls, and every ``put`` writes through so the fleet
  still shares each record.

A **dispatch client** (``repro bench --dispatch URL``) is the other
side: it submits a spec batch as one job (the coordinator issues the
job id), polls *that job's* results with a cursor (each spec index
delivered exactly once, in completion order), and replays the report
assembly locally against the shared cache — which is why a dispatched
report is byte-identical to a local run, even when several drivers
share the fleet concurrently.

Failure semantics worth knowing:

* a worker that hits an :class:`~repro.errors.EngineError` on a task
  acks the *failure*; the coordinator fails that job fast (other jobs
  keep running) and the dispatch client raises
  :class:`~repro.errors.DistributedError` with the worker's one-line
  diagnostic;
* a worker that dies silently simply stops acking — its leases expire
  and the tasks are requeued to surviving workers; if *no* worker
  survives (or none was ever started), the dispatch client notices the
  queue sitting idle and raises :class:`DistributedError` after a stall
  window instead of polling forever;
* an unreachable server raises :class:`DistributedError` from the HTTP
  layer, which the CLI prints as a one-line ``error:`` + exit 2.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple
from urllib.parse import quote

from repro.engine.cache import ENGINE_VERSION
from repro.engine.distributed.coordinator import PROTOCOL_VERSION
from repro.engine.distributed.backend import (
    HTTPBackend,
    LocalBackend,
    TieredBackend,
    http_json,
)
from repro.errors import (
    DistributedError,
    DistributedUnavailable,
    ReproError,
)

#: Default seconds between polls when the queue has nothing ready.
DEFAULT_POLL = 0.2

#: Default seconds :func:`dispatch_job` tolerates with no results *and*
#: no leased tasks before concluding no worker is serving the queue.
DEFAULT_STALL_TIMEOUT = 30.0

#: Default seconds of *continuous* server unavailability a worker or
#: dispatch client rides out (retrying with capped exponential backoff)
#: before giving up — generous enough to cover a coordinator restart.
DEFAULT_RECONNECT = 60.0

#: First retry delay after a transport failure; doubles per retry.
RECONNECT_BASE_DELAY = 0.5

#: Ceiling on the doubling retry delay.
RECONNECT_MAX_DELAY = 5.0


def _retry_transport(call: Callable[[], dict], *,
                     window: float) -> dict:
    """Run ``call``, retrying transport failures with capped
    exponential backoff for up to ``window`` seconds of continuous
    outage.

    Only :class:`DistributedUnavailable` (the server cannot be reached
    at all) is retried — protocol-level rejections like "unknown job"
    mean retrying can never help and pass straight through.  A
    ``window`` of 0 (or less) disables retrying entirely.  The outage
    clock starts at the first failure and resets on any success, so a
    long-lived loop tolerates any number of *separate* blips; only one
    continuous outage longer than ``window`` is fatal.
    """
    outage_since: Optional[float] = None
    delay = RECONNECT_BASE_DELAY
    while True:
        try:
            return call()
        except DistributedUnavailable:
            now = time.monotonic()
            if outage_since is None:
                outage_since = now
            elapsed = now - outage_since
            if window <= 0 or elapsed >= window:
                raise
            time.sleep(max(0.0, min(delay, window - elapsed)))
            delay = min(delay * 2.0, RECONNECT_MAX_DELAY)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class CoordinatorClient:
    """HTTP client for the coordinator half of a ``repro serve`` server."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _post(self, path: str, body: dict) -> dict:
        _status, document = http_json(
            "POST", f"{self.base_url}{path}", body=body,
            timeout=self.timeout,
        )
        return document if isinstance(document, dict) else {}

    def _get(self, path: str) -> dict:
        _status, document = http_json(
            "GET", f"{self.base_url}{path}", timeout=self.timeout
        )
        return document if isinstance(document, dict) else {}

    # ------------------------------------------------------------------
    def check_version(self) -> dict:
        """Health-check the server and fail loudly on version skew."""
        health = self._get("/health")
        version = health.get("engine_version")
        if version is None:
            # A listening socket that is not `repro serve` (typo'd URL,
            # proxy, some other service) has no /health document — that
            # is not a version skew, and saying so would send the
            # operator hunting for a build mismatch that does not exist.
            raise DistributedError(
                f"{self.base_url} does not look like a repro serve "
                f"endpoint (no /health engine_version)"
            )
        if version != ENGINE_VERSION:
            raise DistributedError(
                f"{self.base_url} runs engine version {version!r}, this "
                f"build is {ENGINE_VERSION} — matching builds are "
                f"required for shared cache records to line up"
            )
        protocol = health.get("protocol_version")
        if protocol != PROTOCOL_VERSION:
            # The queue wire format is versioned separately from the
            # cache envelope format: a server that predates job-scoped
            # results and batched leases would livelock this build (and
            # vice versa), so mixed fleets stop at the health check.
            raise DistributedError(
                f"{self.base_url} speaks queue protocol {protocol!r}, "
                f"this build speaks {PROTOCOL_VERSION} — upgrade the "
                f"older side; mixed fleets would livelock on the wire "
                f"format"
            )
        return health

    def submit(self, specs: List[dict], *, scale: str, seed: int,
               group: bool = False,
               group_size: Optional[int] = None) -> dict:
        body = {
            "specs": specs, "scale": scale, "seed": seed,
            "engine_version": ENGINE_VERSION,
            "protocol_version": PROTOCOL_VERSION,
        }
        if group:
            # Batch-granular dispatch: one sim task per grouping-law
            # cohort instead of one per spec (protocol v3).
            body["group"] = True
            if group_size is not None:
                body["group_size"] = int(group_size)
        return self._post("/queue/job", body)

    def lease(self, worker: str, *, max_tasks: int = 1,
              acks: Optional[Sequence[dict]] = None) -> dict:
        """One batched lease round trip: settle ``acks``, pull up to
        ``max_tasks``.  The response's ``acked`` list gives the
        per-ack verdicts, in order."""
        body: dict = {"worker": worker, "max": int(max_tasks)}
        if acks:
            body["acks"] = list(acks)
        return self._post("/queue/lease", body)

    def renew(self, task_id: str, lease: str) -> bool:
        return bool(self._post("/queue/renew", {
            "id": task_id, "lease": lease,
        }).get("renewed"))

    def renew_many(self, leases: Sequence[Tuple[str, str]]) -> List[bool]:
        """Renew a batch of ``(task id, lease)`` pairs in one round trip."""
        verdicts = self._post("/queue/renew", {
            "renews": [{"id": task_id, "lease": lease}
                       for task_id, lease in leases],
        }).get("renewed")
        if not isinstance(verdicts, list):
            return [False] * len(leases)
        return [bool(verdict) for verdict in verdicts]

    def ack(self, task_id: str, lease: str, *,
            result: Optional[dict] = None, computed: bool = False,
            error: Optional[str] = None) -> bool:
        body = {"id": task_id, "lease": lease, "computed": computed}
        if result is not None:
            body["result"] = result
        if error is not None:
            body["error"] = error
        return bool(self._post("/queue/ack", body).get("accepted"))

    def results_since(self, job_id: str, cursor: int) -> dict:
        return self._get(
            f"/queue/results?job={quote(str(job_id))}&since={int(cursor)}"
        )

    def status(self, job_id: Optional[str] = None) -> dict:
        if job_id is None:
            return self._get("/queue/status")
        return self._get(f"/queue/status?job={quote(str(job_id))}")

    def export(self, *, scale: str, seed: int) -> dict:
        return self._get(f"/export?scale={scale}&seed={int(seed)}")

    def shutdown(self) -> None:
        self._post("/admin/shutdown", {})


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
@dataclass
class WorkerSummary:
    """What one worker loop did before it exited."""

    traces_computed: int = 0
    trace_cache_hits: int = 0
    sims: int = 0
    failures: int = 0


def _settle_verdicts(pending: List[dict], verdicts: Sequence[bool],
                     summary: WorkerSummary,
                     on_task: Optional[Callable[[str, dict], None]]) -> None:
    """Fold the coordinator's ack verdicts into the worker summary.

    A rejected ack means the lease expired and the task was redone
    elsewhere — our result was discarded, so it must not count.
    """
    for entry, accepted in zip(pending, verdicts):
        if not accepted:
            continue
        if entry["_kind"] == "trace":
            if entry["ack"].get("computed"):
                summary.traces_computed += 1
            else:
                summary.trace_cache_hits += 1
        else:
            summary.sims += 1
        if on_task is not None:
            on_task(entry["_kind"], entry["_task"])


def work_loop(url: str, *, poll: float = DEFAULT_POLL,
              max_idle: Optional[float] = None,
              worker_id: Optional[str] = None,
              on_task: Optional[Callable[[str, dict], None]] = None,
              client: Optional[CoordinatorClient] = None,
              lease_batch: int = 1,
              cache_dir: Optional[str] = None,
              reconnect: float = DEFAULT_RECONNECT) -> WorkerSummary:
    """Pull tasks from ``url`` until told to shut down (or idled out).

    ``max_idle`` bounds how long the loop waits without receiving work
    before exiting on its own — None means serve until the coordinator
    drains.  ``on_task(kind, detail)`` fires after each task's ack is
    *accepted* (the CLI's progress lines).  ``lease_batch`` tasks are
    leased per round trip, and completed-task acks piggyback on the
    next lease call; ``cache_dir`` tiers a local disk cache in front of
    the server's HTTP backend (the WAN deployment shape).

    ``reconnect`` is the fleet-survival knob: a lease/ack round trip
    that hits a *transport* failure (server restarting, network blip)
    is retried with capped exponential backoff for up to that many
    seconds of continuous outage instead of killing the worker — so a
    ``repro serve --state-dir`` restart finds its fleet still attached.
    A task interrupted mid-compute by the outage is simply dropped
    (its lease expires — or was never replayed — and it requeues);
    pass ``reconnect=0`` to fail on the first transport error.
    """
    from repro.engine.distributed.coordinator import DEFAULT_LEASE_TIMEOUT
    from repro.engine.executor import Engine

    client = client or CoordinatorClient(url)
    health = client.check_version()
    lease_timeout = float(
        health.get("lease_timeout") or DEFAULT_LEASE_TIMEOUT
    )
    lease_batch = max(1, int(lease_batch))

    def _make_engine() -> Engine:
        # A fresh engine starts from a cold schedule-tape memo too —
        # the memo reset exists to bound a long-lived worker's memory,
        # and the tape store is the sim layer's equivalent.
        from repro.sim.batch import default_tape_store

        default_tape_store().clear()
        remote = HTTPBackend(url)
        if cache_dir is not None:
            return Engine(backend=TieredBackend(LocalBackend(cache_dir),
                                                remote))
        return Engine(backend=remote)

    engine = _make_engine()
    worker = worker_id or default_worker_id()
    summary = WorkerSummary()
    idle_since: Optional[float] = None
    tasks_since_idle = 0
    # Completed-but-unacknowledged tasks, flushed on the next lease
    # round trip: {"ack": <wire body>, "_kind": ..., "_task": ...}.
    pending: List[dict] = []
    while True:
        acks = [entry["ack"] for entry in pending]
        response = _retry_transport(
            lambda: client.lease(worker, max_tasks=lease_batch,
                                 acks=acks),
            window=reconnect,
        )
        _settle_verdicts(pending, response.get("acked") or [],
                         summary, on_task)
        pending = []
        if response.get("shutdown"):
            break
        tasks = response.get("tasks") or []
        if not tasks:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
                if tasks_since_idle:
                    # Going idle after doing work: drop the engine's
                    # per-trace/per-spec memos so a serve-indefinitely
                    # worker's memory stays bounded by one sweep's
                    # working set.  The records themselves live on the
                    # server (and the local tier); anything still
                    # needed is one GET away.
                    engine = _make_engine()
                    tasks_since_idle = 0
            if max_idle is not None and now - idle_since >= max_idle:
                break
            time.sleep(poll)
            continue
        idle_since = None
        tasks_since_idle += len(tasks)
        # Heartbeat while computing: every lease in the batch is
        # renewed — including completed tasks whose acks are waiting
        # for the next lease call — so a batch slower than the lease
        # timeout is not mistaken for a crashed worker (the requeue
        # would recompute its tasks elsewhere and discard our acks).
        held = {grant["id"]: grant["lease"] for grant in tasks}
        # The renew thread iterates `held` while the main loop drops
        # finished/failed entries from it; an unsynchronized snapshot
        # can die with "dictionary changed size during iteration",
        # which kills the heartbeat silently and loses every lease in
        # a long batch.  All access goes through this lock.
        held_lock = threading.Lock()
        renew_stop = threading.Event()

        def _keep_renewed(held=held, held_lock=held_lock) -> None:
            misses = 0
            while not renew_stop.wait(lease_timeout / 3.0):
                with held_lock:
                    leases = list(held.items())
                if not leases:
                    return
                try:
                    verdicts = client.renew_many(leases)
                    misses = 0
                except DistributedError:
                    # One transient blip must not cost the leases —
                    # keep trying until a full lease timeout of
                    # consecutive failures says the server is gone.
                    misses += 1
                    if misses >= 3:
                        return
                    continue
                if not any(verdicts):
                    return   # every lease gone: renewing is pointless

        renewer = threading.Thread(target=_keep_renewed, daemon=True)
        renewer.start()
        # Jobs this worker failed while working the batch: their
        # remaining sibling tasks are dead on arrival (the failure ack
        # released every lease the job held), so computing them would
        # only produce stale acks.
        failed_jobs = set()
        try:
            for grant in tasks:
                task = grant["task"]
                task_id, lease = grant["id"], grant["lease"]
                if task_id.partition(":")[0] in failed_jobs:
                    with held_lock:
                        held.pop(task_id, None)
                    continue
                try:
                    if task["kind"] == "trace":
                        if task.get("kernel") is not None:
                            # External kernel: register the document the
                            # coordinator attached so the workload token
                            # resolves in this process.
                            from repro.kernels.registry import (
                                register_document,
                            )

                            register_document(
                                task["kernel"], "<trace-task payload>"
                            )
                        computed = engine.ensure_trace(
                            task["workload"], task["scale"], task["seed"]
                        )
                        pending.append({
                            "ack": {"id": task_id, "lease": lease,
                                    "computed": computed},
                            "_kind": "trace", "_task": task,
                        })
                    elif "specs" in task:
                        # Batch-granular task: the whole grouped cohort
                        # executes through one engine.execute call, so
                        # the grouping law (shared placement pools,
                        # adjacent batch members) applies worker-side
                        # exactly as it does locally; the ack carries
                        # per-spec payloads in cohort order.
                        from repro.engine.spec import RunSpec

                        cohort = [RunSpec.from_payload(payload)
                                  for payload in task["specs"]]
                        run_results = engine.execute(cohort)
                        pending.append({
                            "ack": {"id": task_id, "lease": lease,
                                    "computed": False,
                                    "result": {"results": [
                                        item.result.to_payload()
                                        for item in run_results]}},
                            "_kind": "sim", "_task": task,
                        })
                    else:
                        from repro.engine.spec import RunSpec

                        spec = RunSpec.from_payload(task["spec"])
                        run_result, = engine.execute([spec])
                        pending.append({
                            "ack": {"id": task_id, "lease": lease,
                                    "computed": False,
                                    "result":
                                        run_result.result.to_payload()},
                            "_kind": "sim", "_task": task,
                        })
                except DistributedUnavailable:
                    # The server vanished mid-batch (a restart, a
                    # blip).  Our leases will expire — or were never
                    # replayed — so this batch's unacked work is
                    # discarded server-side either way; drop it and
                    # let the lease loop's backoff find the server
                    # again rather than killing the worker.  The
                    # engine's memos go too: a result computed but
                    # never PUT (the outage may have hit between the
                    # two) would otherwise be served from memo on the
                    # re-lease without ever landing in the shared
                    # cache, leaving the fleet's record set incomplete.
                    if reconnect <= 0:
                        raise
                    engine = _make_engine()
                    pending = []
                    break
                except DistributedError:
                    raise     # protocol breakdown: the loop cannot go on
                except ReproError as error:
                    # The task itself failed (bad spec, model crash):
                    # report it *immediately* — piggybacking a failure
                    # would delay the job's fail-fast verdict — then
                    # keep serving; the next task may belong to a
                    # healthy job.
                    try:
                        client.ack(task_id, lease, error=str(error))
                    except DistributedUnavailable:
                        if reconnect <= 0:
                            raise
                        pending = []
                        break
                    with held_lock:
                        held.pop(task_id, None)
                    summary.failures += 1
                    failed_jobs.add(task_id.partition(":")[0])
        finally:
            renew_stop.set()
    return summary


# ----------------------------------------------------------------------
# The dispatching side
# ----------------------------------------------------------------------
def dispatch_job(client: CoordinatorClient, specs: List[dict], *,
                 scale: str, seed: int,
                 poll: float = DEFAULT_POLL,
                 stall_timeout: float = DEFAULT_STALL_TIMEOUT,
                 reconnect: float = DEFAULT_RECONNECT,
                 group: bool = False,
                 group_size: Optional[int] = None
                 ) -> Iterator[Tuple[int, dict]]:
    """Submit a job and yield ``(spec index, cycles payload)`` pairs.

    Pairs surface in completion order, each index exactly once (the
    cursor protocol), mirroring ``Engine.stream``'s delivery contract.
    The coordinator issues a job id at submit time and every results
    poll is scoped by it, so any number of drivers can dispatch onto
    one fleet concurrently without seeing each other's payloads.

    Raises :class:`DistributedError` when the job fails remotely, the
    server rejects the job id (an in-memory server that restarted and
    forgot it), or — after ``stall_timeout`` seconds with no results
    and no leased tasks anywhere on the fleet — no worker is serving
    the queue at all (leases held by live workers never trip the
    timer, so long-running tasks and a busy fleet are fine).

    Transport-level outages shorter than ``reconnect`` seconds are
    ridden out with capped exponential backoff: against a ``repro
    serve --state-dir`` server, a restart mid-dispatch is invisible
    here — the journal replays the job, the cursor still means the
    same thing, and polling resumes where it left off.  (Against an
    in-memory server the poll reconnects too, but the job is gone and
    the "unknown job" rejection — not retryable — surfaces as usual.)
    """
    client.check_version()
    if group:
        receipt = client.submit(specs, scale=scale, seed=seed,
                                group=True, group_size=group_size)
    else:
        # Ungrouped dispatch keeps the historical call shape so client
        # doubles (and older coordinators) never see the group fields.
        receipt = client.submit(specs, scale=scale, seed=seed)
    job_id = receipt.get("job")
    cursor = 0
    last_progress = time.monotonic()
    while True:
        try:
            batch = client.results_since(job_id, cursor)
        except DistributedUnavailable:
            batch = _retry_transport(
                lambda: client.results_since(job_id, cursor),
                window=reconnect,
            )
            # An outage is not a stalled fleet: the workers are on
            # their own reconnect backoff, so grant a fresh stall
            # window before declaring that nobody is serving.
            last_progress = time.monotonic()
        if batch.get("job") != job_id:
            # The job-scoped protocol should make this impossible; a
            # mismatch means the endpoint is not the server we
            # submitted to (a proxy, a restart with recycled state).
            raise DistributedError(
                f"results poll for job {job_id!r} answered for job "
                f"{batch.get('job')!r} — is {client.base_url} the "
                f"server this job was submitted to?"
            )
        if batch.get("failed"):
            raise DistributedError(
                f"dispatched job failed: {batch['failed']}"
            )
        results = batch.get("results", [])
        for index, payload in results:
            yield int(index), payload
            cursor += 1
        if batch.get("done"):
            return
        now = time.monotonic()
        if results:
            last_progress = now
        elif now - last_progress >= stall_timeout:
            if not _retry_transport(client.status,
                                    window=reconnect).get("leased"):
                raise DistributedError(
                    f"dispatched job stalled: no results and no leased "
                    f"tasks for {stall_timeout:.0f}s — is any 'repro "
                    f"worker --connect {client.base_url}' process "
                    f"running?"
                )
            last_progress = now
        time.sleep(poll)
