"""The work-stealing dispatcher's coordinator.

``--shard K/N`` partitions a sweep *statically* by fingerprint prefix:
a skewed sweep leaves whole machines idle while one shard grinds.  The
coordinator replaces the static partition with a dynamic queue — idle
workers *pull* the next ready task, so the work distributes itself by
construction, whatever the skew.

One dispatched job is a spec batch plus its derived task graph:

* one **trace task** per distinct (workload, scale, seed) — the
  expensive functional simulations, each performed exactly once across
  the whole fleet (the content-addressed cache key would make duplicate
  computation harmless, but not free);
* one **sim task** per spec index, *blocked* until its trace task is
  acknowledged — so a worker leasing a sim task can rely on the trace
  being resident in the shared cache backend.

Execution follows a lease/ack protocol with the same invariants the
streaming engine locked down:

* a lease hands a task to one worker with a deadline; a worker that
  crashes (or stalls) past its deadline loses the lease and the task is
  requeued for the next idle worker — no task is ever lost;
* an acknowledgement must present the live lease token.  Stale acks
  (from a worker whose lease expired and whose task was re-leased) are
  counted and discarded, so every result is delivered **exactly once**
  and every spec index lands exactly one payload, whatever the worker
  churn;
* a worker reporting a task *failure* fails the job fast: the queue is
  cleared, subsequent leases find no work, and the dispatching client
  receives the one-line diagnostic — mirroring the engine's clean
  ``EngineError`` crash path.

The coordinator is transport-agnostic (plain method calls under one
lock); :mod:`repro.engine.distributed.server` exposes it over HTTP next
to the cache backend.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import DistributedError

#: Default seconds a worker may hold a lease before it is presumed dead.
DEFAULT_LEASE_TIMEOUT = 60.0


@dataclass
class _Task:
    """One unit of leasable work (a trace computation or a sim)."""

    id: str
    kind: str                       # "trace" | "sim"
    payload: dict                   # wire form handed to the worker
    state: str = "pending"          # "pending" | "leased" | "done"
    lease: Optional[str] = None
    worker: Optional[str] = None
    deadline: float = 0.0
    trace_id: Optional[str] = None  # sim tasks: the trace they replay
    index: Optional[int] = None     # sim tasks: position in the spec batch


@dataclass
class _Job:
    """One dispatched spec batch and its progress."""

    id: str
    scale: str
    seed: int
    tasks: Dict[str, _Task] = field(default_factory=dict)
    trace_queue: Deque[str] = field(default_factory=deque)
    ready_sims: Deque[str] = field(default_factory=deque)
    blocked_sims: Dict[str, List[str]] = field(default_factory=dict)
    results: List[Tuple[int, dict]] = field(default_factory=list)
    total_sims: int = 0
    failed: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=lambda: {
        "traces_computed": 0,   # trace tasks a worker actually simulated
        "trace_cache_hits": 0,  # trace tasks served from the shared cache
        "requeues": 0,          # leases reclaimed from crashed workers
        "stale_acks": 0,        # acks discarded by exactly-once delivery
    })

    @property
    def done(self) -> bool:
        return self.failed is not None or len(self.results) == self.total_sims


def _trace_key_of(spec_payload: dict) -> Tuple[str, str, int]:
    return (str(spec_payload["workload"]), str(spec_payload["scale"]),
            int(spec_payload["seed"]))


class Coordinator:
    """Owns the spec queue of dispatched jobs (one active job at a time)."""

    def __init__(self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 clock=time.monotonic) -> None:
        self.lease_timeout = float(lease_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._job: Optional[_Job] = None
        self._job_counter = 0
        self._lease_counter = 0
        self._draining = False

    # -- job lifecycle -------------------------------------------------
    def submit(self, specs: List[dict], scale: str, seed: int) -> dict:
        """Queue one spec batch; returns the job id and task counts.

        Rejected while another job is still running (one sweep at a
        time keeps result delivery unambiguous) or while draining.
        """
        with self._lock:
            if self._draining:
                raise DistributedError(
                    "coordinator is shutting down and accepts no new jobs"
                )
            if self._job is not None and not self._job.done:
                raise DistributedError(
                    f"job {self._job.id} is still running "
                    f"({len(self._job.results)}/{self._job.total_sims} "
                    f"specs complete) — one dispatched job at a time"
                )
            self._job_counter += 1
            # The id must be unique across server restarts, not just
            # within this process: a driver polling results by a
            # recycled counter value could silently consume another
            # driver's payloads after a serve crash + resubmit.
            job = _Job(id=f"{self._job_counter}-{uuid.uuid4().hex[:12]}",
                       scale=str(scale), seed=int(seed))
            trace_ids: Dict[Tuple[str, str, int], str] = {}
            for key in sorted({_trace_key_of(spec) for spec in specs}):
                task_id = f"t{len(trace_ids)}"
                workload, trace_scale, trace_seed = key
                job.tasks[task_id] = _Task(
                    id=task_id, kind="trace",
                    payload={"kind": "trace", "workload": workload,
                             "scale": trace_scale, "seed": trace_seed},
                )
                job.trace_queue.append(task_id)
                job.blocked_sims[task_id] = []
                trace_ids[key] = task_id
            for index, spec in enumerate(specs):
                task_id = f"s{index}"
                trace_id = trace_ids[_trace_key_of(spec)]
                job.tasks[task_id] = _Task(
                    id=task_id, kind="sim",
                    payload={"kind": "sim", "index": index, "spec": spec},
                    trace_id=trace_id, index=index,
                )
                job.blocked_sims[trace_id].append(task_id)
            job.total_sims = len(specs)
            self._job = job
            return {"job": job.id, "traces": len(trace_ids),
                    "sims": len(specs)}

    # -- the lease/ack protocol ----------------------------------------
    def _requeue_expired(self, job: _Job) -> None:
        now = self._clock()
        for task in job.tasks.values():
            if task.state == "leased" and task.deadline <= now:
                task.state = "pending"
                task.lease = None
                task.worker = None
                job.stats["requeues"] += 1
                if task.kind == "trace":
                    job.trace_queue.appendleft(task.id)
                else:
                    job.ready_sims.appendleft(task.id)

    def lease(self, worker: str) -> dict:
        """The next ready task for ``worker``, or a wait/shutdown verdict.

        Responses: ``{"task", "lease"}`` (work to do), ``{"wait": true}``
        (nothing ready right now — poll again), ``{"shutdown": true}``
        (the coordinator is draining; exit).
        """
        with self._lock:
            if self._draining:
                return {"shutdown": True}
            job = self._job
            if job is None or job.failed is not None:
                return {"wait": True}
            self._requeue_expired(job)
            if job.trace_queue:
                task = job.tasks[job.trace_queue.popleft()]
            elif job.ready_sims:
                task = job.tasks[job.ready_sims.popleft()]
            else:
                return {"wait": True}
            self._lease_counter += 1
            task.state = "leased"
            task.lease = f"L{self._lease_counter}"
            task.worker = str(worker)
            task.deadline = self._clock() + self.lease_timeout
            return {"task": dict(task.payload), "id": task.id,
                    "lease": task.lease}

    def renew(self, task_id: str, lease: str) -> bool:
        """Extend a live lease's deadline; False for stale/unknown ones.

        A worker computing a task longer than the lease timeout
        heartbeats through this, so slow-but-alive workers are never
        mistaken for crashed ones — without renewal, an expiring lease
        would requeue a task that is still being computed, breaking the
        trace-exactly-once economy (and, with a single worker, stalling
        the dispatch client for nothing).
        """
        with self._lock:
            job = self._job
            if job is None:
                return False
            task = job.tasks.get(task_id)
            if task is None or task.state != "leased" \
                    or task.lease != lease:
                return False
            task.deadline = self._clock() + self.lease_timeout
            return True

    def ack(self, task_id: str, lease: str, *,
            result: Optional[dict] = None, computed: bool = False,
            error: Optional[str] = None) -> bool:
        """Complete (or fail) a leased task; True when the ack counted.

        Exactly-once delivery: only the live lease token is accepted, so
        a worker that lost its lease to the crash-recovery requeue
        cannot deliver a duplicate (or conflicting) result later.
        """
        with self._lock:
            job = self._job
            if job is None:
                return False
            task = job.tasks.get(task_id)
            if task is None or task.state != "leased" \
                    or task.lease != lease:
                job.stats["stale_acks"] += 1
                return False
            if error is not None:
                job.failed = (
                    f"worker {task.worker} failed {task.kind} task "
                    f"{task.id}: {error}"
                )
                job.trace_queue.clear()
                job.ready_sims.clear()
                job.blocked_sims.clear()
                task.state = "pending"
                task.lease = None
                return True
            task.state = "done"
            task.lease = None
            if task.kind == "trace":
                key = ("traces_computed" if computed
                       else "trace_cache_hits")
                job.stats[key] += 1
                for sim_id in job.blocked_sims.pop(task.id, []):
                    job.ready_sims.append(sim_id)
            else:
                job.results.append((task.index, result))
            return True

    # -- result delivery ------------------------------------------------
    def results_since(self, cursor: int) -> dict:
        """Results landed after ``cursor`` (completion order), plus the
        job verdict.  The cursor makes client polling exactly-once: each
        (index, payload) pair is handed out one time per cursor chain."""
        with self._lock:
            job = self._job
            if job is None:
                raise DistributedError("no job has been dispatched")
            # Reclaim expired leases here too: if the whole fleet died,
            # no worker is left to trigger the requeue from lease(), but
            # the dispatch client keeps polling — and needs to observe
            # leased=0 to diagnose the stall instead of waiting forever.
            self._requeue_expired(job)
            cursor = max(0, int(cursor))
            batch = job.results[cursor:]
            return {
                "job": job.id,
                "results": [[index, payload] for index, payload in batch],
                "completed": len(job.results),
                "total": job.total_sims,
                "done": job.done,
                "failed": job.failed,
            }

    def status(self) -> dict:
        """Queue depths, lease counts, and aggregate stats (diagnostics)."""
        with self._lock:
            if self._job is None:
                return {"job": None, "draining": self._draining}
            job = self._job
            self._requeue_expired(job)
            leased = sum(1 for t in job.tasks.values()
                         if t.state == "leased")
            return {
                "job": job.id,
                "scale": job.scale,
                "seed": job.seed,
                "total": job.total_sims,
                "completed": len(job.results),
                "pending_traces": len(job.trace_queue),
                "ready_sims": len(job.ready_sims),
                "leased": leased,
                "done": job.done,
                "failed": job.failed,
                "stats": dict(job.stats),
                "draining": self._draining,
            }

    # -- shutdown -------------------------------------------------------
    def drain(self) -> None:
        """Stop handing out work; tell pollers to shut down.

        In-flight acks are still accepted (a worker mid-task finishes
        cleanly) and already-delivered results remain readable, so a
        drain never tears a result in half — it only closes the tap.
        """
        with self._lock:
            self._draining = True
