"""The work-stealing dispatcher's multi-job coordinator.

``--shard K/N`` partitions a sweep *statically* by fingerprint prefix:
a skewed sweep leaves whole machines idle while one shard grinds.  The
coordinator replaces the static partition with a dynamic queue — idle
workers *pull* the next ready task, so the work distributes itself by
construction, whatever the skew.

**Job table.**  The coordinator owns a FIFO table of jobs, each with a
server-issued id.  Several drivers share one fleet: a ``submit`` is
always accepted (unless draining) and queued behind the jobs already
in the table.  The default scheduling policy is work-conserving FIFO —
the oldest unfinished job's ready tasks are leased first, and a later
job's tasks are handed out only while the earlier jobs have nothing
ready — so a queued job never starves a running one, and spare fleet
capacity never idles while any job has ready work.  The opt-in
``schedule="fair"`` policy (``repro serve --schedule fair``) instead
round-robins lease grants across the active jobs, so a long parameter
sweep cannot monopolize the fleet ahead of short jobs submitted after
it; both policies are work-conserving (a job with nothing ready is
skipped, never waited on).  Results, status, and failure are all
scoped per job id; one job's worker error fails *that* job fast and
leaves the rest of the table untouched.

One dispatched job is a spec batch plus its derived task graph:

* one **trace task** per distinct (workload, scale, seed) — the
  expensive functional simulations, each performed exactly once across
  the whole fleet (the content-addressed cache key would make duplicate
  computation harmless, but not free);
* one **sim task** per spec index, *blocked* until its trace task is
  acknowledged — so a worker leasing a sim task can rely on the trace
  being resident in the shared cache backend.

Task ids are globally unique (``<job id>:t3`` / ``<job id>:s17``), so
an ack or renew names its job implicitly and two jobs' tasks can never
be confused, whatever the interleaving.

Execution follows a lease/ack protocol with the same invariants the
streaming engine locked down, preserved *per job*:

* a lease hands a task to one worker with a deadline; a worker that
  crashes (or stalls) past its deadline loses the lease and the task is
  requeued for the next idle worker — no task is ever lost.  Leases are
  granted in **batches** (:meth:`Coordinator.lease_many`), so a worker
  on a high-latency link pays one round trip for up to N tasks;
* an acknowledgement must present the live lease token.  Stale acks
  (from a worker whose lease expired and whose task was re-leased) are
  counted and discarded, so every result is delivered **exactly once**
  and every spec index lands exactly one payload, whatever the worker
  churn — batched and piggybacked acks included, because each ack is
  validated against its own token individually;
* a worker reporting a task *failure* fails its job fast: that job's
  queues are cleared, every lease it still holds is released (so a
  dead job can never pin the fleet's "leased" count), and the
  dispatching client receives the one-line diagnostic — mirroring the
  engine's clean ``EngineError`` crash path.  Other jobs keep running;
* ``drain`` stops new submissions and tells lease pollers to shut
  down; in-flight acks are still accepted, and delivered results stay
  readable, so a drain never tears a result in half.

Finished jobs are retained (so a slow driver can still poll its
results) and evicted oldest-first once more than
:data:`FINISHED_JOB_RETENTION` of them have accumulated — a finished
(or failed) job triggers the sweep the moment it transitions, so a
quiet serve does not pin finished result payloads in RAM until the
next submit; their stats are folded into the coordinator-lifetime
totals first, so aggregate fleet statistics never go backwards.

**Durability.**  By default the job table lives in process memory and
dies with it.  Constructed with a
:class:`~repro.engine.distributed.journal.JobJournal` (``repro serve
--state-dir``), every state transition — submit, done ack, failure,
eviction, drain — is appended (fsync'd) to the journal *before* the
caller sees the reply, and :meth:`Coordinator.resume` rebuilds the
table from the journal after a crash or restart: delivered results
stay pollable at their original cursors, pending and ready tasks
re-enter their queues, and in-flight leases are deliberately **not**
restored — the tasks re-lease to the next worker, and the old workers'
stale acks bounce on their lease tokens exactly as if the workers had
crashed, preserving exactly-once delivery.

The coordinator is transport-agnostic (plain method calls under one
lock); :mod:`repro.engine.distributed.server` exposes it over HTTP next
to the cache backend.
"""

from __future__ import annotations

import contextlib
import re
import threading
import time
import uuid
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.engine.distributed.journal import JobJournal
from repro.errors import DistributedError

#: Default seconds a worker may hold a lease before it is presumed dead.
DEFAULT_LEASE_TIMEOUT = 60.0

#: How many *finished* jobs stay pollable before the oldest is evicted.
FINISHED_JOB_RETENTION = 32

#: Version of the queue wire protocol (job-scoped results, batched
#: leases, batch-granular sim tasks).  Checked alongside
#: ``ENGINE_VERSION`` at ``/health`` and ``/queue/job`` time so a mixed
#: fleet of old and new builds fails loudly instead of livelocking on a
#: wire-format mismatch.
PROTOCOL_VERSION = 3


def _new_stats() -> Dict[str, int]:
    return {
        "traces_computed": 0,   # trace tasks a worker actually simulated
        "trace_cache_hits": 0,  # trace tasks served from the shared cache
        "requeues": 0,          # leases reclaimed from crashed workers
        "stale_acks": 0,        # acks discarded by exactly-once delivery
    }


@dataclass
class _Task:
    """One unit of leasable work (a trace computation or a sim).

    A sim task carries either one spec (``index`` set, the historical
    ungrouped shape, task id ``<job>:sN``) or a whole grouped cohort
    (``indices`` set, task id ``<job>:gN`` — the batch-granular wire
    form).  A grouped task may replay several traces, so readiness is
    tracked by the ``waiting_on`` set instead of a single trace id; an
    ungrouped task's set is the singleton of its trace, preserving the
    historical ready order exactly.
    """

    id: str
    kind: str                       # "trace" | "sim"
    payload: dict                   # wire form handed to the worker
    state: str = "pending"          # "pending" | "leased" | "done"
    lease: Optional[str] = None
    worker: Optional[str] = None
    deadline: float = 0.0
    index: Optional[int] = None     # ungrouped sims: spec-batch position
    indices: Optional[List[int]] = None  # grouped sims: member positions
    waiting_on: set = field(default_factory=set)  # unfinished trace ids


@dataclass
class _Job:
    """One dispatched spec batch and its progress."""

    id: str
    scale: str
    seed: int
    tasks: Dict[str, _Task] = field(default_factory=dict)
    trace_queue: Deque[str] = field(default_factory=deque)
    ready_sims: Deque[str] = field(default_factory=deque)
    blocked_sims: Dict[str, List[str]] = field(default_factory=dict)
    results: List[Tuple[int, dict]] = field(default_factory=list)
    total_sims: int = 0
    failed: Optional[str] = None
    stats: Dict[str, int] = field(default_factory=_new_stats)
    # Ids of currently-leased tasks: lease/requeue/status work touches
    # only live leases, not every task of every retained job.
    leased: set = field(default_factory=set)
    # Batch-granular dispatch: whether sim tasks carry grouped cohorts,
    # and the submitted spec payloads + settled sim acks — the snapshot
    # sources (a grouped task's payload is not one spec, so the
    # journal snapshot cannot reconstruct the submit from task
    # payloads the way the ungrouped layout allowed).
    group: bool = False
    group_size: Optional[int] = None
    spec_payloads: List[dict] = field(default_factory=list)
    sim_done: List[Tuple[str, Optional[dict]]] = field(
        default_factory=list)

    @property
    def done(self) -> bool:
        return self.failed is not None or len(self.results) == self.total_sims

    def release_lease(self, task: _Task) -> None:
        task.state = "pending"
        task.lease = None
        task.worker = None
        self.leased.discard(task.id)


def _trace_key_of(spec_payload: dict) -> Tuple[str, str, int]:
    return (str(spec_payload["workload"]), str(spec_payload["scale"]),
            int(spec_payload["seed"]))


def _batch_key_of(spec_payload: dict) -> tuple:
    """The grouping-law coordinate of one wire spec (program+geometry).

    Mirrors :func:`repro.engine.batching.batch_key` on the payload
    form: ``params`` is the spec's params token (a plain dict), so the
    grid geometry reads directly off it.
    """
    params = spec_payload.get("params") or {}
    return (str(spec_payload["workload"]), str(spec_payload["scale"]),
            params.get("rows"), params.get("cols"))


#: Lease scheduling policies across queued jobs.
SCHEDULES = ("fifo", "fair")


class Coordinator:
    """Owns the job table of dispatched spec batches."""

    def __init__(self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 clock=time.monotonic, schedule: str = "fifo",
                 journal: Optional[JobJournal] = None) -> None:
        if schedule not in SCHEDULES:
            raise DistributedError(
                f"unknown schedule {schedule!r}; pick one of {SCHEDULES}"
            )
        self.lease_timeout = float(lease_timeout)
        self.schedule = schedule
        self.journal = journal
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, _Job]" = OrderedDict()
        self._job_counter = 0
        self._lease_counter = 0
        # Tokens are salted per coordinator *instance*: a restarted
        # server's counter restarts at 1, and without the salt a
        # pre-restart worker's stale token could collide with a fresh
        # lease's — and its ack would be wrongly accepted, breaking
        # exactly-once delivery across the restart boundary.
        self._lease_salt = uuid.uuid4().hex[:8]
        self._draining = False
        self._compact_due = False
        # Fair-share rotation: id of the job served by the previous
        # grant, so the next grant starts looking *after* it.
        self._last_served: Optional[str] = None
        # Lifetime totals: stats of evicted jobs fold in here, so the
        # aggregate /queue/status numbers survive job retention.
        self._evicted_stats = _new_stats()

    @property
    def durability(self) -> str:
        """``/health``'s durability mode: the journal location, or
        ``"memory"`` when a restart loses the job table."""
        return (self.journal.describe() if self.journal is not None
                else "memory")

    # -- the write-ahead journal ---------------------------------------
    def _record(self, event: dict) -> None:
        """Journal one state transition (lock held, before mutation).

        Write-ahead ordering: the append (and its fsync) happens before
        the in-memory mutation it describes, so a journal failure —
        disk full, yanked state dir — errors the *request* and leaves
        table and journal agreeing, instead of letting them diverge.
        """
        if self.journal is None:
            return
        if self.journal.append(event):
            # Compaction wants a snapshot of the table *after* this
            # event's mutation is applied; defer it to the end of the
            # public call (see :meth:`_maybe_compact`).
            self._compact_due = True

    def _maybe_compact(self) -> None:
        """Snapshot+truncate the journal when it outgrew its budget
        (lock held, after all of this call's mutations landed)."""
        if self.journal is None or not self._compact_due:
            return
        self._compact_due = False
        self.journal.compact(self._snapshot_events())

    # -- job lifecycle -------------------------------------------------
    def _build_job(self, job_id: str, specs: List[dict], scale: str,
                   seed: int, group: bool = False,
                   group_size: Optional[int] = None) -> _Job:
        """Derive one job's task graph from its spec batch.

        Deterministic in its inputs — the journal replays a ``submit``
        event through this same code, so a restarted coordinator
        rebuilds byte-identical task ids and blocking structure.

        ``group=False`` (the historical default) emits one ``:sN`` sim
        task per spec.  ``group=True`` emits one ``:gN`` task per
        grouping-law batch (program + geometry, capped at
        ``group_size`` members), each carrying its cohort's spec list
        and blocked until *every* trace it replays is settled.
        """
        job = _Job(id=job_id, scale=str(scale), seed=int(seed),
                   group=bool(group),
                   group_size=None if group_size is None
                   else int(group_size))
        job.spec_payloads = [dict(spec) for spec in specs]
        # External-kernel specs ship their package document; the trace
        # task for such a workload needs it too (the worker cannot
        # resolve a kernel: token it has never seen).  First occurrence
        # wins — the token embeds the content fingerprint, so every
        # spec of one token carries the identical document.
        kernel_docs: Dict[str, dict] = {}
        for spec in specs:
            document = spec.get("kernel")
            if document is not None:
                kernel_docs.setdefault(str(spec.get("workload")), document)
        trace_ids: Dict[Tuple[str, str, int], str] = {}
        for key in sorted({_trace_key_of(spec) for spec in specs}):
            task_id = f"{job.id}:t{len(trace_ids)}"
            workload, trace_scale, trace_seed = key
            payload = {"kind": "trace", "workload": workload,
                       "scale": trace_scale, "seed": trace_seed}
            if workload in kernel_docs:
                payload["kernel"] = kernel_docs[workload]
            job.tasks[task_id] = _Task(
                id=task_id, kind="trace",
                payload=payload,
            )
            job.trace_queue.append(task_id)
            job.blocked_sims[task_id] = []
            trace_ids[key] = task_id
        if not job.group:
            for index, spec in enumerate(specs):
                task_id = f"{job.id}:s{index}"
                trace_id = trace_ids[_trace_key_of(spec)]
                job.tasks[task_id] = _Task(
                    id=task_id, kind="sim",
                    payload={"kind": "sim", "index": index, "spec": spec},
                    index=index, waiting_on={trace_id},
                )
                job.blocked_sims[trace_id].append(task_id)
        else:
            # The grouping law over wire specs: first-occurrence batch
            # order, members in submit order, sealed at group_size —
            # the same covering permutation ``group_specs`` produces.
            limit = job.group_size
            batches: List[List[int]] = []
            open_batch: Dict[tuple, List[int]] = {}
            for index, spec in enumerate(specs):
                key = _batch_key_of(spec)
                members = open_batch.get(key)
                if members is None or (limit is not None
                                       and len(members) >= limit):
                    members = open_batch[key] = []
                    batches.append(members)
                members.append(index)
            for number, indices in enumerate(batches):
                task_id = f"{job.id}:g{number}"
                needed = {trace_ids[_trace_key_of(specs[i])]
                          for i in indices}
                job.tasks[task_id] = _Task(
                    id=task_id, kind="sim",
                    payload={"kind": "sim", "indices": list(indices),
                             "specs": [specs[i] for i in indices]},
                    indices=list(indices), waiting_on=set(needed),
                )
                for trace_id in sorted(needed):
                    job.blocked_sims[trace_id].append(task_id)
        job.total_sims = len(specs)
        return job

    def submit(self, specs: List[dict], scale: str, seed: int,
               group: bool = False,
               group_size: Optional[int] = None) -> dict:
        """Queue one spec batch; returns the job id, counts, position.

        Always accepted unless the coordinator is draining: several
        drivers share one fleet by queuing jobs FIFO, each scoped by
        its server-issued id.  ``group=True`` opts the job into
        batch-granular sim tasks (one lease per grouping-law cohort);
        per-spec results and their delivery contract are unchanged.
        """
        with self._lock:
            if self._draining:
                raise DistributedError(
                    "coordinator is shutting down and accepts no new jobs"
                )
            if group_size is not None and int(group_size) < 1:
                raise DistributedError(
                    f"group_size must be >= 1, got {group_size}"
                )
            self._job_counter += 1
            # The id must be unique across server restarts, not just
            # within this process: a driver polling results by a
            # recycled counter value could silently consume another
            # driver's payloads after a serve crash + resubmit.
            job = self._build_job(
                f"j{self._job_counter}-{uuid.uuid4().hex[:12]}",
                specs, scale, seed, group=group, group_size=group_size,
            )
            position = sum(1 for other in self._jobs.values()
                           if not other.done)
            event = {"event": "submit", "job": job.id,
                     "scale": job.scale, "seed": job.seed,
                     "specs": [dict(spec) for spec in specs]}
            if job.group:
                # Only grouped submits stamp the extra fields, keeping
                # ungrouped journals byte-identical to protocol 2.
                event["group"] = True
                if job.group_size is not None:
                    event["group_size"] = job.group_size
            self._record(event)
            self._jobs[job.id] = job
            self._evict_finished()
            self._maybe_compact()
            return {"job": job.id,
                    "traces": len(job.trace_queue),
                    "sims": len(specs), "position": position}

    def _evict_finished(self) -> None:
        """Drop the oldest finished jobs past the retention window."""
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.done]
        for job_id in finished[:max(0, len(finished)
                                    - FINISHED_JOB_RETENTION)]:
            stats = self._jobs[job_id].stats
            # The evict event carries the job's final stats so the
            # lifetime totals survive a restart too — requeues and
            # stale-ack counts are not derivable from done events.
            self._record({"event": "evict", "job": job_id,
                          "stats": dict(stats)})
            for key, value in stats.items():
                self._evicted_stats[key] += value
            del self._jobs[job_id]

    def _job_of(self, task_id: str) -> Optional[_Job]:
        """The job a globally-unique task id belongs to, or None."""
        job_id, _separator, _rest = str(task_id).partition(":")
        return self._jobs.get(job_id)

    # -- the lease/ack protocol ----------------------------------------
    def _requeue_expired(self) -> None:
        """Reclaim expired leases (lock held).

        Only live leases are scanned: a finished job holds none — its
        tasks are all acked, or its failure released them — so the
        retained-job history costs this hot path nothing.
        """
        now = self._clock()
        for job in self._jobs.values():
            if job.done:
                continue
            for task_id in list(job.leased):
                task = job.tasks[task_id]
                if task.deadline <= now:
                    job.release_lease(task)
                    job.stats["requeues"] += 1
                    if task.kind == "trace":
                        job.trace_queue.appendleft(task.id)
                    else:
                        job.ready_sims.appendleft(task.id)

    def _pop_ready(self, job: _Job) -> Optional[_Task]:
        """Pop ``job``'s next ready task (traces unblock sims: first)."""
        if job.trace_queue:
            return job.tasks[job.trace_queue.popleft()]
        if job.ready_sims:
            return job.tasks[job.ready_sims.popleft()]
        return None

    def _candidate_jobs(self) -> List[_Job]:
        """Jobs in the order this grant should consider them.

        ``fifo``: submission order — the oldest unfinished job first.
        ``fair``: submission order rotated to start just after the job
        the previous grant served, so consecutive grants round-robin
        across active jobs; a job with nothing ready is skipped (both
        policies are work-conserving).
        """
        jobs = list(self._jobs.values())
        if self.schedule == "fair" and self._last_served is not None:
            ids = [job.id for job in jobs]
            if self._last_served in ids:
                pivot = ids.index(self._last_served) + 1
                jobs = jobs[pivot:] + jobs[:pivot]
        return jobs

    def _next_ready(self) -> Optional[Tuple[_Job, _Task]]:
        """The next leasable task (and its job) under the schedule."""
        for job in self._candidate_jobs():
            if job.done:
                continue
            task = self._pop_ready(job)
            if task is not None:
                self._last_served = job.id
                return job, task
        return None

    def lease_many(self, worker: str, limit: int = 1) -> dict:
        """Up to ``limit`` ready tasks for ``worker`` in one call.

        Responses: ``{"tasks": [{"task", "id", "lease"}, ...]}`` (work
        to do), ``{"wait": true}`` (nothing ready right now — poll
        again), ``{"shutdown": true}`` (the coordinator is draining;
        exit).  Tasks come oldest-job-first, so one round trip can
        span a job boundary when the older job is nearly drained.
        """
        with self._lock:
            if self._draining:
                return {"shutdown": True}
            self._requeue_expired()
            grants: List[dict] = []
            for _ in range(max(1, int(limit))):
                found = self._next_ready()
                if found is None:
                    break
                job, task = found
                self._lease_counter += 1
                task.state = "leased"
                task.lease = f"L{self._lease_counter}-{self._lease_salt}"
                task.worker = str(worker)
                task.deadline = self._clock() + self.lease_timeout
                job.leased.add(task.id)
                grants.append({"task": dict(task.payload), "id": task.id,
                               "lease": task.lease})
            if not grants:
                return {"wait": True}
            return {"tasks": grants}

    def lease(self, worker: str) -> dict:
        """One ready task for ``worker`` (the batch-of-1 wire form)."""
        response = self.lease_many(worker, 1)
        if "tasks" in response:
            return response["tasks"][0]
        return response

    def renew(self, task_id: str, lease: str) -> bool:
        """Extend a live lease's deadline; False for stale/unknown ones.

        A worker computing a task longer than the lease timeout
        heartbeats through this, so slow-but-alive workers are never
        mistaken for crashed ones — without renewal, an expiring lease
        would requeue a task that is still being computed, breaking the
        trace-exactly-once economy (and, with a single worker, stalling
        the dispatch client for nothing).  A worker holding a *batch*
        renews every lease it still holds, including completed tasks
        whose acks ride on the next lease call.
        """
        with self._lock:
            job = self._job_of(task_id)
            if job is None:
                return False
            task = job.tasks.get(task_id)
            if task is None or task.state != "leased" \
                    or task.lease != lease:
                return False
            task.deadline = self._clock() + self.lease_timeout
            return True

    def ack(self, task_id: str, lease: str, *,
            result: Optional[dict] = None, computed: bool = False,
            error: Optional[str] = None) -> bool:
        """Complete (or fail) a leased task; True when the ack counted.

        Exactly-once delivery: only the live lease token is accepted, so
        a worker that lost its lease to the crash-recovery requeue
        cannot deliver a duplicate (or conflicting) result later.  An
        ack for an evicted job is stale by definition and discarded the
        same way.
        """
        with self._lock:
            job = self._job_of(task_id)
            if job is None:
                self._evicted_stats["stale_acks"] += 1
                return False
            task = job.tasks.get(task_id)
            if task is None or task.state != "leased" \
                    or task.lease != lease:
                job.stats["stale_acks"] += 1
                return False
            if error is not None:
                message = (
                    f"worker {task.worker} failed {task.kind} task "
                    f"{task.id}: {error}"
                )
                self._record({"event": "fail", "job": job.id,
                              "error": message})
                job.failed = message
                job.trace_queue.clear()
                job.ready_sims.clear()
                job.blocked_sims.clear()
                # Release *every* lease the failed job still holds, not
                # just the erroring one: a crashed co-worker's lease on
                # a dead job would otherwise never expire (the expiry
                # scan skips finished jobs), leaving a phantom "leased"
                # count that defeats the dispatch stall diagnostic and
                # stalls the shutdown drain for its full grace window.
                # In-flight acks from those workers become stale — the
                # job is dead, so discarding them is the correct side
                # of exactly-once.
                for leased_id in list(job.leased):
                    job.release_lease(job.tasks[leased_id])
                self._evict_finished()
                self._maybe_compact()
                return True
            if task.kind == "trace":
                self._record({"event": "done", "task": task.id,
                              "kind": "trace", "computed": bool(computed)})
            else:
                self._record({"event": "done", "task": task.id,
                              "kind": "sim", "result": result})
            self._finish_task(job, task, result=result, computed=computed)
            # A job that just completed must trigger the retention
            # sweep itself: on a quiet serve there may never be a next
            # submit, and until one arrives every over-retained job
            # pins its full results payload list in RAM.
            if job.done:
                self._evict_finished()
            self._maybe_compact()
            return True

    def _finish_task(self, job: _Job, task: _Task, *,
                     result: Optional[dict], computed: bool) -> None:
        """Apply one task completion (lock held; shared with replay)."""
        task.state = "done"
        task.lease = None
        job.leased.discard(task.id)
        if task.kind == "trace":
            key = "traces_computed" if computed else "trace_cache_hits"
            job.stats[key] += 1
            for sim_id in job.blocked_sims.pop(task.id, []):
                sim = job.tasks[sim_id]
                sim.waiting_on.discard(task.id)
                # Grouped tasks may replay several traces; they ready
                # only when the last one settles.  Ungrouped tasks wait
                # on exactly one, so they ready here immediately — the
                # historical order, unchanged.
                if not sim.waiting_on:
                    job.ready_sims.append(sim_id)
        elif task.indices is not None:
            # One grouped ack lands the whole cohort's results as a
            # contiguous block, so the client cursor walks per-spec
            # pairs exactly as it does for ungrouped jobs.
            payloads = (result or {}).get("results", [])
            job.results.extend(zip(task.indices, payloads))
            job.sim_done.append((task.id, result))
        else:
            job.results.append((task.index, result))
            job.sim_done.append((task.id, result))

    # -- result delivery ------------------------------------------------
    def results_since(self, job_id: str, cursor: int) -> dict:
        """``job_id``'s results landed after ``cursor`` (completion
        order), plus the job verdict.  The cursor makes client polling
        exactly-once: each (index, payload) pair is handed out one time
        per cursor chain, and the job id scopes the chain so concurrent
        drivers can never consume each other's payloads."""
        with self._lock:
            job = self._jobs.get(str(job_id))
            if job is None:
                raise DistributedError(
                    f"unknown job {job_id!r} — it was never submitted "
                    f"here, was evicted after finishing, or the server "
                    f"restarted"
                )
            # Reclaim expired leases here too: if the whole fleet died,
            # no worker is left to trigger the requeue from lease(), but
            # the dispatch client keeps polling — and needs to observe
            # leased=0 to diagnose the stall instead of waiting forever.
            self._requeue_expired()
            cursor = max(0, int(cursor))
            batch = job.results[cursor:]
            return {
                "job": job.id,
                "results": [[index, payload] for index, payload in batch],
                "completed": len(job.results),
                "total": job.total_sims,
                "done": job.done,
                "failed": job.failed,
            }

    def _job_status(self, job: _Job) -> dict:
        return {
            "job": job.id,
            "scale": job.scale,
            "seed": job.seed,
            "total": job.total_sims,
            "completed": len(job.results),
            "pending_traces": len(job.trace_queue),
            "ready_sims": len(job.ready_sims),
            "leased": len(job.leased),
            "done": job.done,
            "failed": job.failed,
            "stats": dict(job.stats),
        }

    def status(self, job_id: Optional[str] = None) -> dict:
        """Queue depths, lease counts, and stats (diagnostics).

        With ``job_id``: that job's view (raises for unknown ids).
        Without: the fleet overview — every retained job's summary,
        aggregate lease count, and coordinator-lifetime stats (evicted
        jobs included).
        """
        with self._lock:
            self._requeue_expired()
            if job_id is not None:
                job = self._jobs.get(str(job_id))
                if job is None:
                    raise DistributedError(f"unknown job {job_id!r}")
                status = self._job_status(job)
                status["draining"] = self._draining
                return status
            stats = dict(self._evicted_stats)
            for job in self._jobs.values():
                for key, value in job.stats.items():
                    stats[key] += value
            return {
                "jobs": [self._job_status(job)
                         for job in self._jobs.values()],
                "schedule": self.schedule,
                "active": sum(1 for job in self._jobs.values()
                              if not job.done),
                "leased": sum(len(job.leased)
                              for job in self._jobs.values()),
                "stats": stats,
                "draining": self._draining,
            }

    # -- shutdown -------------------------------------------------------
    def drain(self) -> None:
        """Stop handing out work; tell pollers to shut down.

        In-flight acks are still accepted (a worker mid-task finishes
        cleanly) and already-delivered results remain readable, so a
        drain never tears a result in half — it only closes the tap.
        The drain is journaled (so a crash after it is explainable from
        the state dir alone), but deliberately *not* replayed: bringing
        a drained server back up is an explicit operator action, and it
        comes back serving.
        """
        with self._lock:
            if not self._draining:
                self._record({"event": "drain"})
            self._draining = True
            self._maybe_compact()

    # -- journal replay -------------------------------------------------
    @classmethod
    def resume(cls, journal: JobJournal,
               lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
               clock=time.monotonic, schedule: str = "fifo",
               ) -> Tuple["Coordinator", dict]:
        """Rebuild a coordinator from ``journal``; returns it + summary.

        Replay reconstructs exactly what durability promises: delivered
        results (pollable at their original cursors, under their
        original job ids), pending/ready queues, failed verdicts, and
        the lifetime stats of evicted jobs.  Leases are not restored —
        the tasks re-lease to the next worker and the old tokens bounce
        as stale.  The journal is compacted to a fresh snapshot before
        returning, which also trims a torn final line (the signature of
        a crash mid-append) and bounds the next restart's replay cost.
        """
        coordinator = cls(lease_timeout=lease_timeout, clock=clock,
                          schedule=schedule)
        events, torn = journal.replay()
        with coordinator._lock:
            for event in events:
                coordinator._replay_event(event)
        coordinator.journal = journal
        journal.compact(coordinator._snapshot_events())
        with coordinator._lock:
            summary = {
                "jobs": len(coordinator._jobs),
                "active": sum(1 for job in coordinator._jobs.values()
                              if not job.done),
                "results": sum(len(job.results)
                               for job in coordinator._jobs.values()),
                "requeued": sum(
                    len(job.trace_queue) + len(job.ready_sims)
                    for job in coordinator._jobs.values() if not job.done
                ),
                "torn": torn,
            }
        return coordinator, summary

    def _replay_event(self, event: dict) -> None:
        """Apply one journaled transition to the table (lock held)."""
        kind = event.get("event")
        if kind == "submit":
            job_id = str(event["job"])
            job = self._build_job(job_id, event["specs"],
                                  event["scale"], event["seed"],
                                  group=bool(event.get("group", False)),
                                  group_size=event.get("group_size"))
            self._jobs[job_id] = job
            # Keep the counter monotonic past every replayed id, so a
            # post-restart submit can never collide with a journaled
            # job (the uuid suffix already makes that astronomically
            # unlikely; this makes it structurally impossible).
            match = re.match(r"j(\d+)-", job_id)
            if match:
                self._job_counter = max(self._job_counter,
                                        int(match.group(1)))
        elif kind == "done":
            job = self._job_of(str(event["task"]))
            if job is None or job.failed is not None:
                return
            task = job.tasks.get(str(event["task"]))
            if task is None or task.state == "done":
                return
            # Unlike a live ack, the replayed task still sits in a
            # queue (leases were not restored): pull it out before
            # marking it done, or it would be leased a second time.
            with contextlib.suppress(ValueError):
                if task.kind == "trace":
                    job.trace_queue.remove(task.id)
                else:
                    job.ready_sims.remove(task.id)
            if task.kind == "sim":
                # It may still be blocked behind trace ids (grouped
                # tasks behind several); drop it from every list.
                for blocked in job.blocked_sims.values():
                    with contextlib.suppress(ValueError):
                        blocked.remove(task.id)
            self._finish_task(job, task, result=event.get("result"),
                              computed=bool(event.get("computed", False)))
        elif kind == "fail":
            job = self._jobs.get(str(event["job"]))
            if job is None:
                return
            job.failed = str(event["error"])
            job.trace_queue.clear()
            job.ready_sims.clear()
            job.blocked_sims.clear()
        elif kind == "evict":
            job = self._jobs.pop(str(event["job"]), None)
            stats = event.get("stats") or (job.stats if job else {})
            for key, value in stats.items():
                if key in self._evicted_stats:
                    self._evicted_stats[key] += int(value)
        elif kind == "stats":
            job = self._jobs.get(str(event["job"]))
            if job is not None:
                job.stats.update({key: int(value) for key, value
                                  in event.get("stats", {}).items()
                                  if key in job.stats})
        elif kind == "evicted_stats":
            for key, value in event.get("stats", {}).items():
                if key in self._evicted_stats:
                    self._evicted_stats[key] = int(value)
        elif kind == "drain":
            pass    # a restart deliberately reopens the tap
        else:
            raise DistributedError(
                f"journal holds an unknown event kind {kind!r} — the "
                f"version stamp matched, so this is a bug, not skew"
            )

    def _snapshot_events(self) -> List[dict]:
        """The minimal event stream reproducing the current table.

        Per retained job: its ``submit``, the settled trace ``done``
        events, the sim ``done`` events *in results order* (delivery
        order is the cursor contract — a driver's cursor must mean the
        same thing after a compaction+restart as before), a ``fail``
        verdict if any, and a ``stats`` correction (requeue/stale-ack
        counts are not derivable from done events).
        """
        events: List[dict] = []
        if any(value for value in self._evicted_stats.values()):
            events.append({"event": "evicted_stats",
                           "stats": dict(self._evicted_stats)})
        for job in self._jobs.values():
            submit: dict = {
                "event": "submit", "job": job.id, "scale": job.scale,
                "seed": job.seed,
                "specs": [dict(spec) for spec in job.spec_payloads],
            }
            if job.group:
                submit["group"] = True
                if job.group_size is not None:
                    submit["group_size"] = job.group_size
            events.append(submit)
            for task in job.tasks.values():
                if task.kind == "trace" and task.state == "done":
                    events.append({"event": "done", "task": task.id,
                                   "kind": "trace", "computed": False})
            # Settled sim acks in delivery order: replaying them
            # re-extends ``results`` identically, so a driver's cursor
            # means the same thing after a compaction+restart.
            for task_id, payload in job.sim_done:
                events.append({"event": "done", "task": task_id,
                               "kind": "sim", "result": payload})
            if job.failed is not None:
                events.append({"event": "fail", "job": job.id,
                               "error": job.failed})
            events.append({"event": "stats", "job": job.id,
                           "stats": dict(job.stats)})
        return events
