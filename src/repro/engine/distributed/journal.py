"""Crash-safe write-ahead journal for the coordinator's job table.

``repro serve`` keeps its entire job table in process memory; without a
journal, a server restart silently loses every queued and running job —
dispatch clients get "unknown job", workers' acks bounce, and a whole
fleet's work is thrown away.  This module closes that hole: every job
state *transition* is appended to ``queue.jsonl`` inside ``--state-dir``
before the coordinator's reply leaves the lock, and a restarted server
replays the file to reconstruct the table.

Design points, in the order they matter:

* **Append-only JSONL, fsync'd per record.**  A transition is durable
  the moment the coordinator answers the request that caused it, so a
  ``kill -9`` can lose at most the transition being written — never an
  acknowledged one.  The possible loss is a *torn final line*, which
  :meth:`JobJournal.replay` tolerates by design (it is indistinguishable
  from the crash having landed one request earlier).
* **What is recorded** — ``submit`` (with the full spec payloads, so the
  task graph can be rebuilt), ``done`` acks (with result payloads, so
  completed work stays pollable), job ``fail``, ``evict``, and
  ``drain``.  What is deliberately *not* recorded: leases.  An
  in-flight lease is a promise to one worker process; after a restart
  that promise is worthless (the worker may be gone, and its token
  check-bounces either way), so pending tasks simply re-enter their
  queues and re-lease to the next worker — the exactly-once economy is
  preserved by the same stale-token check that handles worker crashes.
* **Self-compaction.**  Replaying a month of history to rebuild a
  32-job table would be absurd, so once the file outgrows
  :data:`JOURNAL_MAX_BYTES` it is rewritten as a *snapshot*: the
  current table re-serialized as the minimal event sequence that
  reproduces it (one ``submit`` plus its settled ``done``/``fail``
  events per retained job).  The rewrite reuses the ``runs.jsonl``
  pattern from :mod:`repro.engine.cache`: temp file + ``os.replace``
  under an ``flock`` on a side file, so a crash mid-compaction leaves
  either the old journal or the new one, never a mixture.
* **Versioned alongside the wire protocol.**  Every record carries the
  journal format version and the coordinator's
  :data:`~repro.engine.distributed.coordinator.PROTOCOL_VERSION`; a
  state dir written by an incompatible build fails loudly at startup
  instead of resurrecting a subtly-wrong job table.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

try:                              # POSIX-only; the lock degrades to a
    import fcntl                  # best-effort no-op elsewhere
except ImportError:               # pragma: no cover
    fcntl = None

from repro.errors import DistributedError

#: The journal file inside ``repro serve --state-dir``.
JOURNAL_NAME = "queue.jsonl"

#: Journal record format version.  Bump when the event shapes change in
#: a way an older replay would misread; checked (together with the queue
#: ``PROTOCOL_VERSION`` stamped on every record) before any replay.
JOURNAL_VERSION = 1

#: Compact (snapshot + truncate) once the journal grows past this size.
JOURNAL_MAX_BYTES = 4 << 20


class JobJournal:
    """Append-only, fsync'd event log under one ``--state-dir``.

    The journal knows nothing about jobs — it stores and replays opaque
    event dicts.  The :class:`~repro.engine.distributed.coordinator.
    Coordinator` owns the event vocabulary (and drives compaction by
    handing back a snapshot when :meth:`append` reports the file has
    outgrown its budget).
    """

    def __init__(self, state_dir: os.PathLike,
                 max_bytes: int = JOURNAL_MAX_BYTES) -> None:
        self.state_dir = Path(state_dir)
        self.max_bytes = int(max_bytes)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Path:
        return self.state_dir / JOURNAL_NAME

    def describe(self) -> str:
        return f"journal:{self.path}"

    # ------------------------------------------------------------------
    def _stamp(self, event: dict) -> dict:
        from repro.engine.distributed.coordinator import PROTOCOL_VERSION

        record = {"v": JOURNAL_VERSION, "protocol": PROTOCOL_VERSION}
        record.update(event)
        return record

    @contextlib.contextmanager
    def _flock(self) -> Iterator[None]:
        """Serialize appends and compaction across processes.

        Compaction replaces the file, so an append racing it would land
        on a dead inode and vanish.  The lock lives on a side file that
        is never replaced (locking the journal itself would pin a stale
        inode) — the same idiom as the cache's run-log lock.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.state_dir / (JOURNAL_NAME + ".lock")
        with open(lock_path, "w", encoding="utf-8") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def append(self, event: dict) -> bool:
        """Durably append one event; True when compaction is due.

        The record is flushed *and* fsync'd before this returns: once
        the coordinator answers the request that caused the transition,
        no crash can un-happen it.  Returns whether the journal has
        outgrown ``max_bytes`` — the caller (who owns the live table)
        then passes a snapshot to :meth:`compact`.
        """
        line = json.dumps(self._stamp(event), sort_keys=True)
        try:
            with self._flock():
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                return self.path.stat().st_size > self.max_bytes
        except OSError as error:
            raise DistributedError(
                f"cannot journal to {self.path}: {error} — the job "
                f"table would silently diverge from the state dir"
            ) from error

    def compact(self, snapshot_events: List[dict]) -> None:
        """Atomically replace the journal with a snapshot event stream."""
        lines = [json.dumps(self._stamp(event), sort_keys=True)
                 for event in snapshot_events]
        try:
            with self._flock():
                fd, tmp = tempfile.mkstemp(
                    dir=self.state_dir, prefix=".tmp-", suffix=".jsonl"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        handle.write(
                            "".join(line + "\n" for line in lines)
                        )
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp, self.path)
                except BaseException:
                    with contextlib.suppress(OSError):
                        os.unlink(tmp)
                    raise
        except OSError as error:
            raise DistributedError(
                f"cannot compact journal {self.path}: {error}"
            ) from error

    # ------------------------------------------------------------------
    def replay(self) -> Tuple[List[dict], bool]:
        """Every journaled event in order, plus a torn-final-line flag.

        A journal that does not exist yet replays to an empty stream (a
        fresh state dir).  The *final* line failing to parse is the
        expected signature of a crash mid-append and is dropped — the
        transition it described was never acknowledged to anyone.  A
        malformed line anywhere *else*, or a record stamped by an
        incompatible journal/protocol version, is real corruption (or a
        build mismatch) and raises :class:`DistributedError` — silently
        resurrecting half a job table would be worse than refusing to
        start.
        """
        from repro.engine.distributed.coordinator import PROTOCOL_VERSION

        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return [], False
        except OSError as error:
            raise DistributedError(
                f"cannot read journal {self.path}: {error}"
            ) from error
        lines = raw.splitlines()
        events: List[dict] = []
        torn = False
        for number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal records are objects")
            except (json.JSONDecodeError, ValueError) as error:
                if number == len(lines):
                    torn = True      # crash mid-append: drop and move on
                    break
                raise DistributedError(
                    f"journal {self.path} is corrupt at line {number}: "
                    f"{error} — refusing to replay a damaged job table "
                    f"(move the file aside to start fresh)"
                ) from error
            version = record.get("v")
            protocol = record.get("protocol")
            if version != JOURNAL_VERSION or protocol != PROTOCOL_VERSION:
                raise DistributedError(
                    f"journal {self.path} line {number} was written by "
                    f"an incompatible build (journal v{version!r} / "
                    f"protocol v{protocol!r}; this build is journal "
                    f"v{JOURNAL_VERSION} / protocol v{PROTOCOL_VERSION})"
                    f" — replaying it could resurrect a wrong job table"
                )
            events.append(record)
        return events, torn


def open_journal(state_dir: Optional[os.PathLike],
                 max_bytes: int = JOURNAL_MAX_BYTES
                 ) -> Optional[JobJournal]:
    """A :class:`JobJournal` for ``state_dir``, or None for in-memory."""
    if state_dir is None:
        return None
    return JobJournal(state_dir, max_bytes=max_bytes)
