"""The ``repro serve`` HTTP server: cache backend + coordinator.

One stdlib :class:`~http.server.ThreadingHTTPServer` carries both halves
of the distributed subsystem, so a fleet needs exactly one URL:

====== ================================== ===============================
method path                               meaning
====== ================================== ===============================
GET    ``/health``                        liveness + engine version
GET    ``/records``                       every stored digest
GET    ``/records/<digest>``              one envelope, or 404
PUT    ``/records/<digest>``              store an envelope
                                          (digest-verified)
GET    ``/export?scale=S&seed=N``         the store as a mergeable
                                          shard export
POST   ``/queue/job``                     submit a spec batch; returns
                                          the server-issued job id
POST   ``/queue/lease``                   pull up to ``max`` ready
                                          tasks; piggybacked ``acks``
                                          are settled first
POST   ``/queue/renew``                   heartbeat: extend one live
                                          lease (``{"id", "lease"}``)
                                          or a batch (``{"renews"}``)
POST   ``/queue/ack``                     complete/fail one leased task
GET    ``/queue/results?job=J&since=N``   job J's results after a cursor
GET    ``/queue/status[?job=J]``          fleet overview, or one job's
POST   ``/admin/shutdown``                drain the coordinator, stop
                                          the server
====== ================================== ===============================

The coordinator behind ``/queue/*`` holds a FIFO **job table** — every
driver's results poll names its job id, so several ``repro bench
--dispatch`` drivers share one fleet without ever seeing each other's
payloads (see :mod:`repro.engine.distributed.coordinator` for the
scheduling and exactly-once invariants).

Integrity at the boundary: a ``PUT /records/<digest>`` whose body is not
a ``{"key", "payload"}`` envelope, or whose key does not hash to the
digest in the URL, is rejected with 400 — a confused client cannot
poison the content-addressed store.  A ``POST /queue/job`` from a client
built at a different :data:`~repro.engine.cache.ENGINE_VERSION` is
rejected with 409 — version skew between a bench driver and a worker
fleet would silently produce cache misses, so it fails loudly instead.
A results/status poll naming an unknown job id is a 409 with a one-line
explanation (evicted after finishing, or a restarted server), never a
silent empty batch.

``GET /export`` bridges the live subsystem back to the file-based one:
it renders the server's store as a standard shard-export document, which
``repro bench --merge-shards`` consumes unchanged — so a fleet's working
set can be archived or replayed offline.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.engine.cache import ENGINE_VERSION, fingerprint
from repro.engine.distributed.coordinator import (
    Coordinator,
    PROTOCOL_VERSION,
)
from repro.engine.export import backend_export_document
from repro.errors import DistributedError

_DIGEST = re.compile(r"^/records/([0-9a-f]{64})$")


class _DistributedHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer plus the two subsystem halves it serves."""

    daemon_threads = True

    def __init__(self, address, handler, backend,
                 coordinator: Coordinator,
                 shutdown_grace: float = 30.0,
                 verdict_window: float = 1.5) -> None:
        super().__init__(address, handler)
        self.backend = backend
        self.coordinator = coordinator
        self.shutdown_grace = shutdown_grace
        self.verdict_window = verdict_window


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a worker fleet
    # polling for leases would drown the operator's terminal.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # -- plumbing ------------------------------------------------------
    def _send_json(self, document: object, status: int = 200) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json(self) -> Optional[object]:
        try:
            length = int(self.headers.get("Content-Length", 0))
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError, json.JSONDecodeError):
            return None

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        match = _DIGEST.match(parsed.path)
        if match:
            record = self.server.backend.get(match.group(1))
            if record is None:
                self._send_error_json(404, "no such record")
            else:
                self._send_json(record)
        elif parsed.path == "/records":
            self._send_json(
                {"digests": sorted(self.server.backend.iter_keys())}
            )
        elif parsed.path == "/health":
            self._send_json({
                "ok": True,
                "engine_version": ENGINE_VERSION,
                "protocol_version": PROTOCOL_VERSION,
                "backend": self.server.backend.describe(),
                "lease_timeout": self.server.coordinator.lease_timeout,
                # "journal:<path>" when the job table survives a
                # restart (`repro serve --state-dir`), else "memory".
                "durability": self.server.coordinator.durability,
            })
        elif parsed.path == "/export":
            query = parse_qs(parsed.query)
            try:
                scale = query["scale"][0]
                seed = int(query["seed"][0])
            except (KeyError, IndexError, ValueError):
                self._send_error_json(
                    400, "export needs ?scale=S&seed=N query parameters"
                )
                return
            self._send_json(backend_export_document(
                self.server.backend, scale=scale, seed=seed
            ))
        elif parsed.path == "/queue/results":
            query = parse_qs(parsed.query)
            try:
                job = query["job"][0]
            except (KeyError, IndexError):
                self._send_error_json(
                    400, "results polls are job-scoped: pass ?job=<id> "
                         "(the id from your POST /queue/job receipt)"
                )
                return
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                self._send_error_json(400, "since must be an integer")
                return
            try:
                self._send_json(
                    self.server.coordinator.results_since(job, since)
                )
            except DistributedError as error:
                self._send_error_json(409, str(error))
        elif parsed.path == "/queue/status":
            query = parse_qs(parsed.query)
            job = query.get("job", [None])[0]
            try:
                self._send_json(self.server.coordinator.status(job))
            except DistributedError as error:
                self._send_error_json(409, str(error))
        else:
            self._send_error_json(404, f"no route for GET {parsed.path}")

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
        match = _DIGEST.match(urlparse(self.path).path)
        status = 200 if (
            match and self.server.backend.contains(match.group(1))
        ) else 404
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        match = _DIGEST.match(urlparse(self.path).path)
        if not match:
            self._send_error_json(404, f"no route for PUT {self.path}")
            return
        digest = match.group(1)
        envelope = self._read_json()
        if not isinstance(envelope, dict) or "payload" not in envelope \
                or not isinstance(envelope.get("key"), dict):
            self._send_error_json(
                400, "body must be a {key, payload} envelope"
            )
            return
        if fingerprint(envelope["key"]) != digest:
            self._send_error_json(
                400, "envelope key does not hash to the record digest"
            )
            return
        self.server.backend.put(digest, envelope)
        self._send_json({"stored": digest})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = urlparse(self.path).path
        coordinator = self.server.coordinator
        if path == "/queue/job":
            body = self._read_json()
            if not isinstance(body, dict) \
                    or not isinstance(body.get("specs"), list) \
                    or not all(isinstance(spec, dict)
                               for spec in body["specs"]):
                self._send_error_json(
                    400, "job body needs a list of spec objects"
                )
                return
            if body.get("engine_version") != ENGINE_VERSION:
                self._send_error_json(
                    409,
                    f"engine version skew: job was built for version "
                    f"{body.get('engine_version')!r}, this server runs "
                    f"{ENGINE_VERSION}",
                )
                return
            if body.get("protocol_version") != PROTOCOL_VERSION:
                # The queue wire format (job-scoped results, batched
                # leases) changed independently of the cache envelope
                # format; a pre-batching driver would livelock against
                # this server, so reject it here, loudly.
                self._send_error_json(
                    409,
                    f"queue protocol skew: driver speaks protocol "
                    f"{body.get('protocol_version')!r}, this server "
                    f"speaks {PROTOCOL_VERSION} — upgrade the driver",
                )
                return
            try:
                receipt = coordinator.submit(
                    body["specs"], scale=body.get("scale", "small"),
                    seed=body.get("seed", 0),
                    group=bool(body.get("group", False)),
                    group_size=body.get("group_size"),
                )
            except DistributedError as error:
                self._send_error_json(409, str(error))
                return
            except (KeyError, TypeError, ValueError) as error:
                # A spec object missing workload/scale/seed (or with an
                # unusable seed) is a client mistake, not a server crash.
                self._send_error_json(
                    400, f"malformed spec in job body: {error!r}"
                )
                return
            self._send_json(receipt)
        elif path == "/queue/lease":
            body = self._read_json()
            if not isinstance(body, dict):
                body = {}
            worker = str(body.get("worker", "anonymous"))
            if "max" not in body:
                # A pre-batching worker (old build) sends no "max" and
                # cannot parse the {"tasks": [...]} response it would
                # get back; it would treat every grant as "wait" and
                # livelock the queue.  Fail its first lease instead.
                self._send_error_json(
                    400,
                    f"queue protocol skew: lease has no 'max' — this "
                    f"server speaks the batched lease protocol "
                    f"(v{PROTOCOL_VERSION}); upgrade the worker",
                )
                return
            try:
                limit = max(1, int(body.get("max", 1)))
            except (TypeError, ValueError):
                self._send_error_json(400, "max must be an integer")
                return
            # Settle piggybacked acks *before* leasing: a trace ack in
            # the batch may unblock the very sims this lease call is
            # about to hand out.
            acked = []
            acks = body.get("acks")
            if acks is not None and not isinstance(acks, list):
                self._send_error_json(400, "acks must be a list")
                return
            for entry in acks or []:
                if not isinstance(entry, dict) or "id" not in entry \
                        or "lease" not in entry:
                    acked.append(False)
                    continue
                acked.append(coordinator.ack(
                    str(entry["id"]), str(entry["lease"]),
                    result=entry.get("result"),
                    computed=bool(entry.get("computed", False)),
                    error=entry.get("error"),
                ))
            response = coordinator.lease_many(worker, limit)
            response["acked"] = acked
            self._send_json(response)
        elif path == "/queue/renew":
            body = self._read_json()
            if isinstance(body, dict) and isinstance(
                    body.get("renews"), list):
                # A malformed entry is a client bug, and it gets the
                # same 400 the single form gives it.  Mapping it to a
                # False verdict instead (as this endpoint once did)
                # reads as "lease gone" to the worker's heartbeat loop,
                # which then stops renewing *healthy* leases — and the
                # expiry requeue turns one buggy renew body into a
                # fleet-wide recompute storm.
                for entry in body["renews"]:
                    if not isinstance(entry, dict) or "id" not in entry \
                            or "lease" not in entry:
                        self._send_error_json(
                            400, "each renews[] entry needs id and lease"
                        )
                        return
                self._send_json({"renewed": [
                    coordinator.renew(str(entry["id"]),
                                      str(entry["lease"]))
                    for entry in body["renews"]
                ]})
                return
            if not isinstance(body, dict) or "id" not in body \
                    or "lease" not in body:
                self._send_error_json(400, "renew body needs id and lease")
                return
            self._send_json({"renewed": coordinator.renew(
                str(body["id"]), str(body["lease"])
            )})
        elif path == "/queue/ack":
            body = self._read_json()
            if not isinstance(body, dict) or "id" not in body \
                    or "lease" not in body:
                self._send_error_json(400, "ack body needs id and lease")
                return
            accepted = coordinator.ack(
                str(body["id"]), str(body["lease"]),
                result=body.get("result"),
                computed=bool(body.get("computed", False)),
                error=body.get("error"),
            )
            self._send_json({"accepted": accepted})
        elif path == "/admin/shutdown":
            coordinator.drain()
            self._send_json({"ok": True, "draining": True})
            # Stop serving in two phases: first wait for in-flight
            # leases to resolve (ack, or expiry — status() reclaims
            # expired ones), capped by the grace window, so a worker
            # mid-task still delivers its ack per drain()'s contract;
            # then keep answering for a short verdict window so lease
            # pollers observe {"shutdown": true} instead of a reset
            # connection.  Off-thread, because shutdown() blocks until
            # serve_forever returns and this handler *is* a
            # serve_forever request.
            server = self.server

            def _stop_when_drained() -> None:
                deadline = time.monotonic() + server.shutdown_grace
                while time.monotonic() < deadline:
                    if not server.coordinator.status().get("leased"):
                        break
                    time.sleep(0.05)
                time.sleep(server.verdict_window)
                server.shutdown()

            threading.Thread(target=_stop_when_drained,
                             daemon=True).start()
        else:
            self._send_error_json(404, f"no route for POST {path}")


class DistributedServer:
    """Owns one cache-backend + coordinator HTTP endpoint.

    ``port=0`` binds an ephemeral port (the resolved one is in
    :attr:`url`), which is what the tests and benchmarks use to run
    fleets on localhost without port coordination.
    """

    def __init__(self, backend, coordinator: Optional[Coordinator] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 shutdown_grace: float = 30.0,
                 verdict_window: float = 1.5) -> None:
        self.coordinator = coordinator or Coordinator()
        self.backend = backend
        self.httpd = _DistributedHTTPServer(
            (host, port), _Handler, backend, self.coordinator,
            shutdown_grace=shutdown_grace,
            verdict_window=verdict_window,
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "DistributedServer":
        """Serve on a background thread (returns self for chaining)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until shut down (the CLI path)."""
        self.httpd.serve_forever()

    def stop(self) -> None:
        """Drain the coordinator and stop serving."""
        self.coordinator.drain()
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.httpd.server_close()
