"""Cache administration: inventory, statistics, and pruning.

``repro bench --cache-dir`` grows without bound by design — records are
content-addressed and never overwritten, so every new scale, seed,
parameter point, or engine version adds files forever.  This module is
the counterweight, backing the ``repro cache`` CLI:

* :func:`scan` reads every record envelope (the key is stored next to
  the payload, see :mod:`repro.engine.cache`) into
  :class:`CacheEntry` rows;
* :func:`collect_stats` aggregates them — entry counts by kind and
  engine version, total size, a size-budget verdict, and per-run /
  aggregate hit rates from the ``runs.jsonl`` run log;
* :func:`prune` deletes records by age, by stale engine version, or down
  to a size budget (oldest records first).  Pruning only ever removes
  whole records, so every surviving entry remains a byte-identical cache
  hit afterwards.

The default size budget (:data:`DEFAULT_BUDGET_MB`, overridable via the
``REPRO_CACHE_BUDGET_MB`` environment variable) is a *warning* threshold,
not an enforcement mechanism: ``repro bench`` and ``repro cache stats``
flag a cache that has outgrown it and point at ``repro cache prune``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.engine.cache import ENGINE_VERSION, TraceCache

#: Default cache size budget, in MiB, before warnings fire.
DEFAULT_BUDGET_MB = 512.0

#: Environment override for the budget (a float, in MiB).
BUDGET_ENV = "REPRO_CACHE_BUDGET_MB"


def size_budget_bytes(budget_mb: Optional[float] = None) -> int:
    """The configured budget in bytes (argument > env var > default)."""
    if budget_mb is None:
        raw = os.environ.get(BUDGET_ENV)
        try:
            budget_mb = float(raw) if raw is not None else DEFAULT_BUDGET_MB
        except ValueError:
            budget_mb = DEFAULT_BUDGET_MB
    return int(budget_mb * 1024 * 1024)


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk record, as the admin tooling sees it."""

    path: Path
    digest: str
    kind: str                  # "trace" | "cycles" | "unknown"
    version: Optional[int]     # engine version, None when unreadable
    workload: Optional[str]
    size: int                  # bytes
    mtime: float


def scan(root: os.PathLike) -> List[CacheEntry]:
    """Every record under ``root``, oldest first (stable order).

    Unreadable or foreign files under the fan-out become ``kind
    "unknown"`` entries, so they are visible in stats and reclaimable by
    pruning; the run log and in-flight temp files are not records and
    are skipped.
    """
    root = Path(root)
    entries: List[CacheEntry] = []
    if not root.is_dir():
        return entries
    for path in root.glob("??/*.json"):
        if path.name.startswith(".tmp-"):
            continue
        try:
            stat = path.stat()
        except OSError:
            continue
        kind, version, workload = "unknown", None, None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            key = record["key"]
            kind = str(key.get("kind", "unknown"))
            version = key.get("version")
            workload = key.get("workload")
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                AttributeError):
            pass
        # A foreign JSON file can put anything in these fields; coerce
        # them so downstream aggregation (dict buckets keyed by kind and
        # version) never trips over an unhashable or mistyped value.
        # A record with an unknown kind or a non-integer version can
        # never be a valid engine record, so the whole file classifies
        # as "unknown" — reported as skipped, reclaimable by
        # ``prune --drop-stale-versions``, never fatal.
        if kind not in ("trace", "cycles") \
                or not isinstance(version, int) \
                or isinstance(version, bool):
            kind, version = "unknown", None
        if workload is not None and not isinstance(workload, str):
            workload = None
        entries.append(CacheEntry(
            path=path, digest=path.stem, kind=kind, version=version,
            workload=workload, size=stat.st_size, mtime=stat.st_mtime,
        ))
    entries.sort(key=lambda e: (e.mtime, e.digest))
    return entries


def usage(root: os.PathLike) -> Tuple[int, int]:
    """(record count, total bytes) by ``stat()`` alone.

    The per-run size-budget warning in ``repro bench`` fires on every
    invocation, so it must not pay :func:`scan`'s cost of JSON-parsing
    the whole cache just to sum file sizes.
    """
    root = Path(root)
    entries = total = 0
    if not root.is_dir():
        return 0, 0
    for path in root.glob("??/*.json"):
        if path.name.startswith(".tmp-"):
            continue
        try:
            size = path.stat().st_size
        except OSError:
            continue
        entries += 1
        total += size
    return entries, total


def _counters(stats: Dict[str, object]) -> Optional[Tuple[int, int]]:
    """(cache hits, computed work) of one run's counters, or None.

    Memo re-reads within a single engine say nothing about cache warmth
    and are excluded.  None means the record is malformed — per-run and
    aggregate rates must both skip it whole.
    """
    try:
        hits = int(stats["trace_cache_hits"]) + int(stats["sim_cache_hits"])
        work = int(stats["traces_computed"]) + int(stats["simulations"])
    except (KeyError, TypeError, ValueError):
        return None
    return hits, work


def hit_rate(stats: Dict[str, object]) -> Optional[float]:
    """Cache hit rate of one run's counters (None when it did nothing)."""
    counters = _counters(stats)
    if counters is None:
        return None
    hits, work = counters
    total = hits + work
    return hits / total if total else None


@dataclass
class CacheStats:
    """Aggregate view of one cache directory."""

    root: Path
    entries: int = 0
    total_bytes: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    by_version: Dict[Optional[int], int] = field(default_factory=dict)
    budget_bytes: int = 0
    runs: List[Dict[str, object]] = field(default_factory=list)

    @property
    def over_budget(self) -> bool:
        return self.total_bytes > self.budget_bytes

    def last_informative_run(self
                             ) -> Optional[Tuple[Dict[str, object], float]]:
        """Newest run whose counters yield a hit rate, with that rate.

        Runs that did no work (e.g. ``repro bench --shard`` of an empty
        shard) say nothing about cache warmth and are skipped.
        """
        for record in reversed(self.runs):
            rate = hit_rate(record.get("stats", {}))
            if rate is not None:
                return record, rate
        return None

    @property
    def last_run_hit_rate(self) -> Optional[float]:
        informative = self.last_informative_run()
        return informative[1] if informative is not None else None

    @property
    def aggregate_hit_rate(self) -> Optional[float]:
        hits = work = 0
        for record in self.runs:
            counters = _counters(record.get("stats", {}))
            if counters is None:
                continue
            hits += counters[0]
            work += counters[1]
        total = hits + work
        return hits / total if total else None


def collect_stats(root: os.PathLike,
                  budget_mb: Optional[float] = None) -> CacheStats:
    """Scan ``root`` and fold the record table + run log into stats."""
    stats = CacheStats(root=Path(root),
                       budget_bytes=size_budget_bytes(budget_mb))
    for entry in scan(root):
        stats.entries += 1
        stats.total_bytes += entry.size
        stats.by_kind[entry.kind] = stats.by_kind.get(entry.kind, 0) + 1
        stats.by_version[entry.version] = (
            stats.by_version.get(entry.version, 0) + 1
        )
    stats.runs = TraceCache(root).read_run_log()
    return stats


@dataclass
class PruneReport:
    """What one :func:`prune` pass did."""

    examined: int = 0
    removed: int = 0
    removed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    reasons: Dict[str, int] = field(default_factory=dict)

    def _count(self, reason: str, entry: CacheEntry) -> None:
        self.removed += 1
        self.removed_bytes += entry.size
        self.reasons[reason] = self.reasons.get(reason, 0) + 1


def prune(root: os.PathLike, *,
          max_age_days: Optional[float] = None,
          stale_versions: bool = False,
          max_size_bytes: Optional[int] = None,
          now: Optional[float] = None) -> PruneReport:
    """Delete records by age, stale engine version, and/or size budget.

    Filters compose: age and version filters run first, then the size
    budget evicts the oldest survivors until the cache fits
    ``max_size_bytes``.  Unreadable ("unknown") records count as stale
    under the version filter — they can never be hits.  Each surviving
    record is untouched, so its content address (and therefore its hit
    behaviour) is exactly as before the prune.
    """
    report = PruneReport()
    survivors: List[CacheEntry] = []
    reference = time.time() if now is None else now
    for entry in scan(root):
        report.examined += 1
        if stale_versions and entry.version != ENGINE_VERSION:
            reason = ("unreadable" if entry.kind == "unknown"
                      else "stale-version")
        elif (max_age_days is not None
                and reference - entry.mtime > max_age_days * 86400.0):
            reason = "expired"
        else:
            survivors.append(entry)
            continue
        _remove(entry)
        report._count(reason, entry)

    if max_size_bytes is not None:
        total = sum(entry.size for entry in survivors)
        kept: List[CacheEntry] = []
        # ``survivors`` is oldest-first (scan order): evict from the
        # front until the rest fits the budget.
        for position, entry in enumerate(survivors):
            if total > max_size_bytes:
                _remove(entry)
                report._count("size-budget", entry)
                total -= entry.size
            else:
                kept = survivors[position:]
                break
        else:
            kept = []
        survivors = kept

    report.kept = len(survivors)
    report.kept_bytes = sum(entry.size for entry in survivors)
    _sweep_empty_fanout(Path(root))
    return report


def _remove(entry: CacheEntry) -> None:
    try:
        entry.path.unlink()
    except OSError:
        pass


def _sweep_empty_fanout(root: Path) -> None:
    """Drop fan-out directories emptied by a prune (best effort)."""
    if not root.is_dir():
        return
    for child in root.iterdir():
        if child.is_dir() and len(child.name) == 2:
            try:
                child.rmdir()          # only succeeds when empty
            except OSError:
                pass
