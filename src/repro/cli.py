"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report [--scale S]`` — regenerate every table/figure;
* ``bench [--scale S] [--seed N] [--jobs N] [--cache-dir PATH]
  [--format ascii|json|csv]`` — the full report through the parallel
  experiment engine, with on-disk trace caching and machine-readable
  exports (the JSON export carries the engine's run statistics);
* ``experiment NAME [--scale S]`` — one experiment (fig11..fig17,
  table4, table6, ablations);
* ``workloads [--scale S]`` — run + verify the benchmark suite, printing
  each kernel's control flow profile (Table 1 / Table 5 view);
* ``simulate KERNEL [--scale S]`` — price one kernel on every
  architecture model.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.arch.params import DEFAULT_PARAMS
from repro.baselines import (
    DataflowModel,
    IdealModel,
    MarionetteModel,
    RevelModel,
    RipTideModel,
    SoftbrainModel,
    TIAModel,
    VonNeumannModel,
)
from repro.baselines.base import KernelInstance
from repro.ir import analysis
from repro.workloads import ALL_WORKLOADS, get_workload

_EXPERIMENTS = (
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "table4", "table6", "ablations",
)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_report

    print(render_report(args.scale))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.engine import Engine, report_csv, report_json
    from repro.experiments.report import render_report, run_all

    engine = Engine(cache_dir=args.cache_dir, jobs=args.jobs)
    if args.format == "ascii":
        print(render_report(args.scale, args.seed, engine=engine))
        return 0
    results = run_all(args.scale, args.seed, engine=engine)
    if args.format == "json":
        print(report_json(
            results,
            stats=engine.stats.as_dict(),
            meta={"scale": args.scale, "seed": args.seed,
                  "jobs": args.jobs},
        ))
    else:
        print(report_csv(results))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ablations,
        fig11_pe_models,
        fig12_control_network,
        fig13_network_scaling,
        fig14_agile,
        fig15_utilization,
        fig16_balance,
        fig17_sota,
        table4_area,
        table6_network_area,
    )

    if args.name == "fig13":
        fig13_network_scaling.run().print()
    elif args.name == "table4":
        table4_area.run().print()
    elif args.name == "table6":
        table6_network_area.run().print()
    elif args.name == "ablations":
        for result in ablations.run(args.scale):
            result.print()
            print()
    else:
        module = {
            "fig11": fig11_pe_models,
            "fig12": fig12_control_network,
            "fig14": fig14_agile,
            "fig15": fig15_utilization,
            "fig16": fig16_balance,
            "fig17": fig17_sota,
        }[args.name]
        module.run(args.scale).print()
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    header = (f"{'kernel':<8} {'group':<14} {'blocks':>6} {'ops':>5} "
              f"{'loops':>5} {'depth':>5} {'branches':>8} "
              f"{'under-branch%':>13} {'dyn ops':>9}")
    print(header)
    print("-" * len(header))
    for workload in ALL_WORKLOADS:
        instance = workload.instance(args.scale)
        instance.check()
        profile = analysis.profile(instance.cdfg, instance.run().trace)
        print(f"{workload.short:<8} {workload.group:<14} "
              f"{profile.blocks:>6} {profile.static_ops:>5} "
              f"{profile.loop_count:>5} {profile.max_loop_depth:>5} "
              f"{profile.divergent_branches:>8} "
              f"{profile.ops_under_branch_pct:>12.1f}% "
              f"{profile.dynamic_ops:>9}")
    print("\nall outputs verified against reference implementations")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = get_workload(args.kernel)
    instance = workload.instance(args.scale)
    instance.check()
    kernel = KernelInstance(instance.cdfg, instance.run().trace)
    params = DEFAULT_PARAMS
    models = [
        VonNeumannModel(params),
        DataflowModel(params),
        SoftbrainModel(params),
        TIAModel(params),
        RevelModel(params),
        RipTideModel(params),
        MarionetteModel(params, control_network=False, agile=False),
        MarionetteModel(params),
        IdealModel(params),
    ]
    print(f"{workload.name} @ {args.scale}: {instance.cdfg.summary()}")
    baseline = None
    for model in models:
        cycles = model.simulate(kernel).cycles
        baseline = baseline or cycles
        print(f"  {model.config.name:<36} {cycles:>9} cycles "
              f"({baseline / cycles:5.2f}x)")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Marionette (MICRO'23) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="all tables and figures")
    p_report.add_argument("--scale", default="small",
                          choices=("tiny", "small", "paper"))
    p_report.set_defaults(fn=_cmd_report)

    p_bench = sub.add_parser(
        "bench", help="full report through the parallel experiment engine"
    )
    p_bench.add_argument("--scale", default="small",
                         choices=("tiny", "small", "paper"))
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial)")
    p_bench.add_argument("--cache-dir", default=None,
                         help="on-disk trace/result cache directory")
    p_bench.add_argument("--format", default="ascii",
                         choices=("ascii", "json", "csv"))
    p_bench.set_defaults(fn=_cmd_bench)

    p_exp = sub.add_parser("experiment", help="one table/figure")
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.add_argument("--scale", default="small",
                       choices=("tiny", "small", "paper"))
    p_exp.set_defaults(fn=_cmd_experiment)

    p_wl = sub.add_parser("workloads", help="run + profile the suite")
    p_wl.add_argument("--scale", default="tiny",
                      choices=("tiny", "small", "paper"))
    p_wl.set_defaults(fn=_cmd_workloads)

    p_sim = sub.add_parser("simulate", help="one kernel on every model")
    p_sim.add_argument("kernel")
    p_sim.add_argument("--scale", default="small",
                       choices=("tiny", "small", "paper"))
    p_sim.set_defaults(fn=_cmd_simulate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
