"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report [--scale S]`` — regenerate every table/figure;
* ``bench [--scale S] [--seed N] [--jobs N] [--cache-dir PATH]
  [--format ascii|json|csv] [--stream] [--shard K/N]
  [--export-shard PATH] [--merge-shards PATH...] [--dispatch URL]
  [--arch FILE] [--arch-sweep DIR] [--prune-to-budget] [--profile]
  [--profile-out PATH]`` — the full report through the parallel
  experiment engine, with on-disk trace caching, machine-readable
  exports, streaming per-spec progress, fingerprint-prefix sharding
  across CI jobs (shard runs emit a mergeable export;
  ``--merge-shards`` reassembles the canonical report, byte-identical
  to an unsharded run), dynamic dispatch to a ``repro serve`` worker
  fleet (``--dispatch``, also byte-identical), architecture selection
  (``--arch FILE`` prices the whole evaluation on a loaded
  architecture description; ``--arch-sweep DIR`` emits one report
  section per spec file in deterministic filename order — see
  docs/ARCH.md), and phase profiling (``--profile`` times the trace /
  per-model simulate / assemble phases and writes a
  ``BENCH_<timestamp>.json`` perf-trajectory record — the report
  itself is unchanged);
* ``serve [--host H] [--port P] [--cache-dir PATH]
  [--lease-timeout S] [--schedule fifo|fair]`` — the distributed
  endpoint: an HTTP cache server (shards and workers share
  trace/cycle records live) plus the work-stealing multi-job
  coordinator that hands specs to idle workers (several
  ``--dispatch`` drivers can share one fleet; jobs queue FIFO under
  server-issued ids, or round-robin with ``--schedule fair``);
* ``worker --connect URL [--poll S] [--max-idle S] [--lease-batch N]
  [--cache-dir PATH]`` — a pull-loop worker: lease up to N specs per
  round trip from a coordinator (acks piggyback on the next lease),
  compute against the shared cache — tiered behind a local directory
  when ``--cache-dir`` is given, the WAN deployment shape — and
  acknowledge results;
* ``cache stats|prune --cache-dir PATH`` — cache administration: size,
  entry counts, per-run hit rates from the persisted run log; pruning
  by age, stale engine version, or size budget;
* ``experiment NAME [--scale S]`` — one experiment (fig11..fig17,
  table4, table6, ablations);
* ``workloads [--scale S]`` — run + verify the benchmark suite, printing
  each kernel's control flow profile (Table 1 / Table 5 view);
* ``simulate KERNEL [--scale S]`` — price one kernel on every
  architecture model.

``bench`` report documents (all three formats) carry only content, so
batch, ``--stream``, warm-cache, and shard-merged runs are
byte-identical; diagnostics go to stderr, the cache run log, and the
opt-in ``--stats`` JSON field.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.errors import ReproError
from repro.baselines import (
    DataflowModel,
    IdealModel,
    MarionetteModel,
    RevelModel,
    RipTideModel,
    SoftbrainModel,
    TIAModel,
    VonNeumannModel,
)
from repro.baselines.base import KernelInstance
from repro.ir import analysis
from repro.workloads import ALL_WORKLOADS, get_workload

_EXPERIMENTS = (
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "table4", "table6", "ablations",
)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_report

    print(render_report(args.scale))
    return 0


def _progress_line(done: int, total: int, run_result) -> str:
    spec = run_result.spec
    label = spec.model.label or spec.model.model
    origin = "cache" if run_result.cached else "computed"
    return (f"[{done}/{total}] {spec.workload}@{spec.scale} "
            f"seed={spec.seed} {label}: {run_result.cycles} cycles "
            f"({origin})")


def _report_meta(args) -> Dict[str, object]:
    """The JSON document's identifying metadata.

    The ``arch`` stanza appears only in ``--arch-sweep`` sections —
    a single-variant run (flagless or ``--arch FILE``) must stay
    byte-identical to the canonical report, which carries no arch
    stanza.
    """
    meta: Dict[str, object] = {"scale": args.scale, "seed": args.seed}
    arch_meta = getattr(args, "arch_meta", None)
    if arch_meta:
        meta["arch"] = arch_meta
    return meta


def _emit_report(results, args) -> None:
    from repro.engine import report_csv, report_json
    from repro.experiments.report import render_results

    if args.format == "ascii":
        print(render_results(results, args.scale, args.seed))
    elif args.format == "json":
        stats = args.engine.stats.as_dict() if args.stats else None
        print(report_json(results, stats=stats, meta=_report_meta(args)))
    else:
        print(report_csv(results))


def _emit_streamed(pairs, args, params=DEFAULT_PARAMS,
                   kernels=()) -> None:
    """Emit the report from a live stream of per-spec landings.

    ASCII assembles *incrementally*: each experiment's table prints the
    moment its last spec lands (in paper order), so early tables
    surface while later experiments still compute — and the
    concatenated output stays byte-identical to the batch report.  The
    JSON/CSV documents are monolithic by design, so those formats
    consume the stream first and render at the end.
    """
    from repro.experiments.report import assemble_stream, report_header

    assembled = assemble_stream(pairs, args.scale, args.seed, args.engine,
                                params, kernels)
    if args.format == "ascii":
        # The exact header render_results() writes, then each table as
        # it becomes available.
        for line in report_header(args.scale, args.seed):
            print(line)
        for result in assembled:
            print(result.to_table())
            print()
    else:
        _emit_report(list(assembled), args)


def _finish_bench_run(engine, args, **context) -> None:
    """Per-run bookkeeping: persist stats, warn on (or, with
    ``--prune-to-budget``, enforce) the cache size budget."""
    from repro.engine.cache_admin import prune, size_budget_bytes, usage

    engine.record_run(command="bench", scale=args.scale, seed=args.seed,
                      jobs=args.jobs, **context)
    if engine.cache.persistent:
        # stat()-only walk: this runs on every bench invocation, so it
        # must not JSON-parse the whole cache like `repro cache stats`.
        entries, total_bytes = usage(engine.cache.root)
        budget_bytes = size_budget_bytes()
        if total_bytes > budget_bytes:
            budget_mb = budget_bytes / (1024 * 1024)
            size_mb = total_bytes / (1024 * 1024)
            if getattr(args, "prune_to_budget", False):
                report = prune(engine.cache.root,
                               max_size_bytes=budget_bytes)
                print(
                    f"pruned {report.removed} cache entries "
                    f"({report.removed_bytes} bytes) to fit the "
                    f"{budget_mb:.0f} MiB budget; kept {report.kept} "
                    f"({report.kept_bytes} bytes)",
                    file=sys.stderr,
                )
            else:
                print(
                    f"warning: cache {engine.cache.root} holds "
                    f"{size_mb:.1f} MiB across {entries} entries, over "
                    f"the {budget_mb:.0f} MiB budget — reclaim space with "
                    f"'repro cache prune --cache-dir {engine.cache.root} "
                    f"--max-size-mb {budget_mb:.0f}'",
                    file=sys.stderr,
                )


def _check_arch_paths(arch, arch_sweep) -> int:
    """Catch the two flags being fed each other's operand.

    ``--arch`` takes one spec *file* and ``--arch-sweep`` a *directory*
    of them; a swapped operand would otherwise surface as an opaque
    read/parse failure instead of naming the sister flag.
    """
    from pathlib import Path

    if arch and Path(arch).is_dir():
        print(f"error: --arch expects an architecture spec file, but "
              f"{arch} is a directory — to run every spec file in it, "
              f"use --arch-sweep {arch}", file=sys.stderr)
        return 2
    if arch_sweep and Path(arch_sweep).is_file():
        print(f"error: --arch-sweep expects a directory of spec files, "
              f"but {arch_sweep} is a file — to price this one variant, "
              f"use --arch {arch_sweep}", file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.arch.spec import load_arch, load_arch_sweep
    from repro.engine import (
        Engine,
        merge_shard_documents,
        read_shard_export,
    )
    from repro.experiments.report import run_all

    if args.arch and args.arch_sweep:
        print("error: --arch and --arch-sweep are mutually exclusive — "
              "a sweep directory already names every variant",
              file=sys.stderr)
        return 2
    code = _check_arch_paths(args.arch, args.arch_sweep)
    if code:
        return code
    if args.kernels and args.merge_shards:
        print("error: --kernels has no effect with --merge-shards — the "
              "exports name the kernel suite they came from",
              file=sys.stderr)
        return 2
    if (args.arch or args.arch_sweep) and args.merge_shards:
        print("error: --arch/--arch-sweep have no effect with "
              "--merge-shards — the exports name the architecture they "
              "came from", file=sys.stderr)
        return 2
    if args.arch_sweep and args.profile:
        print("error: --profile times one batch run — it cannot be "
              "combined with --arch-sweep", file=sys.stderr)
        return 2
    if args.arch_sweep and args.stats:
        print("error: --stats attaches one engine's counters to one "
              "JSON document — it cannot be combined with --arch-sweep",
              file=sys.stderr)
        return 2
    if args.arch_sweep and args.export_shard:
        print("error: --export-shard writes one file, but --arch-sweep "
              "emits one shard export per variant — read them from "
              "stdout (one JSON line each)", file=sys.stderr)
        return 2
    if args.shard and args.merge_shards:
        print("error: --shard and --merge-shards are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.export_shard and not args.shard:
        print("error: --export-shard requires --shard", file=sys.stderr)
        return 2
    if args.dispatch and (args.shard or args.merge_shards):
        print("error: --dispatch is a complete execution mode — it "
              "cannot be combined with --shard/--merge-shards",
              file=sys.stderr)
        return 2
    if args.dispatch and args.jobs != 1:
        print("error: --jobs has no effect with --dispatch — the "
              "worker fleet does the computing", file=sys.stderr)
        return 2
    if args.dispatch and args.cache_dir:
        print("error: --cache-dir has no effect with --dispatch — "
              "records live on the serve cache", file=sys.stderr)
        return 2
    if args.dispatch and args.stats:
        print("error: --stats reports the local engine, which computes "
              "nothing under --dispatch — fleet stats live at "
              "GET <URL>/queue/status", file=sys.stderr)
        return 2
    if args.prune_to_budget and not args.cache_dir:
        print("error: --prune-to-budget requires --cache-dir (there is "
              "no local cache to prune)", file=sys.stderr)
        return 2
    if args.profile and (args.stream or args.shard or args.merge_shards
                         or args.dispatch):
        print("error: --profile times the local batch phases — it cannot "
              "be combined with --stream/--shard/--merge-shards/"
              "--dispatch", file=sys.stderr)
        return 2
    if args.profile and args.stats:
        print("error: --stats embeds engine counters in the stdout "
              "document, which the profiler's phased execution would "
              "skew — the per-phase deltas live in the --profile JSON "
              "instead", file=sys.stderr)
        return 2
    if args.profile_out and not args.profile:
        print("error: --profile-out requires --profile", file=sys.stderr)
        return 2
    if args.group_size is not None and args.group_size < 1:
        print("error: --group-size must be at least 1",
              file=sys.stderr)
        return 2
    if args.no_group and args.group_size is not None:
        print("error: --group-size bounds the groups that --no-group "
              "disables — pick one", file=sys.stderr)
        return 2
    if args.shard and (args.format is not None or args.stats):
        print("error: --format/--stats have no effect with --shard — a "
              "shard run emits a shard export, not a report",
              file=sys.stderr)
        return 2
    if args.merge_shards and args.stream:
        print("error: --stream has no effect with --merge-shards — the "
              "merge replays cached records, nothing runs",
              file=sys.stderr)
        return 2
    if args.merge_shards and (args.scale is not None
                              or args.seed is not None):
        print("error: --scale/--seed have no effect with --merge-shards "
              "— the exports name the sweep they came from",
              file=sys.stderr)
        return 2
    args.format = args.format or "ascii"
    args.scale = args.scale or "small"
    args.seed = 0 if args.seed is None else args.seed
    if args.stats and args.format != "json":
        print("error: --stats attaches engine_stats to the JSON "
              "document — it requires --format json", file=sys.stderr)
        return 2

    def progress(done: int, total: int, run_result) -> None:
        print(_progress_line(done, total, run_result), file=sys.stderr)

    args.arch_desc = None
    args.arch_meta = None
    args.kernel_packages = ()
    if args.kernels:
        from repro.kernels import load_kernel_suite

        args.kernel_packages = tuple(
            package for _path, package in load_kernel_suite(args.kernels)
        )

    if args.merge_shards:
        documents = [read_shard_export(path) for path in args.merge_shards]
        merged = merge_shard_documents(documents)
        # The exports name the sweep — and the architecture — they came
        # from; explicit --scale/--seed/--arch/--kernels were rejected
        # above.  A recorded kernel suite rebuilds from its shipped
        # documents, so the merge needs no package directories on disk.
        args.scale, args.seed = merged["scale"], merged["seed"]
        params = (ArchParams(**merged["params"])
                  if merged["params"] is not None else DEFAULT_PARAMS)
        kernels = ()
        if merged.get("kernels"):
            from repro.kernels import from_document, register

            kernels = tuple(
                from_document(doc, "<merged shard export>")
                for doc in merged["kernels"]
            )
            for package in kernels:
                register(package)
        engine = Engine(cache_dir=args.cache_dir, jobs=args.jobs,
                        grouping=not args.no_group,
                        group_size=args.group_size)
        args.engine = engine
        engine.cache.preload(merged["entries"])
        results = run_all(args.scale, args.seed, engine=engine,
                          params=params, kernels=kernels)
        if engine.stats.traces_computed or engine.stats.simulations:
            print(
                f"warning: shard exports were incomplete — recomputed "
                f"{engine.stats.traces_computed} traces and "
                f"{engine.stats.simulations} simulations locally",
                file=sys.stderr,
            )
        _emit_report(results, args)
        _finish_bench_run(engine, args, merged_shards=len(documents))
        return 0

    if args.arch_sweep:
        variants = load_arch_sweep(args.arch_sweep)
        # One engine across the whole sweep shares every functional
        # trace (trace identity excludes params).  Shard runs get a
        # fresh engine per variant instead: a shard export is one
        # variant's working set, and a shared memory layer would leak
        # earlier variants' records into later exports.
        engine = (None if args.dispatch or args.shard
                  else Engine(cache_dir=args.cache_dir, jobs=args.jobs,
                              grouping=not args.no_group,
                              group_size=args.group_size))
        for index, (path, desc) in enumerate(variants):
            args.arch_desc = desc
            args.arch_meta = {"name": desc.name, "file": path.name,
                              "fingerprint": desc.fingerprint()}
            if not args.shard:
                if index:
                    print()  # blank line between report sections
                header = (f"arch: {desc.name} ({path.name}) "
                          f"fingerprint {desc.fingerprint()[:12]}")
                if args.format == "ascii":
                    print(f"== {header} ==")
                elif args.format == "csv":
                    print(f"# {header}")
                # JSON sections carry the arch stanza inside the
                # document instead of a header line.
            code = _bench_variant(args, progress, engine=engine)
            if code:
                return code
        print(f"arch sweep: {len(variants)} variant(s) from "
              f"{args.arch_sweep}", file=sys.stderr)
        return 0

    if args.arch:
        args.arch_desc = load_arch(args.arch)
    return _bench_variant(args, progress)


def _bench_variant(args, progress, engine=None) -> int:
    """One architecture variant through the selected execution mode.

    ``args.arch_desc`` (None = the default architecture) supplies the
    :class:`~repro.arch.params.ArchParams` every spec prices; the
    shard/stream/dispatch/profile machinery is completely arch-agnostic
    — specs carry their parameters, so variants land on disjoint
    fingerprints with no extra plumbing.
    """
    from repro.engine import (
        Engine,
        parse_shard,
        shard_export_document,
        shard_specs,
        write_shard_export,
    )
    from repro.experiments.report import all_specs, run_all

    desc = args.arch_desc
    params = desc.params if desc is not None else DEFAULT_PARAMS
    kernels = args.kernel_packages
    context = {"arch": desc.name} if desc is not None else {}
    if kernels:
        context["kernels"] = len(kernels)

    if args.dispatch:
        # The fleet computes; _run_dispatch builds its own HTTP-backed
        # engine, so don't construct a local one just to discard it.
        return _run_dispatch(args, progress, params, context, kernels)

    if engine is None:
        engine = Engine(cache_dir=args.cache_dir, jobs=args.jobs,
                        grouping=not args.no_group,
                        group_size=args.group_size)
    args.engine = engine

    if args.shard:
        index, count = parse_shard(args.shard)
        specs = shard_specs(
            all_specs(args.scale, args.seed, params, kernels),
            index, count,
        )
        if args.stream:
            for done, (_i, run_result) in enumerate(
                    engine.stream(specs), 1):
                progress(done, len(specs), run_result)
        else:
            engine.execute(specs)
        # A cycle-warm run never reads traces; pull them in so the
        # export is complete and the merge recomputes nothing.
        engine.prefetch_traces(specs)
        document = shard_export_document(
            engine, scale=args.scale, seed=args.seed,
            shard=(index, count),
            params=params if desc is not None else None,
            arch=desc.name if desc is not None else None,
            kernels=kernels or None,
        )
        if args.export_shard:
            write_shard_export(args.export_shard, document)
        else:
            print(json.dumps(document, sort_keys=True))
        label = f"[{desc.name}] " if desc is not None else ""
        print(
            f"{label}shard {index}/{count}: {len(specs)} specs, "
            f"{len(document['entries'])} cache records"
            + (f" -> {args.export_shard}" if args.export_shard else ""),
            file=sys.stderr,
        )
        _finish_bench_run(engine, args, shard=f"{index}/{count}",
                          **context)
        return 0

    if args.profile:
        return _run_profiled(engine, args, params, context, kernels)

    if args.stream:
        from repro.experiments.report import stream_pairs

        _emit_streamed(
            stream_pairs(args.scale, args.seed, engine,
                         on_result=progress, params=params,
                         kernels=kernels),
            args, params, kernels,
        )
    else:
        results = run_all(args.scale, args.seed, engine=engine,
                          params=params, kernels=kernels)
        _emit_report(results, args)
    _finish_bench_run(engine, args, **context)
    return 0


def _run_profiled(engine, args, params=DEFAULT_PARAMS,
                  context: Dict[str, object] = {}, kernels=()) -> int:
    """``repro bench --profile``: the batch report with phase timings.

    Runs the same specs as a plain batch bench, split into timed phases
    (functional traces, then each architecture model's simulations, then
    the cached-replay report assembly) and writes the machine-readable
    ``BENCH_<timestamp>.json`` perf-trajectory record.  The report on
    stdout stays byte-identical to an unprofiled run — the profile is a
    side artifact, like the engine's run log.
    """
    import time

    from repro.engine import BenchProfiler
    from repro.experiments.report import all_specs, run_all

    profiler = BenchProfiler(engine)
    specs = all_specs(args.scale, args.seed, params, kernels)
    profiler.run_engine_phases(specs)
    # run_all replays the now-warm memo and assembles every experiment
    # table — the report comes out of this phase, so "assemble" also
    # measures the warm-cache replay cost.
    results = profiler.phase(
        "assemble",
        lambda: run_all(args.scale, args.seed, engine=engine,
                        params=params, kernels=kernels),
    )
    _emit_report(results, args)
    document = profiler.document(scale=args.scale, seed=args.seed,
                                 jobs=args.jobs, spec_count=len(specs))
    path = args.profile_out or time.strftime(
        "BENCH_%Y%m%dT%H%M%SZ.json", time.gmtime()
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for phase in profiler.phases:
        print(f"profile: {phase['phase']}: {phase['seconds']:.3f}s",
              file=sys.stderr)
    print(f"profile: {document['total_seconds']:.3f}s total over "
          f"{len(specs)} specs -> {path}", file=sys.stderr)
    _finish_bench_run(engine, args, profile=str(path), **context)
    return 0


def _run_dispatch(args, progress, params=DEFAULT_PARAMS,
                  context: Dict[str, object] = {}, kernels=()) -> int:
    """``repro bench --dispatch URL``: run the sweep on a worker fleet.

    The specs go to the coordinator as one job; workers pull them
    dynamically (work stealing) and share every trace and cycle record
    through the server's cache backend.  Each result lands here exactly
    once (the cursor protocol); the report is then assembled locally
    against the shared cache, so the output is byte-identical to a
    local run in every format.
    """
    from repro.baselines.base import CycleResult
    from repro.engine import Engine, fingerprint
    from repro.engine.distributed.backend import HTTPBackend
    from repro.engine.distributed.worker import (
        CoordinatorClient,
        dispatch_job,
    )
    from repro.engine.spec import RunResult
    from repro.errors import DistributedError
    from repro.experiments.report import all_specs

    specs = all_specs(args.scale, args.seed, params, kernels)
    client = CoordinatorClient(args.dispatch)
    # Traces the assembly needs come over HTTP from the shared cache;
    # cycle results are preloaded into the memory layer as they land.
    engine = Engine(backend=HTTPBackend(args.dispatch))
    args.engine = engine

    def landed():
        done = 0
        for index, payload in dispatch_job(
                client, [spec.to_payload() for spec in specs],
                scale=args.scale, seed=args.seed,
                group=not args.no_group, group_size=args.group_size):
            if not 0 <= index < len(specs):
                raise DistributedError(
                    f"coordinator returned result index {index} outside "
                    f"our {len(specs)}-spec job"
                )
            spec = specs[index]
            engine.cache.preload(
                {fingerprint(spec.cache_key()): payload}
            )
            done += 1
            if args.stream:
                progress(done, len(specs), RunResult(
                    spec, CycleResult.from_payload(payload), cached=False
                ))
            yield index, payload

    _emit_streamed(landed(), args, params, kernels)
    if engine.stats.traces_computed or engine.stats.simulations:
        print(
            f"warning: the dispatched working set was incomplete — "
            f"recomputed {engine.stats.traces_computed} traces and "
            f"{engine.stats.simulations} simulations locally",
            file=sys.stderr,
        )
    _finish_bench_run(engine, args, dispatch=args.dispatch, **context)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine.cache import ENGINE_VERSION
    from repro.engine.distributed.backend import LocalBackend, MemoryBackend
    from repro.engine.distributed.coordinator import Coordinator
    from repro.engine.distributed.journal import JobJournal
    from repro.engine.distributed.server import DistributedServer

    from repro.errors import DistributedError

    backend = (LocalBackend(args.cache_dir) if args.cache_dir
               else MemoryBackend())
    if args.state_dir:
        # Durable mode: replay the write-ahead journal (an empty or
        # absent one replays to an empty table), so a restarted server
        # resumes the fleet where the previous process left it.
        coordinator, resumed = Coordinator.resume(
            JobJournal(args.state_dir),
            lease_timeout=args.lease_timeout, schedule=args.schedule,
        )
        if resumed["jobs"]:
            print(
                f"resumed {resumed['jobs']} job(s) from "
                f"{args.state_dir}: {resumed['active']} active, "
                f"{resumed['results']} delivered result(s) kept, "
                f"{resumed['requeued']} task(s) requeued"
                + (" (torn final journal line dropped)"
                   if resumed["torn"] else ""),
                file=sys.stderr,
            )
    else:
        coordinator = Coordinator(lease_timeout=args.lease_timeout,
                                  schedule=args.schedule)
    try:
        server = DistributedServer(
            backend, coordinator, host=args.host, port=args.port,
        )
    except OSError as error:
        # Port in use, unresolvable host: a one-line diagnostic like
        # every other CLI failure, not a socketserver traceback.
        raise DistributedError(
            f"cannot serve on {args.host}:{args.port}: {error}"
        ) from error
    print(
        f"serving cache + coordinator on {server.url} "
        f"({backend.describe()}, {coordinator.durability}, "
        f"engine v{ENGINE_VERSION}, "
        f"{args.schedule} scheduling) — stop with "
        f"Ctrl-C or POST {server.url}/admin/shutdown",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.httpd.server_close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.engine.distributed.worker import (
        default_worker_id,
        work_loop,
    )

    if args.lease_batch < 1:
        print("error: --lease-batch must be at least 1", file=sys.stderr)
        return 2
    worker = default_worker_id()

    def on_task(kind: str, task: dict) -> None:
        if kind == "trace":
            detail = (f"trace {task['workload']}@{task['scale']} "
                      f"seed={task['seed']}")
        elif "specs" in task:
            lead = task["specs"][0]
            detail = (f"sim batch x{len(task['specs'])} "
                      f"{lead['workload']}@{lead['scale']}")
        else:
            spec = task["spec"]
            model = spec["model"]
            label = model.get("label") or model.get("model")
            detail = (f"sim {spec['workload']}@{spec['scale']} "
                      f"seed={spec['seed']} {label}")
        print(f"[{worker}] {detail}", file=sys.stderr)

    try:
        summary = work_loop(
            args.connect, poll=args.poll, max_idle=args.max_idle,
            worker_id=worker, on_task=on_task,
            lease_batch=args.lease_batch, cache_dir=args.cache_dir,
            reconnect=args.reconnect,
        )
    except KeyboardInterrupt:
        # Same clean exit as `repro serve`: any lease we held expires
        # and is requeued to the surviving workers.
        print(f"[{worker}] interrupted", file=sys.stderr)
        return 130
    print(
        f"[{worker}] done: {summary.traces_computed} traces computed, "
        f"{summary.trace_cache_hits} trace cache hits, "
        f"{summary.sims} simulations, {summary.failures} failures",
        file=sys.stderr,
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine.cache_admin import collect_stats, prune

    if args.cache_command == "stats":
        stats = collect_stats(args.cache_dir, budget_mb=args.budget_mb)
        size_mb = stats.total_bytes / (1024 * 1024)
        budget_mb = stats.budget_bytes / (1024 * 1024)
        kinds = ", ".join(
            f"{kind}: {count}" for kind, count in sorted(stats.by_kind.items())
        ) or "empty"
        versions = ", ".join(
            f"v{version if version is not None else '?'}: {count}"
            for version, count in sorted(
                stats.by_version.items(), key=lambda item: str(item[0])
            )
        ) or "-"
        print(f"cache {stats.root}")
        print(f"  entries: {stats.entries} ({kinds})")
        skipped = stats.by_kind.get("unknown", 0)
        if skipped:
            # Foreign or truncated files under the fan-out are not
            # records; they are reported, not fatal, and `repro cache
            # prune --drop-stale-versions` reclaims them.
            print(f"  skipped: {skipped} unreadable or foreign "
                  f"file{'s' if skipped != 1 else ''}")
        print(f"  size: {stats.total_bytes} bytes ({size_mb:.2f} MiB), "
              f"budget {budget_mb:.0f} MiB"
              + (" [OVER BUDGET]" if stats.over_budget else ""))
        print(f"  engine versions: {versions}")
        print(f"  runs logged: {len(stats.runs)}")
        if stats.runs:
            informative = stats.last_informative_run()
            record, rate = (informative if informative is not None
                            else (stats.runs[-1], None))
            rate_text = f"{100.0 * rate:.1f}%" if rate is not None else "n/a"
            print(f"  last run: {record.get('command', '?')} "
                  f"scale={record.get('scale', '?')} hit rate {rate_text}")
            aggregate = stats.aggregate_hit_rate
            if aggregate is not None:
                print(f"  aggregate hit rate: {100.0 * aggregate:.1f}%")
        if stats.over_budget:
            print(
                f"warning: cache exceeds its {budget_mb:.0f} MiB budget; "
                f"reclaim space with 'repro cache prune --cache-dir "
                f"{stats.root} --max-size-mb {budget_mb:.0f}'",
                file=sys.stderr,
            )
        return 0

    # prune
    max_size_bytes = (int(args.max_size_mb * 1024 * 1024)
                      if args.max_size_mb is not None else None)
    report = prune(
        args.cache_dir,
        max_age_days=args.max_age_days,
        stale_versions=args.drop_stale_versions,
        max_size_bytes=max_size_bytes,
    )
    reasons = ", ".join(
        f"{reason}: {count}" for reason, count in sorted(report.reasons.items())
    )
    print(f"pruned {report.removed} of {report.examined} entries "
          f"({report.removed_bytes} bytes)"
          + (f" [{reasons}]" if reasons else ""))
    print(f"kept {report.kept} entries ({report.kept_bytes} bytes)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ablations,
        fig11_pe_models,
        fig12_control_network,
        fig13_network_scaling,
        fig14_agile,
        fig15_utilization,
        fig16_balance,
        fig17_sota,
        table4_area,
        table6_network_area,
    )

    if args.name == "fig13":
        fig13_network_scaling.run().print()
    elif args.name == "table4":
        table4_area.run().print()
    elif args.name == "table6":
        table6_network_area.run().print()
    elif args.name == "ablations":
        for result in ablations.run(args.scale):
            result.print()
            print()
    else:
        module = {
            "fig11": fig11_pe_models,
            "fig12": fig12_control_network,
            "fig14": fig14_agile,
            "fig15": fig15_utilization,
            "fig16": fig16_balance,
            "fig17": fig17_sota,
        }[args.name]
        module.run(args.scale).print()
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    header = (f"{'kernel':<8} {'group':<14} {'blocks':>6} {'ops':>5} "
              f"{'loops':>5} {'depth':>5} {'branches':>8} "
              f"{'under-branch%':>13} {'dyn ops':>9}")
    print(header)
    print("-" * len(header))
    for workload in ALL_WORKLOADS:
        instance = workload.instance(args.scale)
        instance.check()
        profile = analysis.profile(instance.cdfg, instance.run().trace)
        print(f"{workload.short:<8} {workload.group:<14} "
              f"{profile.blocks:>6} {profile.static_ops:>5} "
              f"{profile.loop_count:>5} {profile.max_loop_depth:>5} "
              f"{profile.divergent_branches:>8} "
              f"{profile.ops_under_branch_pct:>12.1f}% "
              f"{profile.dynamic_ops:>9}")
    print("\nall outputs verified against reference implementations")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = get_workload(args.kernel)
    instance = workload.instance(args.scale)
    instance.check()
    kernel = KernelInstance(instance.cdfg, instance.run().trace)
    params = DEFAULT_PARAMS
    models = [
        VonNeumannModel(params),
        DataflowModel(params),
        SoftbrainModel(params),
        TIAModel(params),
        RevelModel(params),
        RipTideModel(params),
        MarionetteModel(params, control_network=False, agile=False),
        MarionetteModel(params),
        IdealModel(params),
    ]
    print(f"{workload.name} @ {args.scale}: {instance.cdfg.summary()}")
    baseline = None
    for model in models:
        cycles = model.simulate(kernel).cycles
        baseline = baseline or cycles
        print(f"  {model.config.name:<36} {cycles:>9} cycles "
              f"({baseline / cycles:5.2f}x)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.arch.params import DEFAULT_PARAMS
    from repro.kernels import load_kernel, run_kernel

    code = _check_arch_paths(args.arch, None)
    if code:
        return code
    package = load_kernel(args.kernel_dir)
    params, arch_name = DEFAULT_PARAMS, "default"
    if args.arch:
        from repro.arch.spec import load_arch

        desc = load_arch(args.arch)
        params, arch_name = desc.params, desc.name
    report = run_kernel(package, params=params, arch_name=arch_name,
                        strategy=args.strategy,
                        max_cycles=args.max_cycles)
    if args.format == "json":
        print(json.dumps(report.to_document(), indent=2, sort_keys=True))
    else:
        for line in report.to_lines():
            print(line)
    return 0 if report.passed else 1


def _cmd_kernel(args: argparse.Namespace) -> int:
    from repro.kernels import load_kernel_suite

    if args.kernel_command == "validate":
        entries = load_kernel_suite(args.directory)
        for path, package in entries:
            print(f"ok: {package.name} ({path}) "
                  f"fingerprint {package.fingerprint()[:12]} — "
                  f"{len(package.program)} instruction(s), "
                  f"{len(package.arrays)} array(s)")
        print(f"{len(entries)} valid kernel package(s) in "
              f"{args.directory}")
        return 0
    return _kernel_init(args)


def _kernel_init(args: argparse.Namespace) -> int:
    """``repro kernel init NAME``: scaffold (or export) a package."""
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.kernels import from_document, save_kernel

    out = Path(args.out or args.name)
    if (out / "kernel.json").exists():
        raise ConfigurationError(
            f"{out} already holds a kernel package — refusing to "
            f"overwrite it (pass --out for a fresh directory)"
        )
    if args.from_workload:
        from repro.kernels import package_from_workload

        source = package_from_workload(
            get_workload(args.from_workload), args.scale, seed=args.seed
        )
        # Rename through the document form so the result is re-validated
        # (the package name is part of the fingerprint).
        document = source.to_document()
        document["name"] = args.name
        document["description"] = (
            f"exported from built-in workload "
            f"{args.from_workload!r} @ {args.scale} seed={args.seed}"
        )
        package = from_document(document, "<kernel init --from>")
    else:
        package = from_document(
            _init_template(args.name), "<kernel init template>"
        )
    save_kernel(package, out)
    print(f"wrote kernel package {package.name!r} to {out} "
          f"(fingerprint {package.fingerprint()[:12]}) — check it with "
          f"'repro kernel validate {out}', run it with 'repro run {out}'")
    return 0


def _init_template(name: str) -> Dict[str, object]:
    """The scaffold package: ``y[i] = a*x[i] + y[i]`` over 16 elements."""
    n, a = 16, 3
    x = list(range(n))
    y = [1] * n
    return {
        "schema": "repro-kernel",
        "version": 1,
        "name": name,
        "description": "scaffold kernel: y[i] = a*x[i] + y[i]",
        "scale_hint": "tiny",
        "params": {"n": n, "a": a},
        "loop": {"var": "i", "start": 0, "stop": "n", "step": 1},
        "arrays": [
            {"name": "x", "shape": [n], "dtype": "int64",
             "role": "input"},
            {"name": "y", "shape": [n], "dtype": "int64",
             "role": "inout"},
        ],
        "program": [
            ["t0", "load", "x", "i"],
            ["t1", "mul", "a", "t0"],
            ["t2", "load", "y", "i"],
            ["t3", "add", "t1", "t2"],
            ["", "store", "y", "i", "t3"],
        ],
        "memory": {"x": x, "y": y},
        "expected": {"y": [a * xi + yi for xi, yi in zip(x, y)]},
    }


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argument parser.

    Exposed separately from :func:`main` so tooling (the docs
    consistency check in ``tests/test_docs.py``) can introspect every
    subcommand and flag without invoking anything.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Marionette (MICRO'23) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="all tables and figures")
    p_report.add_argument("--scale", default="small",
                          choices=("tiny", "small", "paper"))
    p_report.set_defaults(fn=_cmd_report)

    p_bench = sub.add_parser(
        "bench", help="full report through the parallel experiment engine"
    )
    p_bench.add_argument("--scale", default=None,
                         choices=("tiny", "small", "paper"))
    p_bench.add_argument("--seed", type=int, default=None)
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial)")
    p_bench.add_argument("--cache-dir", default=None,
                         help="on-disk trace/result cache directory")
    p_bench.add_argument("--format", default=None,
                         choices=("ascii", "json", "csv"))
    p_bench.add_argument("--stream", action="store_true",
                         help="emit per-spec progress to stderr as workers "
                              "finish (the report itself is unchanged)")
    p_bench.add_argument("--shard", default=None, metavar="K/N",
                         help="run only the K-th of N fingerprint-prefix "
                              "shards and emit a mergeable shard export")
    p_bench.add_argument("--export-shard", default=None, metavar="PATH",
                         help="write the shard export here instead of "
                              "stdout (requires --shard)")
    p_bench.add_argument("--merge-shards", nargs="+", default=None,
                         metavar="PATH",
                         help="reassemble shard exports into the "
                              "canonical report (no recomputation)")
    p_bench.add_argument("--stats", action="store_true",
                         help="attach engine_stats to the JSON document "
                              "(off by default so reports stay "
                              "byte-identical across cache states)")
    p_bench.add_argument("--dispatch", default=None, metavar="URL",
                         help="run the sweep on a 'repro serve' worker "
                              "fleet (dynamic work stealing; report is "
                              "byte-identical to a local run)")
    p_bench.add_argument("--arch", default=None, metavar="FILE",
                         help="price the whole evaluation on this "
                              "architecture description (JSON, see "
                              "docs/ARCH.md; the default spec file "
                              "reproduces the flagless report "
                              "byte-for-byte)")
    p_bench.add_argument("--arch-sweep", default=None, metavar="DIR",
                         help="run every *.json architecture "
                              "description in DIR (deterministic "
                              "filename order), emitting one report "
                              "section per spec file — composes with "
                              "--shard, --stream, and --dispatch")
    p_bench.add_argument("--kernels", default=None, metavar="DIR",
                         help="also price every external kernel package "
                              "in DIR (one package or a directory of "
                              "them, see docs/KERNELS.md) and append a "
                              "'kernels' report section — composes with "
                              "--stream, --shard, and --dispatch")
    p_bench.add_argument("--prune-to-budget", action="store_true",
                         help="after the run, prune the cache down to "
                              "the size budget instead of only warning "
                              "(requires --cache-dir)")
    p_bench.add_argument("--profile", action="store_true",
                         help="time the run's phases (traces, per-model "
                              "simulation, report assembly) and write a "
                              "machine-readable BENCH_<timestamp>.json "
                              "perf-trajectory record (the report itself "
                              "is unchanged)")
    p_bench.add_argument("--profile-out", default=None, metavar="PATH",
                         help="write the --profile document here instead "
                              "of the timestamped default")
    p_bench.add_argument("--group-size", type=int, default=None,
                         metavar="N",
                         help="cap each batch-compatible spec group at N "
                              "members (default: unbounded); groups share "
                              "placement pools and schedule tapes, and "
                              "under --dispatch each group travels as one "
                              "batch-granular task")
    p_bench.add_argument("--no-group", action="store_true",
                         help="disable the grouping law entirely: every "
                              "spec simulates (and dispatches) alone")
    p_bench.set_defaults(fn=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="HTTP cache server + work-stealing coordinator"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: loopback only)")
    p_serve.add_argument("--port", type=int, default=8417,
                         help="bind port (0 picks an ephemeral port)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="back the cache server with this directory "
                              "(default: in-memory, lives with the "
                              "server process)")
    p_serve.add_argument("--state-dir", default=None, metavar="PATH",
                         help="journal every job-table transition to "
                              "PATH/queue.jsonl and replay it on "
                              "startup, so a restarted server resumes "
                              "its fleet: delivered results stay "
                              "pollable, pending tasks re-lease "
                              "(default: in-memory — a restart loses "
                              "the job table)")
    p_serve.add_argument("--lease-timeout", type=float, default=60.0,
                         metavar="SEC",
                         help="seconds a worker may hold a task before "
                              "it is requeued to the fleet")
    p_serve.add_argument("--schedule", default="fifo",
                         choices=("fifo", "fair"),
                         help="lease scheduling across queued jobs: "
                              "'fifo' drains the oldest job first "
                              "(spare capacity spills to younger jobs); "
                              "'fair' round-robins leases across active "
                              "jobs so a long sweep cannot monopolize "
                              "the fleet")
    p_serve.set_defaults(fn=_cmd_serve)

    p_worker = sub.add_parser(
        "worker", help="pull-loop worker for a 'repro serve' coordinator"
    )
    p_worker.add_argument("--connect", required=True, metavar="URL",
                          help="the 'repro serve' endpoint to pull "
                               "tasks from")
    p_worker.add_argument("--poll", type=float, default=0.2, metavar="SEC",
                          help="seconds between polls when no task is "
                               "ready")
    p_worker.add_argument("--max-idle", type=float, default=None,
                          metavar="SEC",
                          help="exit after this long without work "
                               "(default: serve until the coordinator "
                               "shuts down)")
    p_worker.add_argument("--lease-batch", type=int, default=1,
                          metavar="N",
                          help="lease up to N tasks per round trip and "
                               "piggyback their acks on the next lease "
                               "call (default: 1; raise it on "
                               "high-latency links)")
    p_worker.add_argument("--cache-dir", default=None, metavar="PATH",
                          help="tier a local read-through disk cache in "
                               "front of the server's HTTP cache, so a "
                               "warm record read costs zero network "
                               "round trips (WAN fleets)")
    p_worker.add_argument("--reconnect", type=float, default=60.0,
                          metavar="SEC",
                          help="keep retrying (capped exponential "
                               "backoff) through up to SEC seconds of "
                               "server unavailability — a coordinator "
                               "restart no longer kills the fleet — "
                               "before giving up (0 fails on the first "
                               "transport error)")
    p_worker.set_defaults(fn=_cmd_worker)

    p_cache = sub.add_parser("cache", help="cache administration")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cstats = cache_sub.add_parser(
        "stats", help="entry counts, size vs budget, per-run hit rates"
    )
    p_cstats.add_argument("--cache-dir", required=True)
    p_cstats.add_argument("--budget-mb", type=float, default=None,
                          help="size budget for the warning threshold "
                               "(default: $REPRO_CACHE_BUDGET_MB or 512)")
    p_cstats.set_defaults(fn=_cmd_cache)
    p_cprune = cache_sub.add_parser(
        "prune", help="delete records by age, stale version, or size budget"
    )
    p_cprune.add_argument("--cache-dir", required=True)
    p_cprune.add_argument("--max-age-days", type=float, default=None,
                          help="drop records older than this many days")
    p_cprune.add_argument("--drop-stale-versions", action="store_true",
                          help="drop records from other engine versions "
                               "(and unreadable files)")
    p_cprune.add_argument("--max-size-mb", type=float, default=None,
                          help="evict oldest records until the cache "
                               "fits this budget")
    p_cprune.set_defaults(fn=_cmd_cache)

    p_exp = sub.add_parser("experiment", help="one table/figure")
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.add_argument("--scale", default="small",
                       choices=("tiny", "small", "paper"))
    p_exp.set_defaults(fn=_cmd_experiment)

    p_wl = sub.add_parser("workloads", help="run + profile the suite")
    p_wl.add_argument("--scale", default="tiny",
                      choices=("tiny", "small", "paper"))
    p_wl.set_defaults(fn=_cmd_workloads)

    p_sim = sub.add_parser("simulate", help="one kernel on every model")
    p_sim.add_argument("kernel")
    p_sim.add_argument("--scale", default="small",
                       choices=("tiny", "small", "paper"))
    p_sim.set_defaults(fn=_cmd_simulate)

    p_run = sub.add_parser(
        "run", help="simulate one external kernel package cycle-accurately"
    )
    p_run.add_argument("kernel_dir", metavar="KERNEL_DIR",
                       help="a kernel package directory "
                            "(kernel.json + memory/*.csv, see "
                            "docs/KERNELS.md)")
    p_run.add_argument("--arch", default=None, metavar="FILE",
                       help="price the kernel under this architecture "
                            "description instead of the default "
                            "parameters")
    p_run.add_argument("--strategy", default="event",
                       choices=("event", "naive", "batch"),
                       help="array simulator scheduling strategy "
                            "(all produce identical results; batch "
                            "degenerates to the event schedule for a "
                            "single run)")
    p_run.add_argument("--format", default="ascii",
                       choices=("ascii", "json"))
    p_run.add_argument("--max-cycles", type=int, default=200_000,
                       metavar="N",
                       help="abort a runaway kernel after N cycles")
    p_run.set_defaults(fn=_cmd_run)

    p_kernel = sub.add_parser(
        "kernel", help="author and check external kernel packages"
    )
    kernel_sub = p_kernel.add_subparsers(dest="kernel_command",
                                         required=True)
    p_kval = kernel_sub.add_parser(
        "validate", help="validate one package (or a directory of them)"
    )
    p_kval.add_argument("directory", metavar="DIR",
                        help="a kernel package directory, or a directory "
                             "of kernel packages")
    p_kval.set_defaults(fn=_cmd_kernel)
    p_kinit = kernel_sub.add_parser(
        "init", help="scaffold a new kernel package directory"
    )
    p_kinit.add_argument("name", metavar="NAME",
                         help="the kernel name (also the default output "
                              "directory)")
    p_kinit.add_argument("--from", dest="from_workload", default=None,
                         metavar="WORKLOAD",
                         help="export a built-in workload instead of "
                              "writing the scaffold template (the "
                              "workload must fit the single-loop "
                              "kernel class)")
    p_kinit.add_argument("--scale", default="tiny",
                         choices=("tiny", "small", "paper"),
                         help="workload scale for --from exports")
    p_kinit.add_argument("--seed", type=int, default=0,
                         help="input seed for --from exports")
    p_kinit.add_argument("--out", default=None, metavar="DIR",
                         help="write the package here instead of ./NAME")
    p_kinit.set_defaults(fn=_cmd_kernel)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as error:
        # Package errors (bad shard selector, malformed export, worker
        # failure, unknown kernel) are user-facing diagnostics, not
        # tracebacks — match the exit code of the argparse-level errors.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
