"""Messages and statistics shared across the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class DataToken:
    """A data-plane token in flight to ``(dst_pe, port)``."""

    dst_pe: int
    port: int
    value: float


@dataclass(frozen=True)
class CtrlMsg:
    """A control-plane message carrying an instruction address.

    ``steer=True`` marks per-token steering from a BRANCH-mode sender: the
    receiver consumes one steering address per firing (keeping token/config
    pairing).  ``steer=False`` marks standing (re)configuration from DFG /
    LOOP senders or the controller.
    """

    dst_pe: int
    addr: int
    src_pe: int = -1
    steer: bool = False


@dataclass
class PEStats:
    """Per-PE cycle accounting."""

    pe: int
    cycles_unconfigured: int = 0
    cycles_configuring: int = 0
    cycles_waiting: int = 0
    cycles_executing: int = 0
    firings: int = 0
    configurations: int = 0
    ctrl_msgs_sent: int = 0
    data_tokens_sent: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.cycles_unconfigured + self.cycles_configuring
            + self.cycles_waiting + self.cycles_executing
        )

    @property
    def utilization(self) -> float:
        """Fraction of cycles spent executing."""
        total = self.total_cycles
        return self.cycles_executing / total if total else 0.0


@dataclass
class ArrayStats:
    """Whole-array accounting for one simulation."""

    cycles: int = 0
    pe_stats: Dict[int, PEStats] = field(default_factory=dict)
    ctrl_network_conflicts: int = 0
    ctrl_msgs_delivered: int = 0
    halted: bool = False

    @property
    def mean_utilization(self) -> float:
        stats = list(self.pe_stats.values())
        if not stats:
            return 0.0
        return sum(s.utilization for s in stats) / len(stats)

    def busiest_pe(self) -> Optional[int]:
        if not self.pe_stats:
            return None
        return max(self.pe_stats.values(), key=lambda s: s.firings).pe
