"""Messages, statistics, and event-scheduling structures of the simulator."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class DataToken:
    """A data-plane token in flight to ``(dst_pe, port)``."""

    dst_pe: int
    port: int
    value: float


@dataclass(frozen=True)
class CtrlMsg:
    """A control-plane message carrying an instruction address.

    ``steer=True`` marks per-token steering from a BRANCH-mode sender: the
    receiver consumes one steering address per firing (keeping token/config
    pairing).  ``steer=False`` marks standing (re)configuration from DFG /
    LOOP senders or the controller.
    """

    dst_pe: int
    addr: int
    src_pe: int = -1
    steer: bool = False


@dataclass
class PEStats:
    """Per-PE cycle accounting."""

    pe: int
    cycles_unconfigured: int = 0
    cycles_configuring: int = 0
    cycles_waiting: int = 0
    cycles_executing: int = 0
    firings: int = 0
    configurations: int = 0
    ctrl_msgs_sent: int = 0
    data_tokens_sent: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.cycles_unconfigured + self.cycles_configuring
            + self.cycles_waiting + self.cycles_executing
        )

    @property
    def utilization(self) -> float:
        """Fraction of cycles spent executing."""
        total = self.total_cycles
        return self.cycles_executing / total if total else 0.0


class DeliverySchedule:
    """In-flight tokens/messages keyed by their delivery cycle.

    Besides the per-cycle buckets the naive stepper used, it tracks the
    earliest pending delivery cycle (a lazily-cleaned heap of bucket
    keys), which is what lets the event-driven stepper jump straight to
    the next arrival instead of polling empty cycles.
    """

    __slots__ = ("_by_cycle", "_heap")

    def __init__(self) -> None:
        self._by_cycle: Dict[int, list] = {}
        self._heap: List[int] = []

    def push(self, cycle: int, item) -> None:
        bucket = self._by_cycle.get(cycle)
        if bucket is None:
            self._by_cycle[cycle] = bucket = []
            heapq.heappush(self._heap, cycle)
        bucket.append(item)

    def extend(self, cycle: int, items: Iterable) -> None:
        for item in items:
            self.push(cycle, item)

    def pop_due(self, cycle: int) -> list:
        """Deliveries scheduled for exactly ``cycle`` (delivery order)."""
        return self._by_cycle.pop(cycle, [])

    def next_cycle(self) -> Optional[int]:
        """Earliest cycle holding a pending delivery, or ``None``."""
        heap = self._heap
        while heap and heap[0] not in self._by_cycle:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def __bool__(self) -> bool:
        return bool(self._by_cycle)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_cycle.values())


class MulticastQueue:
    """The array's outstanding control messages, pre-grouped for offer.

    A sender's same-``(addr, steer)`` fan-out is one multicast through
    the CS-Benes network.  The naive stepper used to rebuild these
    groups from a flat message list on every cycle; this queue maintains
    them incrementally at enqueue time instead.  Ordering matches the
    flat rebuild exactly (the network arbitrates first-come-first-served
    over the offered list, so order is observable in conflict counts):
    groups keep the insertion order of their first message, a rejected
    group re-enters ahead of newly emitted ones, and a retried message
    merges into its key's existing group wherever that group sits.
    """

    __slots__ = ("_groups", "_count")

    #: (src_pe, addr, steer) — one multicast per key per offer.
    Key = Tuple[int, int, bool]

    def __init__(self) -> None:
        self._groups: Dict[MulticastQueue.Key, List[CtrlMsg]] = {}
        self._count = 0

    def append(self, msg: CtrlMsg) -> None:
        key = (msg.src_pe, msg.addr, msg.steer)
        self._groups.setdefault(key, []).append(msg)
        self._count += 1

    def extend(self, msgs: Iterable[CtrlMsg]) -> None:
        for msg in msgs:
            self.append(msg)

    def groups(self) -> List[Tuple["MulticastQueue.Key", List[CtrlMsg]]]:
        """The current multicast groups in first-offered order."""
        return list(self._groups.items())

    def reset_to(self, rejected: Iterable[List[CtrlMsg]]) -> None:
        """Replace the queue with the network's rejected groups."""
        self._groups = {}
        self._count = 0
        for msgs in rejected:
            for msg in msgs:
                self.append(msg)

    def __bool__(self) -> bool:
        return self._count > 0

    def __len__(self) -> int:
        return self._count


@dataclass
class ArrayStats:
    """Whole-array accounting for one simulation."""

    cycles: int = 0
    pe_stats: Dict[int, PEStats] = field(default_factory=dict)
    ctrl_network_conflicts: int = 0
    ctrl_msgs_delivered: int = 0
    halted: bool = False

    @property
    def mean_utilization(self) -> float:
        stats = list(self.pe_stats.values())
        if not stats:
            return 0.0
        return sum(s.utilization for s in stats) / len(stats)

    def busiest_pe(self) -> Optional[int]:
        if not self.pe_stats:
            return None
        return max(self.pe_stats.values(), key=lambda s: s.firings).pe
