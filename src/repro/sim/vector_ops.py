"""Vetted numpy equivalents of the scalar opcode evaluators.

The batch follower data plane (`sim/batch.py`) may evaluate a whole
cohort column with one numpy call — but only when doing so is provably
bit-identical to running the scalar ``evaluate`` function from
`ir/ops.py` row by row.  This module is the single place that proof
lives:

* every entry in :data:`VECTOR_OPS` maps an opcode to an int64 ufunc
  expression whose result equals the scalar evaluator **exactly** for
  Python-int operands bounded by :data:`OPERAND_LIMIT`;
* opcodes absent from the table (DIV/MOD, the float transcendentals,
  CONST/INPUT/LOAD/STORE) never take the vector path — DIV/MOD because
  zero divisors must raise :class:`~repro.errors.IRError` per row and
  C-style truncation differs from numpy's floor division, floats
  because their repr-sensitive formatting is part of the bit-identity
  contract.

Why the :data:`OPERAND_LIMIT` bound (|v| <= 2**31 - 1) makes int64
arithmetic exact:

=========  =====================================================
op         worst-case magnitude on bounded inputs
=========  =====================================================
ADD/SUB    < 2**32                      (fits int64)
MUL        <= 2**62                     (fits int64)
MIN/MAX    bounded by inputs
ABS/NEG    <= 2**31 - 1
AND/OR/..  operands masked to [0, 2**32); results likewise
SHL        ((a & MASK) << 31) < 2**63   (fits int64)
SHR        masked operand >> s, non-negative
EQ..GE     0 or 1
SELECT     picks one bounded operand
=========  =====================================================

The 32-bit ops mask with ``& 0xFFFFFFFF`` *before* shifting/combining,
which matches Python's two's-complement ``&`` on negative ints — numpy
int64 uses two's complement as well, so the masked low 32 bits agree.
`tests/test_vector_ops.py` additionally proves every table entry
against the scalar evaluator by exhaustive differential sweeps over
boundary operands.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.ir.ops import Opcode

#: Vector eligibility bound: operands must be Python ints with
#: ``abs(v) <= OPERAND_LIMIT`` for the int64 proofs above to hold.
OPERAND_LIMIT = 2**31 - 1

_MASK = np.int64(0xFFFFFFFF)
_SHIFT_BITS = np.int64(31)


def _cmp(ufunc: Callable) -> Callable[..., np.ndarray]:
    def run(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ufunc(a, b).astype(np.int64)

    return run


def _shl(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Low 32 bits of (a << s) depend only on the low 32 bits of a, so
    # masking first keeps the intermediate below 2**63 (no int64
    # overflow) while matching _wrap32(a << (b & 31)) exactly.
    return ((a & _MASK) << (b & _SHIFT_BITS)) & _MASK


def _shr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a & _MASK) >> (b & _SHIFT_BITS)


#: Opcode -> int64 vector evaluator, bit-identical to the scalar
#: ``op_info(op).evaluate`` for bounded Python-int operands.
VECTOR_OPS: Dict[Opcode, Callable[..., np.ndarray]] = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MIN: np.minimum,
    Opcode.MAX: np.maximum,
    Opcode.ABS: np.abs,
    Opcode.NEG: np.negative,
    Opcode.AND: lambda a, b: (a & _MASK) & (b & _MASK),
    Opcode.OR: lambda a, b: (a & _MASK) | (b & _MASK),
    Opcode.XOR: lambda a, b: (a & _MASK) ^ (b & _MASK),
    Opcode.NOT: lambda a: (~a) & _MASK,
    Opcode.SHL: _shl,
    Opcode.SHR: _shr,
    Opcode.EQ: _cmp(np.equal),
    Opcode.NE: _cmp(np.not_equal),
    Opcode.LT: _cmp(np.less),
    Opcode.LE: _cmp(np.less_equal),
    Opcode.GT: _cmp(np.greater),
    Opcode.GE: _cmp(np.greater_equal),
    Opcode.SELECT: lambda c, a, b: np.where(c != 0, a, b),
}
