"""The data flow part of a Marionette PE.

A pipelined function unit (one issue per cycle, ``t_execute`` cycles to
complete), ``N_PORTS`` token input FIFOs fed by the mesh, and a small local
register file.  The live instruction is a *standing* configuration: it fires
whenever its port sources all hold tokens, giving the producer/consumer
pipeline its II of 1 in the steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.ir.ops import op_info
from repro.isa.data import DataInstruction, DataKind
from repro.isa.operands import Dest, DestKind, N_PORTS, N_REGS, Operand, OperandKind
from repro.isa.program import TriggerEntry
from repro.sim.fifo import Fifo


@dataclass
class Firing:
    """An operation in flight through the FU pipeline."""

    complete_cycle: int
    instruction: DataInstruction
    values: Tuple[float, ...]
    result: Optional[float] = None


@dataclass
class FiringOutcome:
    """What a completed firing produces (consumed by the array)."""

    dests: Tuple[Dest, ...]
    value: Optional[float] = None
    store: Optional[Tuple[int, int, float]] = None  # (array_id, index, value)
    load: Optional[Tuple[int, int]] = None          # (array_id, index)
    branch_result: Optional[bool] = None
    loop_exit: bool = False


class DataFlowPart:
    """FU + ports + registers for one PE."""

    def __init__(self, pe: int, *, t_execute: int) -> None:
        self.pe = pe
        self.t_execute = t_execute
        self.ports: List[Fifo[float]] = [
            Fifo(None, name=f"pe{pe}.port{i}") for i in range(N_PORTS)
        ]
        self.regs: List[float] = [0] * N_REGS
        self.inflight: List[Firing] = []
        # Loop operator state.
        self._loop_latched = False
        self._loop_cur = 0
        self._loop_hi = 0
        self._loop_step = 1
        self.loop_exhausted = False
        self.firings = 0

    # ------------------------------------------------------------------
    def push_token(self, port: int, value: float) -> None:
        if not 0 <= port < N_PORTS:
            raise SimulationError(f"PE {self.pe}: port {port} out of range")
        self.ports[port].push(value)

    def rearm_loop(self) -> None:
        """Restart the loop operator for a new run (new bounds latch)."""
        self._loop_latched = False
        self.loop_exhausted = False

    # ------------------------------------------------------------------
    def _self_recurrence_blocked(self, instruction: DataInstruction) -> bool:
        if not self.inflight:
            return False
        read_regs = {
            o.value for o in instruction.srcs
            if o.kind is OperandKind.REG
        }
        if not read_regs:
            return False
        for firing in self.inflight:
            for dest in firing.instruction.dests:
                if dest.kind is DestKind.REG and dest.port in read_regs:
                    return True
        return False

    def _operand_ready(self, operand: Operand) -> bool:
        if operand.kind is OperandKind.PORT:
            return not self.ports[operand.value].empty
        return True

    def _read_operand(self, operand: Operand) -> float:
        if operand.kind is OperandKind.PORT:
            return self.ports[operand.value].pop()
        if operand.kind is OperandKind.REG:
            return self.regs[operand.value]
        return operand.value

    def can_fire(self, instruction: DataInstruction) -> bool:
        """Whether all required port sources hold tokens.

        An instruction that reads a register it also writes (a loop-carried
        accumulator) must wait for its in-flight predecessor: the self
        recurrence bounds its II at ``t_execute``.
        """
        if instruction.kind is DataKind.NOP:
            return False
        if self._self_recurrence_blocked(instruction):
            return False
        if instruction.kind is DataKind.LOOP:
            if self.loop_exhausted:
                return False
            if self._loop_latched:
                return True
            return all(
                self._operand_ready(o) for o in instruction.loop_bounds
            )
        return all(self._operand_ready(o) for o in instruction.srcs)

    # ------------------------------------------------------------------
    def issue(self, instruction: DataInstruction, cycle: int) -> None:
        """Consume operands and enter the FU pipeline (one per cycle)."""
        if instruction.kind is DataKind.LOOP:
            if not self._loop_latched:
                lo = self._read_operand(instruction.loop_bounds[0])
                hi = self._read_operand(instruction.loop_bounds[1])
                step = self._read_operand(instruction.loop_bounds[2])
                if step <= 0:
                    raise SimulationError(
                        f"PE {self.pe}: loop step must be positive"
                    )
                self._loop_latched = True
                self._loop_cur = lo
                self._loop_hi = hi
                self._loop_step = step
            if self._loop_cur >= self._loop_hi:
                # Zero-trip loop: emit nothing, signal exit immediately.
                self.loop_exhausted = True
                values: Tuple[float, ...] = ()
            else:
                values = (self._loop_cur,)
                self._loop_cur += self._loop_step
                if self._loop_cur >= self._loop_hi:
                    self.loop_exhausted = True
        else:
            values = tuple(self._read_operand(o) for o in instruction.srcs)
        self.inflight.append(
            Firing(cycle + self.t_execute, instruction, values)
        )
        self.firings += 1

    def complete(self, cycle: int) -> List[FiringOutcome]:
        """Finish firings due this cycle and report their outcomes."""
        done = [f for f in self.inflight if f.complete_cycle <= cycle]
        if not done:
            return []
        self.inflight = [f for f in self.inflight if f.complete_cycle > cycle]
        outcomes: List[FiringOutcome] = []
        for firing in done:
            outcomes.append(self._finish(firing))
        return outcomes

    def _finish(self, firing: Firing) -> FiringOutcome:
        instruction = firing.instruction
        kind = instruction.kind
        if kind is DataKind.COMPUTE:
            assert instruction.opcode is not None
            fn = op_info(instruction.opcode).evaluate
            assert fn is not None
            result = fn(*firing.values)
            branch = None
            if any(d.kind is DestKind.CONTROL for d in instruction.dests):
                branch = bool(result)
            for dest in instruction.dests:
                if dest.kind is DestKind.REG:
                    self.regs[dest.port] = result
            return FiringOutcome(
                dests=instruction.dests, value=result, branch_result=branch
            )
        if kind is DataKind.LOAD:
            # Value resolved by the array, which owns the scratchpad.
            index = int(firing.values[0])
            return FiringOutcome(
                dests=instruction.dests,
                load=(instruction.array_id, index),
            )
        if kind is DataKind.STORE:
            index = int(firing.values[0])
            return FiringOutcome(
                dests=(),
                store=(instruction.array_id, index, firing.values[1]),
            )
        if kind is DataKind.LOOP:
            is_last = self.loop_exhausted and not any(
                f.instruction.kind is DataKind.LOOP for f in self.inflight
            )
            if not firing.values:  # zero-trip loop
                return FiringOutcome(dests=(), loop_exit=True)
            for dest in instruction.dests:
                if dest.kind is DestKind.REG:
                    self.regs[dest.port] = firing.values[0]
            return FiringOutcome(
                dests=instruction.dests, value=firing.values[0],
                loop_exit=is_last,
            )
        raise SimulationError(f"unexpected firing of {kind}")  # pragma: no cover
