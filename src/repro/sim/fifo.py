"""Bounded FIFOs used for token ports and control queues."""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, Optional, TypeVar

from repro.errors import SimulationError

T = TypeVar("T")


class Fifo(Generic[T]):
    """A bounded FIFO with occupancy statistics.

    ``capacity=None`` models an unbounded queue (the simulator's data ports
    use generous depths; the paper's simulator "optimistically offers high
    memory access flexibility", Section 6.1).
    """

    def __init__(self, capacity: Optional[int] = None,
                 name: str = "fifo") -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError("fifo capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def push(self, item: T) -> None:
        if self.full:
            raise SimulationError(f"push to full fifo {self.name!r}")
        self._items.append(item)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))

    def try_push(self, item: T) -> bool:
        if self.full:
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        if self.empty:
            raise SimulationError(f"pop from empty fifo {self.name!r}")
        self.pops += 1
        return self._items.popleft()

    def peek(self) -> T:
        if self.empty:
            raise SimulationError(f"peek at empty fifo {self.name!r}")
        return self._items[0]

    def drain(self) -> List[T]:
        out = list(self._items)
        self.pops += len(self._items)
        self._items.clear()
        return out
