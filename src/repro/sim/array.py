"""The whole-array simulator: PEs + control network + data mesh + memory.

Per cycle:

1. deliver in-flight data tokens and control messages due this cycle;
2. offer queued control messages to the CS-Benes network (destination
   conflicts retry next cycle — the "no arbitration during control
   transfers" property holds for conflict-free sets);
3. step every PE (control part, then data part); collect emitted control
   messages and completed firings;
4. turn firing outcomes into scratchpad accesses and mesh tokens
   (fixed ``data_net_latency`` per remote transfer, same-PE register/port
   forwarding immediate).

The simulation halts when a control message reaches the controller port
(kernels route their final basic block's exit there) or when the array goes
quiescent.

Two stepping strategies produce bit-identical results:

* ``strategy="event"`` (default) is the fast path: it only steps PEs that
  can actually act — delivery targets, PEs with a pending configuration or
  a fireable instruction, and PEs whose configuration countdown or
  in-flight firing reaches its deadline — and, when a whole cycle has no
  event, jumps ``cycle`` straight to the next delivery / deadline /
  quiescence point.  Skipped idle cycles are billed to the per-PE stats
  counters in O(1) jumps (:meth:`MarionettePE.advance_to`), so cycle
  counts, ``ArrayStats``, and scratchpad images match the naive stepper
  exactly;
* ``strategy="naive"`` is the reference stepper (every PE, every cycle),
  kept for differential testing — see ``tests/test_sim_event.py``.

A third strategy, ``"batch"``, shares the event stepper's schedule but
exists for cohorts: :func:`repro.sim.batch.simulate_batch` runs N data
variants of one program in lockstep (leader + vectorized followers).  A
single :class:`ArraySimulator` run under ``strategy="batch"`` is a
cohort of one — the leader alone — so it executes the event loop and
stays bit-identical to both other strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.arch.network.cs_benes import ControlMessage, ControlNetwork
from repro.arch.params import ArchParams
from repro.isa.control import SenderMode
from repro.isa.operands import DestKind
from repro.isa.program import ArrayProgram
from repro.sim.events import (
    ArrayStats,
    CtrlMsg,
    DataToken,
    DeliverySchedule,
    MulticastQueue,
)
from repro.sim.memory import Scratchpad
from repro.sim.pe import MarionettePE

#: Stepping strategies accepted by :class:`ArraySimulator`.
STRATEGIES = ("event", "naive", "batch")


@dataclass
class SimulationResult:
    """Outcome of one array simulation."""

    cycles: int
    stats: ArrayStats
    scratchpad: Scratchpad
    halted: bool

    def array_out(self, program: ArrayProgram, name: str) -> np.ndarray:
        """Dump a named array image from the scratchpad."""
        entry = program.array_index().get(name)
        if entry is None:
            available = sorted(program.array_index())
            raise SimulationError(
                f"array {name!r} not in program table "
                f"(available: {', '.join(available) or 'none'})"
            )
        base, length = entry
        return self.scratchpad.dump_array(base, length)


class ArraySimulator:
    """Cycle-accurate simulator of a Marionette array."""

    def __init__(self, params: ArchParams, program: ArrayProgram,
                 *, scratchpad_words: Optional[int] = None,
                 strategy: str = "event") -> None:
        program.validate()
        if strategy not in STRATEGIES:
            raise SimulationError(
                f"unknown stepping strategy {strategy!r}; "
                f"pick one of {STRATEGIES}"
            )
        self.params = params
        self.program = program
        self.strategy = strategy
        words = scratchpad_words or (params.sram_kb * 1024 // 4)
        self.scratchpad = Scratchpad(words, banks=params.sram_banks)
        self.network = ControlNetwork(
            params.n_pes, latency=params.control_transfer_latency
        )
        steered = self._steered_pes()
        self.pes: Dict[int, MarionettePE] = {
            pe: MarionettePE(
                pe, program.program_for(pe),
                t_config=params.t_config, t_execute=params.t_execute,
                fifo_depth=params.control_fifo_depth,
                steered=pe in steered,
            )
            for pe in range(params.n_pes)
        }
        for (pe, reg), value in program.reg_init.items():
            self.pes[pe].data.regs[reg] = value
        # In-flight queues keyed by delivery cycle.
        self._data_inflight = DeliverySchedule()
        self._ctrl_inflight = DeliverySchedule()
        self._ctrl_queue = MulticastQueue()
        self._controller_msgs: List[CtrlMsg] = []
        #: event strategy: PE -> next cycle it can act spontaneously.
        self._pe_next: Dict[int, int] = {}
        #: event strategy: PEs with firings in the FU pipeline.  Inflight
        #: only changes inside a PE's own step, so maintaining the set on
        #: stepped PEs keeps the busy checks O(live), not O(n_pes).
        self._inflight_pes: Set[int] = set()
        self.stats = ArrayStats()

    # ------------------------------------------------------------------
    def _steered_pes(self) -> set:
        out = set()
        for pe, pe_program in self.program.pe_programs.items():
            for entry in pe_program:
                if entry.control.mode is SenderMode.BRANCH:
                    out.update(entry.control.targets)
        return out

    # ------------------------------------------------------------------
    def load_array(self, name: str, values) -> None:
        """Pre-load a named array image into the scratchpad."""
        entry = self.program.array_index().get(name)
        if entry is None:
            raise SimulationError(f"array {name!r} not in program table")
        base, length = entry
        if len(values) > length:
            raise SimulationError(
                f"array {name!r}: {len(values)} values exceed "
                f"declared length {length}"
            )
        self.scratchpad.load_array(base, values)

    # ------------------------------------------------------------------
    def run(self, *, max_cycles: int = 200_000,
            halt_messages: int = 1) -> SimulationResult:
        """Run until the controller hears ``halt_messages`` exits, the
        array quiesces, or ``max_cycles`` elapse."""
        # Cycle 0: the controller pushes initial configurations.
        for pe, addr in self.program.initial_addrs.items():
            self._ctrl_queue.append(
                CtrlMsg(dst_pe=pe, addr=addr, src_pe=self.params.n_pes)
            )
        if self.strategy == "naive":
            cycle = self._run_naive(max_cycles, halt_messages)
        else:
            # "event", and "batch" degenerating to its leader-only case
            # (a cohort of one run; see repro.sim.batch).
            cycle = self._run_event(max_cycles, halt_messages)
        return self._finalize(cycle)

    def _run_naive(self, max_cycles: int, halt_messages: int) -> int:
        """The reference loop: step every cycle, poll every PE."""
        cycle = 0
        idle_streak = 0
        idle_limit = self._idle_limit()
        while cycle < max_cycles:
            busy = self._step_cycle(cycle)
            cycle += 1
            if len(self._controller_msgs) >= halt_messages:
                self.stats.halted = True
                break
            idle_streak = 0 if busy else idle_streak + 1
            if idle_streak > idle_limit:
                break
        return cycle

    def _run_event(self, max_cycles: int, halt_messages: int) -> int:
        """The fast path: step event cycles, jump across the rest.

        Events are cycles where anything can happen: a delivery is due,
        the control queue holds messages to offer, or some PE can act
        (see :meth:`MarionettePE.next_event`).  Between events the array
        state is frozen except for counters, so the loop advances
        ``cycle`` directly — crediting the naive stepper's idle-streak
        quiescence window cycle-for-cycle when nothing at all is in
        flight — and the skipped stretch is billed to the PE stats
        lazily on the next touch (:meth:`MarionettePE.advance_to`).
        """
        cycle = 0
        idle_streak = 0
        idle_limit = self._idle_limit()
        while cycle < max_cycles:
            busy = self._step_cycle_event(cycle)
            cycle += 1
            if len(self._controller_msgs) >= halt_messages:
                self.stats.halted = True
                break
            idle_streak = 0 if busy else idle_streak + 1
            if idle_streak > idle_limit:
                break
            target, busy_skip = self._skip_target(
                cycle, idle_streak, idle_limit, max_cycles
            )
            if target > cycle:
                if not busy_skip:
                    idle_streak += target - cycle
                cycle = target
                if cycle >= max_cycles or idle_streak > idle_limit:
                    break
        return cycle

    def _idle_limit(self) -> int:
        return 4 * self.params.data_net_latency + 8

    def _busy_while_skipping(self) -> bool:
        """Whether the naive stepper would report skipped cycles busy.

        Matches the tail of :meth:`_step_cycle`: anything in flight
        keeps the idle-streak quiescence detector at zero even when no
        PE acts.  (The control queue is empty during a skip — a
        non-empty queue is an immediate event.)
        """
        return bool(self._data_inflight or self._ctrl_inflight
                    or self._ctrl_queue or self._inflight_pes)

    def _skip_target(self, cycle: int, idle_streak: int, idle_limit: int,
                     max_cycles: int) -> Tuple[int, bool]:
        """``(next cycle worth executing, busy-while-skipping)``.

        The target is ``cycle`` itself when the next cycle is an event.
        When nothing is in flight, the naive stepper would grind idle
        cycles only until its quiescence window closes — so the skip is
        capped at that break point (and at ``max_cycles``), keeping the
        final cycle count identical.
        """
        nxt = self._next_event_cycle(cycle)
        busy_skip = self._busy_while_skipping()
        if busy_skip:
            horizon = max_cycles
        else:
            horizon = min(max_cycles,
                          cycle + idle_limit - idle_streak + 1)
        if nxt is None:
            return horizon, busy_skip
        return min(max(nxt, cycle), horizon), busy_skip

    def _next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which anything can happen."""
        if self._ctrl_queue:
            return now
        best: Optional[int] = None
        for when in (self._data_inflight.next_cycle(),
                     self._ctrl_inflight.next_cycle()):
            if when is not None:
                best = when if best is None else min(best, when)
        if self._pe_next:
            when = min(self._pe_next.values())
            best = when if best is None else min(best, when)
        return best

    def _finalize(self, cycle: int) -> SimulationResult:
        for pe in self.pes.values():
            pe.advance_to(cycle)  # bill idle cycles skipped at the tail
        self.stats.cycles = cycle
        self.stats.pe_stats = {pe: p.stats for pe, p in self.pes.items()}
        self.stats.ctrl_network_conflicts = self.network.conflicts
        self.stats.ctrl_msgs_delivered = self.network.messages_delivered
        return SimulationResult(
            cycles=cycle, stats=self.stats, scratchpad=self.scratchpad,
            halted=self.stats.halted,
        )

    # ------------------------------------------------------------------
    def _offer_ctrl_queue(self, cycle: int) -> None:
        """Step 2: offer queued control messages to the network.  A
        sender's same-address fan-out is one multicast (the CS stage
        spreads it); groups are maintained at enqueue time."""
        offered = [
            ControlMessage.to(
                max(0, src), [m.dst_pe for m in msgs], payload=msgs
            )
            for (src, _addr, _steer), msgs in self._ctrl_queue.groups()
        ]
        report = self.network.offer(offered)
        self._ctrl_queue.reset_to(
            rejected.payload for rejected in report.rejected
        )
        arrival = cycle + self.params.control_transfer_latency
        for delivered in report.delivered:
            self._ctrl_inflight.extend(arrival, delivered.payload)

    def _step_cycle(self, cycle: int) -> bool:
        busy = False

        # 1. Deliveries due this cycle.
        for token in self._data_inflight.pop_due(cycle):
            self.pes[token.dst_pe].receive_data(token.port, token.value)
            busy = True
        for msg in self._ctrl_inflight.pop_due(cycle):
            if msg.dst_pe >= self.params.n_pes:
                self._controller_msgs.append(msg)
            elif not self.pes[msg.dst_pe].receive_ctrl(msg):
                self._ctrl_queue.append(msg)  # control FIFO full: retry
            busy = True

        # 2. Offer queued control messages to the network.
        if self._ctrl_queue:
            self._offer_ctrl_queue(cycle)
            busy = True

        # 3. Step PEs.
        for pe in self.pes.values():
            msgs, outcomes = pe.step(cycle)
            if msgs or outcomes:
                busy = True
            self._ctrl_queue.extend(msgs)
            for outcome in outcomes:
                self._apply_outcome(pe.pe, outcome, cycle)

        if any(pe.data.inflight for pe in self.pes.values()):
            busy = True
        if self._data_inflight or self._ctrl_inflight or self._ctrl_queue:
            busy = True
        return busy

    def _step_cycle_event(self, cycle: int) -> bool:
        """One cycle of the event strategy: only live PEs are stepped.

        A PE is live when a delivery lands on it this cycle or its
        scheduled :meth:`~repro.sim.pe.MarionettePE.next_event` is due.
        Idle PEs neither act nor emit in the naive stepper, so skipping
        them changes nothing observable; their per-cycle stats counters
        are credited lazily by :meth:`~repro.sim.pe.MarionettePE.advance_to`.
        """
        busy = False
        touched: Set[int] = set()

        # 1. Deliveries due this cycle.
        for token in self._data_inflight.pop_due(cycle):
            self.pes[token.dst_pe].receive_data(token.port, token.value)
            touched.add(token.dst_pe)
            busy = True
        for msg in self._ctrl_inflight.pop_due(cycle):
            if msg.dst_pe >= self.params.n_pes:
                self._controller_msgs.append(msg)
            else:
                if not self.pes[msg.dst_pe].receive_ctrl(msg):
                    self._ctrl_queue.append(msg)  # control FIFO full: retry
                touched.add(msg.dst_pe)
            busy = True

        # 2. Offer queued control messages to the network.
        if self._ctrl_queue:
            self._offer_ctrl_queue(cycle)
            busy = True

        # 3. Step the live PEs (ascending id, like the naive full scan:
        # scratchpad access order and control-queue order are
        # observable through bank conflicts and network arbitration).
        touched.update(
            pe for pe, when in self._pe_next.items() if when <= cycle
        )
        for pe_id in sorted(touched):
            pe = self.pes[pe_id]
            pe.advance_to(cycle)
            msgs, outcomes = pe.step(cycle)
            if msgs or outcomes:
                busy = True
            self._ctrl_queue.extend(msgs)
            for outcome in outcomes:
                self._apply_outcome(pe_id, outcome, cycle)
            when = pe.next_event(cycle + 1)
            if when is None:
                self._pe_next.pop(pe_id, None)
            else:
                self._pe_next[pe_id] = when
            if pe.data.inflight:
                self._inflight_pes.add(pe_id)
            else:
                self._inflight_pes.discard(pe_id)

        if self._inflight_pes:
            busy = True
        if self._data_inflight or self._ctrl_inflight or self._ctrl_queue:
            busy = True
        return busy

    # ------------------------------------------------------------------
    def _apply_outcome(self, pe: int, outcome, cycle: int) -> None:
        value = outcome.value
        if outcome.load is not None:
            array_id, index = outcome.load
            name, base, length = self.program.array_table[array_id]
            if not 0 <= index < length:
                raise SimulationError(
                    f"PE {pe}: {name}[{index}] out of bounds"
                )
            value = self.scratchpad.read(base + index, cycle)
        if outcome.store is not None:
            array_id, index, stored = outcome.store
            name, base, length = self.program.array_table[array_id]
            if not 0 <= index < length:
                raise SimulationError(
                    f"PE {pe}: {name}[{index}] out of bounds"
                )
            self.scratchpad.write(base + index, stored, cycle)
            return
        if value is None:
            return
        for dest in outcome.dests:
            if dest.kind is not DestKind.PE_PORT:
                continue  # REG/CONTROL handled in the data path
            if dest.pe == pe:
                self.pes[pe].receive_data(dest.port, value)
            else:
                arrival = cycle + self.params.data_net_latency
                self._data_inflight.push(
                    arrival, DataToken(dest.pe, dest.port, value)
                )
                self.pes[pe].stats.data_tokens_sent += 1
