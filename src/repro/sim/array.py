"""The whole-array simulator: PEs + control network + data mesh + memory.

Per cycle:

1. deliver in-flight data tokens and control messages due this cycle;
2. offer queued control messages to the CS-Benes network (destination
   conflicts retry next cycle — the "no arbitration during control
   transfers" property holds for conflict-free sets);
3. step every PE (control part, then data part); collect emitted control
   messages and completed firings;
4. turn firing outcomes into scratchpad accesses and mesh tokens
   (fixed ``data_net_latency`` per remote transfer, same-PE register/port
   forwarding immediate).

The simulation halts when a control message reaches the controller port
(kernels route their final basic block's exit there) or when the array goes
quiescent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.arch.network.cs_benes import ControlMessage, ControlNetwork
from repro.arch.params import ArchParams
from repro.isa.control import SenderMode
from repro.isa.operands import DestKind
from repro.isa.program import ArrayProgram
from repro.sim.events import ArrayStats, CtrlMsg, DataToken
from repro.sim.memory import Scratchpad
from repro.sim.pe import MarionettePE


@dataclass
class SimulationResult:
    """Outcome of one array simulation."""

    cycles: int
    stats: ArrayStats
    scratchpad: Scratchpad
    halted: bool

    def array_out(self, program: ArrayProgram, name: str) -> np.ndarray:
        """Dump a named array image from the scratchpad."""
        for array_id, (aname, base, length) in program.array_table.items():
            if aname == name:
                return self.scratchpad.dump_array(base, length)
        available = sorted(
            aname for aname, _base, _length in program.array_table.values()
        )
        raise SimulationError(
            f"array {name!r} not in program table "
            f"(available: {', '.join(available) or 'none'})"
        )


class ArraySimulator:
    """Cycle-stepped simulator of a Marionette array."""

    def __init__(self, params: ArchParams, program: ArrayProgram,
                 *, scratchpad_words: Optional[int] = None) -> None:
        program.validate()
        self.params = params
        self.program = program
        words = scratchpad_words or (params.sram_kb * 1024 // 4)
        self.scratchpad = Scratchpad(words, banks=params.sram_banks)
        self.network = ControlNetwork(
            params.n_pes, latency=params.ctrl_net_latency
        )
        steered = self._steered_pes()
        self.pes: Dict[int, MarionettePE] = {
            pe: MarionettePE(
                pe, program.program_for(pe),
                t_config=params.t_config, t_execute=params.t_execute,
                fifo_depth=params.control_fifo_depth,
                steered=pe in steered,
            )
            for pe in range(params.n_pes)
        }
        for (pe, reg), value in program.reg_init.items():
            self.pes[pe].data.regs[reg] = value
        # In-flight queues keyed by delivery cycle.
        self._data_inflight: Dict[int, List[DataToken]] = {}
        self._ctrl_inflight: Dict[int, List[CtrlMsg]] = {}
        self._ctrl_queue: List[CtrlMsg] = []
        self._controller_msgs: List[CtrlMsg] = []
        self.stats = ArrayStats()

    # ------------------------------------------------------------------
    def _steered_pes(self) -> set:
        out = set()
        for pe, pe_program in self.program.pe_programs.items():
            for entry in pe_program:
                if entry.control.mode is SenderMode.BRANCH:
                    out.update(entry.control.targets)
        return out

    # ------------------------------------------------------------------
    def load_array(self, name: str, values) -> None:
        """Pre-load a named array image into the scratchpad."""
        for array_id, (aname, base, length) in self.program.array_table.items():
            if aname == name:
                if len(values) > length:
                    raise SimulationError(
                        f"array {name!r}: {len(values)} values exceed "
                        f"declared length {length}"
                    )
                self.scratchpad.load_array(base, values)
                return
        raise SimulationError(f"array {name!r} not in program table")

    # ------------------------------------------------------------------
    def run(self, *, max_cycles: int = 200_000,
            halt_messages: int = 1) -> SimulationResult:
        """Run until the controller hears ``halt_messages`` exits, the
        array quiesces, or ``max_cycles`` elapse."""
        # Cycle 0: the controller pushes initial configurations.
        for pe, addr in self.program.initial_addrs.items():
            self._ctrl_queue.append(
                CtrlMsg(dst_pe=pe, addr=addr, src_pe=self.params.n_pes)
            )

        cycle = 0
        idle_streak = 0
        while cycle < max_cycles:
            busy = self._step_cycle(cycle)
            cycle += 1
            if len(self._controller_msgs) >= halt_messages:
                self.stats.halted = True
                break
            idle_streak = 0 if busy else idle_streak + 1
            if idle_streak > 4 * self.params.data_net_latency + 8:
                break
        self.stats.cycles = cycle
        self.stats.pe_stats = {pe: p.stats for pe, p in self.pes.items()}
        self.stats.ctrl_network_conflicts = self.network.conflicts
        self.stats.ctrl_msgs_delivered = self.network.messages_delivered
        return SimulationResult(
            cycles=cycle, stats=self.stats, scratchpad=self.scratchpad,
            halted=self.stats.halted,
        )

    # ------------------------------------------------------------------
    def _step_cycle(self, cycle: int) -> bool:
        busy = False

        # 1. Deliveries due this cycle.
        for token in self._data_inflight.pop(cycle, []):
            self.pes[token.dst_pe].receive_data(token.port, token.value)
            busy = True
        for msg in self._ctrl_inflight.pop(cycle, []):
            if msg.dst_pe >= self.params.n_pes:
                self._controller_msgs.append(msg)
            elif not self.pes[msg.dst_pe].receive_ctrl(msg):
                self._ctrl_queue.append(msg)  # control FIFO full: retry
            busy = True

        # 2. Offer queued control messages to the network.  A sender's
        # same-address fan-out is one multicast (the CS stage spreads it).
        if self._ctrl_queue:
            groups: Dict[Tuple[int, int, bool], List[CtrlMsg]] = {}
            for m in self._ctrl_queue:
                groups.setdefault((m.src_pe, m.addr, m.steer), []).append(m)
            offered = [
                ControlMessage.to(
                    max(0, src), [m.dst_pe for m in msgs], payload=msgs
                )
                for (src, _addr, _steer), msgs in groups.items()
            ]
            report = self.network.offer(offered)
            self._ctrl_queue = [
                m for rejected in report.rejected for m in rejected.payload
            ]
            arrival = cycle + self.params.ctrl_net_latency
            for delivered in report.delivered:
                self._ctrl_inflight.setdefault(arrival, []).extend(
                    delivered.payload
                )
            busy = True

        # 3. Step PEs.
        for pe in self.pes.values():
            msgs, outcomes = pe.step(cycle)
            if msgs or outcomes:
                busy = True
            self._ctrl_queue.extend(msgs)
            for outcome in outcomes:
                self._apply_outcome(pe.pe, outcome, cycle)

        if any(pe.data.inflight for pe in self.pes.values()):
            busy = True
        if self._data_inflight or self._ctrl_inflight or self._ctrl_queue:
            busy = True
        return busy

    # ------------------------------------------------------------------
    def _apply_outcome(self, pe: int, outcome, cycle: int) -> None:
        value = outcome.value
        if outcome.load is not None:
            array_id, index = outcome.load
            name, base, length = self.program.array_table[array_id]
            if not 0 <= index < length:
                raise SimulationError(
                    f"PE {pe}: {name}[{index}] out of bounds"
                )
            value = self.scratchpad.read(base + index, cycle)
        if outcome.store is not None:
            array_id, index, stored = outcome.store
            name, base, length = self.program.array_table[array_id]
            if not 0 <= index < length:
                raise SimulationError(
                    f"PE {pe}: {name}[{index}] out of bounds"
                )
            self.scratchpad.write(base + index, stored, cycle)
            return
        if value is None:
            return
        for dest in outcome.dests:
            if dest.kind is not DestKind.PE_PORT:
                continue  # REG/CONTROL handled in the data path
            if dest.pe == pe:
                self.pes[pe].receive_data(dest.port, value)
            else:
                arrival = cycle + self.params.data_net_latency
                self._data_inflight.setdefault(arrival, []).append(
                    DataToken(dest.pe, dest.port, value)
                )
                self.pes[pe].stats.data_tokens_sent += 1
