"""The control flow part of a Marionette PE.

Implements the three control-plane micro-architecture units of paper
Section 4.1 / Fig. 5:

* **Control Flow Trigger** — check phase (compare incoming instruction
  address against the current one; identical addresses sustain the standing
  configuration) and configuration phase (``t_config`` cycles to swap the
  live instruction);
* **Control Flow Scheduler** — queues standing configuration requests in a
  control FIFO and arbitrates by priority (deeper loop levels win), holding
  them off while a LOOP-mode instruction is still iterating (Remain Loop
  Config);
* **Control Flow Sender** — on becoming configured in DFG mode, proactively
  forwards ``next_addr`` to the subsequent PEs (Proactive Emit); in BRANCH
  mode, converts each branch result into per-token steering messages; in
  LOOP mode, announces ``exit_addr`` when the data path drains the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.isa.control import ControlDirective, SenderMode
from repro.isa.program import PEProgram, TriggerEntry
from repro.sim.events import CtrlMsg
from repro.sim.fifo import Fifo


class ControlFlowPart:
    """Trigger + Scheduler + Sender for one PE."""

    def __init__(self, pe: int, program: PEProgram, *, t_config: int,
                 fifo_depth: int = 8) -> None:
        self.pe = pe
        self.program = program
        self.t_config = t_config
        self.current_addr: Optional[int] = None
        self._config_timer = 0
        self._config_target: Optional[int] = None
        #: standing configuration requests (the per-PE control FIFO)
        self.pending: Fifo[int] = Fifo(fifo_depth, name=f"pe{pe}.ctrl")
        #: per-token steering addresses from BRANCH-mode senders
        self.steer: Fifo[int] = Fifo(None, name=f"pe{pe}.steer")
        #: set when the live LOOP instruction still iterates
        self.loop_holding = False
        #: set when a same-address LOOP config asks for a counter restart
        self.rearm_pending = False
        self.configurations = 0

    # ------------------------------------------------------------------
    @property
    def configured(self) -> bool:
        return self.current_addr is not None and self._config_timer == 0

    @property
    def configuring(self) -> bool:
        return self._config_timer > 0

    def entry(self) -> Optional[TriggerEntry]:
        if self.current_addr is None:
            return None
        return self.program.get(self.current_addr)

    # ------------------------------------------------------------------
    # Event-driven scheduling hooks
    # ------------------------------------------------------------------
    @property
    def config_remaining(self) -> int:
        """Cycles left until the in-progress configuration completes."""
        return self._config_timer

    def can_pop_pending(self) -> bool:
        """Whether :meth:`step` would pop a standing request this cycle."""
        return (self._config_timer == 0 and not self.pending.empty
                and not self.loop_holding)

    def idle_category(self) -> str:
        """Which :class:`~repro.sim.events.PEStats` counter an externally
        quiet cycle bills: ``configuring`` / ``unconfigured`` /
        ``waiting`` — mirroring the accounting order in
        :meth:`MarionettePE.step`."""
        if self._config_timer > 0:
            return "configuring"
        if self.current_addr is None:
            return "unconfigured"
        return "waiting"

    def advance_idle(self, delta: int) -> str:
        """Advance ``delta`` externally quiet cycles in one jump.

        During such cycles the control part's only per-cycle work is the
        configuration countdown, so the whole stretch bills one stats
        category.  The event scheduler steps the PE *at* its
        configuration-completion deadline, so the countdown can never
        cross zero inside a jump; hitting that means the scheduler lost
        an event, which would silently diverge from the naive stepper —
        fail loudly instead.
        """
        category = self.idle_category()
        if self._config_timer > 0:
            if delta >= self._config_timer:
                raise SimulationError(
                    f"PE {self.pe}: event scheduler skipped a "
                    f"configuration completion ({delta} >= "
                    f"{self._config_timer})"
                )
            self._config_timer -= delta
        return category

    # ------------------------------------------------------------------
    # Check phase
    # ------------------------------------------------------------------
    def receive(self, msg: CtrlMsg) -> bool:
        """Accept an incoming control message.

        Steering goes to the steer FIFO (consumed one per firing); standing
        configuration goes through the trigger's check phase.  Returns
        ``False`` when a bounded FIFO is full (the network retries).
        """
        if msg.steer:
            self.steer.push(msg.addr)
            return True
        if msg.addr == self.current_addr and not self.configuring:
            # Same address: sustain the configuration.  A LOOP entry is
            # re-armed so the next loop run restarts the counter.
            entry = self.entry()
            if entry is not None and entry.control.mode is SenderMode.LOOP:
                return self._rearm_requested()
            return True
        return self.pending.try_push(msg.addr)

    def _rearm_requested(self) -> bool:
        self.rearm_pending = True
        return True

    # ------------------------------------------------------------------
    # Configuration phase
    # ------------------------------------------------------------------
    def step(self) -> List[CtrlMsg]:
        """Advance one cycle; returns Sender messages to inject.

        The check phase (popping a pending address) overlaps the first
        configuration cycle, so a swap costs exactly ``t_config`` cycles.
        """
        out: List[CtrlMsg] = []
        if self._config_timer == 0 and not self.pending.empty \
                and not self.loop_holding:
            addr = self.pending.pop()
            if addr != self.current_addr:
                self._config_target = addr
                self._config_timer = self.t_config
            # Identical queued address: drop (check phase already ran).
        if self._config_timer > 0:
            self._config_timer -= 1
            if self._config_timer == 0:
                self.current_addr = self._config_target
                self._config_target = None
                self.configurations += 1
                out.extend(self._on_configured())
        return out

    def _on_configured(self) -> List[CtrlMsg]:
        """Proactive Emit: DFG-mode entries forward control immediately."""
        entry = self.entry()
        if entry is None:
            raise SimulationError(
                f"PE {self.pe} configured to missing address "
                f"{self.current_addr}"
            )
        directive = entry.control
        if directive.mode is SenderMode.DFG:
            return [
                CtrlMsg(dst_pe=t, addr=directive.next_addr, src_pe=self.pe)
                for t in directive.targets
            ]
        if directive.mode is SenderMode.LOOP:
            self.loop_holding = True
        return []

    # ------------------------------------------------------------------
    # Sender events driven by the data path
    # ------------------------------------------------------------------
    def on_branch_result(self, taken: bool) -> List[CtrlMsg]:
        entry = self.entry()
        if entry is None or entry.control.mode is not SenderMode.BRANCH:
            return []
        directive = entry.control
        addr = directive.true_addr if taken else directive.false_addr
        return [
            CtrlMsg(dst_pe=t, addr=addr, src_pe=self.pe, steer=True)
            for t in directive.targets
        ]

    def on_loop_exit(self) -> List[CtrlMsg]:
        entry = self.entry()
        if entry is None or entry.control.mode is not SenderMode.LOOP:
            return []
        self.loop_holding = False
        directive = entry.control
        return [
            CtrlMsg(dst_pe=t, addr=directive.exit_addr, src_pe=self.pe)
            for t in directive.exit_targets
        ]
