"""Micro-architectural cycle simulator of the Marionette PE array.

This is tier (a) of the evaluation stack (see DESIGN.md): an ISA-level,
cycle-accurate model of the control flow plane (Control Flow Trigger /
Scheduler / Sender), the data flow plane (FU, local registers, token ports),
the CS-Benes control network and the data mesh.  It executes
:class:`~repro.isa.program.ArrayProgram` configurations and is used to
validate the mechanisms cycle-by-cycle (configuration hidden behind
computation, loop pipelining, branch steering).

Three stepping strategies share one behaviour: the default event-driven
fast path (active-PE scheduling + cycle skipping), the naive
poll-everything reference kept for differential testing, and the batch
strategy (:func:`repro.sim.batch.simulate_batch`) that runs N data
variants of one program in lockstep behind a single instrumented leader
— see ``docs/ENGINE.md`` ("Performance") and ``tests/test_sim_event.py``.
"""

from repro.sim.batch import BatchRun, simulate_batch
from repro.sim.fifo import Fifo
from repro.sim.memory import Scratchpad
from repro.sim.events import (
    ArrayStats,
    CtrlMsg,
    DataToken,
    DeliverySchedule,
    MulticastQueue,
    PEStats,
)
from repro.sim.pe import MarionettePE
from repro.sim.array import STRATEGIES, ArraySimulator, SimulationResult

__all__ = [
    "Fifo",
    "Scratchpad",
    "DataToken",
    "CtrlMsg",
    "PEStats",
    "ArrayStats",
    "DeliverySchedule",
    "MulticastQueue",
    "MarionettePE",
    "ArraySimulator",
    "SimulationResult",
    "STRATEGIES",
    "BatchRun",
    "simulate_batch",
]
