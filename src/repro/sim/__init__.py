"""Micro-architectural cycle simulator of the Marionette PE array.

This is tier (a) of the evaluation stack (see DESIGN.md): an ISA-level,
cycle-stepped model of the control flow plane (Control Flow Trigger /
Scheduler / Sender), the data flow plane (FU, local registers, token ports),
the CS-Benes control network and the data mesh.  It executes
:class:`~repro.isa.program.ArrayProgram` configurations and is used to
validate the mechanisms cycle-by-cycle (configuration hidden behind
computation, loop pipelining, branch steering).
"""

from repro.sim.fifo import Fifo
from repro.sim.memory import Scratchpad
from repro.sim.events import DataToken, CtrlMsg, PEStats, ArrayStats
from repro.sim.pe import MarionettePE
from repro.sim.array import ArraySimulator, SimulationResult

__all__ = [
    "Fifo",
    "Scratchpad",
    "DataToken",
    "CtrlMsg",
    "PEStats",
    "ArrayStats",
    "MarionettePE",
    "ArraySimulator",
    "SimulationResult",
]
