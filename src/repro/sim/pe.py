"""A complete Marionette PE: control flow part + data flow part.

The decoupling shows in :meth:`MarionettePE.step`: the control part may be in
its configuration phase while the data part is still issuing and completing
firings of the previous standing instruction — the temporally
loosely-coupled behaviour of paper Fig. 4(a)/(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.isa.control import SenderMode
from repro.isa.data import DataKind
from repro.isa.program import PEProgram
from repro.sim.control_plane import ControlFlowPart
from repro.sim.datapath import DataFlowPart, FiringOutcome
from repro.sim.events import CtrlMsg, PEStats


class MarionettePE:
    """One PE of the array simulator."""

    def __init__(self, pe: int, program: PEProgram, *, t_config: int,
                 t_execute: int, fifo_depth: int = 8,
                 steered: bool = False) -> None:
        self.pe = pe
        self.control = ControlFlowPart(
            pe, program, t_config=t_config, fifo_depth=fifo_depth
        )
        self.data = DataFlowPart(pe, t_execute=t_execute)
        #: PEs targeted by BRANCH-mode senders consume one steering address
        #: per firing, keeping token/configuration pairing exact.
        self.steered = steered
        self.stats = PEStats(pe)
        #: first cycle whose accounting has not been applied yet (the
        #: event-driven stepper bills skipped idle cycles lazily).
        self._accrued_to = 0

    # ------------------------------------------------------------------
    def receive_ctrl(self, msg: CtrlMsg) -> bool:
        return self.control.receive(msg)

    def receive_data(self, port: int, value: float) -> None:
        self.data.push_token(port, value)

    # ------------------------------------------------------------------
    # Event-driven scheduling
    # ------------------------------------------------------------------
    def next_event(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which this PE can act without new
        external input, or ``None`` while it is idle until a delivery.

        ``now`` means "can act immediately next step": the PE would pop a
        pending configuration, apply a re-arm, or issue a firing.  Future
        deadlines come from the configuration countdown and from firings
        in flight through the FU pipeline.  Everything else that changes
        this PE's readiness arrives over the networks, and the array
        steps every delivery target on its arrival cycle.
        """
        ctrl = self.control
        if ctrl.rearm_pending:
            return now
        deadline: Optional[int] = None
        if ctrl.configuring:
            # The countdown decrements once per cycle starting at `now`,
            # completing (and proactively emitting) config_remaining - 1
            # cycles later.
            deadline = now + ctrl.config_remaining - 1
        else:
            if ctrl.can_pop_pending():
                return now
            if ctrl.configured:
                if self.steered:
                    if not ctrl.steer.empty:
                        entry = ctrl.program.get(ctrl.steer.peek())
                        # A missing steered address must still step (and
                        # raise) exactly like the naive stepper would.
                        if entry is None or self.data.can_fire(entry.data):
                            return now
                else:
                    entry = ctrl.entry()
                    if entry is not None and self.data.can_fire(entry.data):
                        return now
        if self.data.inflight:
            complete = max(now, min(
                firing.complete_cycle for firing in self.data.inflight
            ))
            deadline = complete if deadline is None \
                else min(deadline, complete)
        return deadline

    def advance_to(self, cycle: int) -> None:
        """Account the externally quiet cycles up to (excluding) ``cycle``.

        While a PE is neither stepped nor delivered to, its state is
        frozen except for the configuration countdown — so the whole
        stretch bills a single stats counter, in one O(1) jump instead
        of one :meth:`step` per cycle.
        """
        delta = cycle - self._accrued_to
        if delta <= 0:
            return
        category = self.control.advance_idle(delta)
        if category == "configuring":
            self.stats.cycles_configuring += delta
        elif category == "unconfigured":
            self.stats.cycles_unconfigured += delta
        else:
            self.stats.cycles_waiting += delta
        self._accrued_to = cycle

    # ------------------------------------------------------------------
    def step(self, cycle: int) -> Tuple[List[CtrlMsg], List[FiringOutcome]]:
        """Advance one cycle.

        Returns control messages emitted by the Sender and firing outcomes
        completed by the FU this cycle (the array turns outcomes into data
        tokens / memory operations / steering).
        """
        out_msgs: List[CtrlMsg] = []

        # 1. Complete in-flight firings (their results may drive the Sender).
        outcomes = self.data.complete(cycle)
        for outcome in outcomes:
            if outcome.branch_result is not None:
                out_msgs.extend(
                    self.control.on_branch_result(outcome.branch_result)
                )
            if outcome.loop_exit:
                out_msgs.extend(self.control.on_loop_exit())

        # 2. Control part: check/configuration phases + Proactive Emit.
        out_msgs.extend(self.control.step())
        if self.control.rearm_pending:
            self.control.rearm_pending = False
            self.data.rearm_loop()
            self.control.loop_holding = True

        # 3. Data part: apply per-token steering, then issue if ready.
        issued = False
        if self.control.configured:
            if self.steered:
                issued = self._step_steered(cycle)
            else:
                issued = self._step_plain(cycle)

        # 4. Accounting.
        if issued:
            self.stats.firings += 1
            self.stats.cycles_executing += 1
        elif self.control.configuring:
            self.stats.cycles_configuring += 1
        elif not self.control.configured:
            self.stats.cycles_unconfigured += 1
        else:
            self.stats.cycles_waiting += 1
        self.stats.ctrl_msgs_sent += len(out_msgs)
        self._accrued_to = cycle + 1
        return out_msgs, outcomes

    # ------------------------------------------------------------------
    def _step_plain(self, cycle: int) -> bool:
        entry = self.control.entry()
        if entry is None:
            return False
        if not self.data.can_fire(entry.data):
            return False
        self.data.issue(entry.data, cycle)
        return True

    def _step_steered(self, cycle: int) -> bool:
        """Steered PEs fire under the instruction address paired with the
        current token (one steering address consumed per firing)."""
        if self.control.steer.empty:
            return False
        addr = self.control.steer.peek()
        entry = self.control.program.get(addr)
        if entry is None:
            raise SimulationError(
                f"PE {self.pe}: steered to missing address {addr}"
            )
        if not self.data.can_fire(entry.data):
            return False
        self.control.steer.pop()
        # The check phase sustains the configuration when the address
        # repeats; a change would cost a configuration cycle, but steering
        # addresses arrive ahead of data (control net 1 cycle vs mesh ~6),
        # so the swap is hidden — model it as already configured.
        self.control.current_addr = addr
        self.data.issue(entry.data, cycle)
        return True
