"""Batch lockstep simulation: N runs of one program in a single pass.

Sweeps produce exactly this shape of work — the *same* ``ArrayProgram``
simulated over different data images (seeds) and, across arch variants,
different latency parameters on identical geometry.  ``strategy="batch"``
exploits it with a leader/follower design:

* the **leader** (the cohort's first run) executes once under the
  event-driven stepper, instrumented to record a *schedule tape*: every
  instruction issue, firing completion, and outcome application, in
  execution order, with cycle stamps.  The tape is the complete
  cycle-level schedule of the run.
* the **followers** never touch the control plane at all.  Their state is
  held structure-of-arrays over the follower axis ``F`` — the scratchpad
  is an ``(F, words)`` numpy object matrix, each port FIFO holds
  ``(F,)``-vector tokens, registers are ``(F,)`` vectors — and the tape
  is replayed over it: one vectorized update per tape event instead of
  one interpreted simulator pass per run.

The schedule is shared across a cohort iff every control decision is
shared, and the replay *verifies* exactly that: every branch result and
every latched loop bound is compared element-wise against the leader's.
A follower row that disagrees (or drives a load/store out of bounds) is
masked out of the batch with a boolean ``active`` mask and re-simulated
individually under the exact event stepper, so divergence degrades
performance, never correctness.  Operator evaluation takes a vectorized
fast path when every active operand row is a bounded Python int and the
opcode has a vetted int64 equivalent (``sim/vector_ops.py`` carries the
exactness proofs); everything else — floats with repr-sensitive
formatting, overflow-scale values, unvetted ops like DIV/MOD — keeps
the scalar ``evaluate`` functions, row by row, preserving the
bit-identity contract that ``tests/test_sim_event.py`` locks.

Follower stats need no replay at all: every ``ArrayStats`` counter
(cycle categories, firings, configurations, control traffic, tokens
sent, network conflicts) is a function of the schedule alone, so a
verified follower's stats are a deep copy of the leader's.  Only the
scratchpad image, its bank-conflict count (addresses are data), and the
graded outputs are per-follower.

``simulate_batch`` groups runs into cohorts by ``ArchParams`` equality
(mixed-arch sweeps split; geometry is part of params), simulates one
leader per cohort, and replays the rest.  A cohort of one is just the
leader — which is also what ``ArraySimulator(strategy="batch")`` runs
for a single simulation.

Recorded tapes are additionally memoized in a process-wide
:class:`TapeStore` keyed by (program fingerprint, params, max_cycles,
halt_messages, scratchpad_words).  Equal-geometry cohorts from later
calls — arch sweeps sharing a geometry, kernel sweeps, grouped
dispatch — replay a tape recorded once; every member of a memo-served
cohort runs as a verified follower (with exact resim on any
divergence), so sharing never weakens the bit-identity contract.
:class:`BatchStats` (:func:`batch_stats` for the process-wide
instance) counts vector/scalar firings, fallback rows, and tape
traffic, and splits wall time into record/replay/vector-eval phases
for the bench profiler.
"""

from __future__ import annotations

import copy
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arch.params import ArchParams
from repro.errors import SimulationError
from repro.ir.ops import op_info
from repro.isa.data import DataInstruction, DataKind
from repro.isa.operands import DestKind, Operand, OperandKind
from repro.isa.program import ArrayProgram
from repro.sim.array import ArraySimulator, SimulationResult
from repro.sim.datapath import DataFlowPart
from repro.sim.events import DeliverySchedule
from repro.sim.memory import Scratchpad
from repro.sim.vector_ops import OPERAND_LIMIT, VECTOR_OPS


@dataclass
class BatchRun:
    """One member of a batch: its array images and (optional) params.

    ``params=None`` inherits the batch-level default.  Runs whose
    effective params compare equal share a cohort (and therefore a
    leader); runs with different params — latency variants of an arch
    sweep, say — split into separate cohorts automatically.
    """

    arrays: Mapping[str, Sequence] = field(default_factory=dict)
    params: Optional[ArchParams] = None


# ----------------------------------------------------------------------
# Instrumentation: counters and the cross-cohort tape memo
# ----------------------------------------------------------------------
@dataclass
class BatchStats:
    """Counters and phase timings for the batch data plane.

    A process-wide instance (:func:`batch_stats`) always accrues so the
    bench profiler can report deltas; ``simulate_batch(stats=...)``
    additionally accrues into any sink exposing matching attributes
    (``EngineStats`` carries the five counters).
    """

    #: Firings evaluated with one vetted numpy call over the cohort.
    vector_evals: int = 0
    #: Firings evaluated with the scalar ``evaluate`` row loop.
    scalar_evals: int = 0
    #: Member runs re-simulated exactly (divergence or leader failure).
    fallback_rows: int = 0
    #: Cohorts served from the tape store without recording a leader.
    tape_hits: int = 0
    #: Tapes recorded (and stored for later cohorts).
    tape_records: int = 0
    record_seconds: float = 0.0
    replay_seconds: float = 0.0
    vector_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "vector_evals": self.vector_evals,
            "scalar_evals": self.scalar_evals,
            "fallback_rows": self.fallback_rows,
            "tape_hits": self.tape_hits,
            "tape_records": self.tape_records,
            "record_seconds": self.record_seconds,
            "replay_seconds": self.replay_seconds,
            "vector_seconds": self.vector_seconds,
        }


_GLOBAL_STATS = BatchStats()


def batch_stats() -> BatchStats:
    """The always-accruing process-wide :class:`BatchStats`."""
    return _GLOBAL_STATS


def _accrue(sinks, name: str, amount=1) -> None:
    """Add ``amount`` to ``name`` on every sink that has the field."""
    for sink in sinks:
        value = getattr(sink, name, None)
        if value is not None:
            setattr(sink, name, value + amount)


class TapeStore:
    """LRU memo of recorded schedule tapes, shared across cohorts.

    Key: ``(program fingerprint, params, max_cycles, halt_messages,
    scratchpad_words)`` — everything that determines the recorded
    schedule besides the data images.  Value: ``(tape, template,
    words)`` where ``template`` is a data-independent
    :class:`SimulationResult` (cycles/stats/halted only; the
    scratchpad is per-member).  A hit replays *every* cohort member as
    a verified follower; the replay's element-wise branch/latch checks
    (and exact resim on divergence) make sharing safe for any data.
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def get(self, key: tuple) -> Optional[tuple]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, value: tuple) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_TAPE_STORE = TapeStore()


def default_tape_store() -> TapeStore:
    """The process-wide tape memo.

    Worker-pool initializers and distributed-worker engine resets clear
    it so a fresh engine starts from a cold memo.
    """
    return _TAPE_STORE


# ----------------------------------------------------------------------
# Leader instrumentation
# ----------------------------------------------------------------------
class _Tape:
    """The leader's recorded schedule.

    Events (append order == execution order, cycles nondecreasing):

    * ``("issue", pe, cycle, instruction, latch)`` — ``latch`` is
      ``(lo, hi, step)`` when this issue latched new loop bounds;
    * ``("finish", pe, cycle, metas)`` — ``metas`` is a list of
      ``(outcome_id, branch_result)`` per completed firing, in
      completion order;
    * ``("apply", pe, cycle, outcome_id)`` — the array consumed the
      outcome (scratchpad access and/or token routing);
    * ``("rearm", pe)`` — the control part restarted the loop operator.
    """

    __slots__ = ("events", "outcome_ids", "keep")

    def __init__(self) -> None:
        self.events: List[tuple] = []
        #: id(outcome) -> outcome number; ``keep`` pins the objects so
        #: CPython cannot recycle an id mid-run.
        self.outcome_ids: Dict[int, int] = {}
        self.keep: List[object] = []


class _RecordingDataFlowPart(DataFlowPart):
    """A data flow part that journals issues/completions to the tape."""

    def __init__(self, pe: int, *, t_execute: int, tape: _Tape) -> None:
        super().__init__(pe, t_execute=t_execute)
        self._tape = tape

    def issue(self, instruction: DataInstruction, cycle: int) -> None:
        was_latched = self._loop_latched
        super().issue(instruction, cycle)
        latch = None
        if instruction.kind is DataKind.LOOP and not was_latched:
            values = self.inflight[-1].values
            lo = values[0] if values else self._loop_cur
            latch = (lo, self._loop_hi, self._loop_step)
        self._tape.events.append(
            ("issue", self.pe, cycle, instruction, latch)
        )

    def complete(self, cycle: int):
        outcomes = super().complete(cycle)
        if outcomes:
            tape = self._tape
            metas = []
            for outcome in outcomes:
                number = len(tape.keep)
                tape.keep.append(outcome)
                tape.outcome_ids[id(outcome)] = number
                metas.append((number, outcome.branch_result))
            tape.events.append(("finish", self.pe, cycle, metas))
        return outcomes

    def rearm_loop(self) -> None:
        super().rearm_loop()
        self._tape.events.append(("rearm", self.pe))


class _RecordingSimulator(ArraySimulator):
    """An event-strategy simulator whose data plane writes the tape."""

    def __init__(self, params: ArchParams, program: ArrayProgram, *,
                 scratchpad_words: Optional[int], tape: _Tape) -> None:
        super().__init__(params, program,
                         scratchpad_words=scratchpad_words,
                         strategy="event")
        self._tape = tape
        for pe in self.pes.values():
            pe.data = _RecordingDataFlowPart(
                pe.pe, t_execute=params.t_execute, tape=tape
            )
        # The plain data parts received reg_init in super().__init__;
        # re-apply it to their recording replacements.
        for (pe, reg), value in program.reg_init.items():
            self.pes[pe].data.regs[reg] = value

    def _apply_outcome(self, pe: int, outcome, cycle: int) -> None:
        self._tape.events.append(
            ("apply", pe, cycle, self._tape.outcome_ids[id(outcome)])
        )
        super()._apply_outcome(pe, outcome, cycle)


# ----------------------------------------------------------------------
# Follower replay
# ----------------------------------------------------------------------
def _same_scalar(a, b) -> bool:
    """Bit-faithful scalar equality for schedule verification.

    Type-strict (``1`` vs ``1.0`` must diverge: the emitted token types
    differ downstream) and repr-strict for floats (``-0.0`` vs ``0.0``
    compare ``==`` but print differently in a dumped image).  NaN
    compares unequal to itself and correctly falls to the resim path.
    """
    if type(a) is not type(b):
        return False
    if a != b:
        return False
    if isinstance(a, float) and repr(a) != repr(b):
        return False
    return True


@dataclass
class _FollowerFiring:
    complete_cycle: int
    instruction: DataInstruction
    values: Tuple[np.ndarray, ...]


class _ReplayDiverged(Exception):
    """Internal: the replay invariants broke; resim the whole cohort."""


class _CohortReplay:
    """SoA state for the followers of one cohort, driven by the tape."""

    def __init__(self, program: ArrayProgram, params: ArchParams,
                 follower_runs: Sequence[BatchRun], words: int,
                 sinks: Sequence = ()) -> None:
        self.program = program
        self.params = params
        self._sinks = sinks
        #: id(object vector) -> (object vector, int64 view or None).
        #: The strong reference to the vector prevents CPython from
        #: recycling an id onto a new array mid-replay.  A view is
        #: valid for every row of the ``_sel`` it was built against;
        #: ``_sel`` only shrinks, so cached views never go stale.
        self._int_views: Dict[int, Tuple[np.ndarray,
                                         Optional[np.ndarray]]] = {}
        self.count = len(follower_runs)
        self.words = words
        self.banks = params.sram_banks
        # Scratchpad matrix, one row per follower; object dtype keeps
        # exact Python int/float values (the scalar simulators store
        # arbitrary-precision ints).
        self.mem = np.full((self.count, words), 0, dtype=object)
        index = program.array_index()
        for row, run in enumerate(follower_runs):
            for name, values in run.arrays.items():
                entry = index.get(name)
                if entry is None:
                    raise SimulationError(
                        f"array {name!r} not in program table"
                    )
                base, length = entry
                if len(values) > length:
                    raise SimulationError(
                        f"array {name!r}: {len(values)} values exceed "
                        f"declared length {length}"
                    )
                for offset, value in enumerate(values):
                    self.mem[row, base + offset] = (
                        value.item() if isinstance(value, np.generic)
                        else value
                    )
        #: (pe, port) -> FIFO of (F,) token vectors.  Occupancy is
        #: schedule-determined, so one queue serves the whole cohort.
        self.ports: Dict[Tuple[int, int], Deque[np.ndarray]] = {}
        #: (pe, reg) -> (F,) vector; reads fall back to reg_init/zero.
        self.regs: Dict[Tuple[int, int], np.ndarray] = {}
        #: pe -> mirrored loop-operator state (shared scalars: bounds
        #: are verified equal to the leader's for every active row).
        self.loops: Dict[int, dict] = {}
        self.inflight: Dict[int, List[_FollowerFiring]] = {}
        self.sched = DeliverySchedule()
        #: outcome number -> pending apply record.
        self.records: Dict[int, tuple] = {}
        self.active = np.ones(self.count, dtype=bool)
        self._sel = np.flatnonzero(self.active)
        self.diverged: List[int] = []
        # Scratchpad accounting (reads/writes are schedule-determined;
        # bank conflicts depend on per-follower addresses).
        self.reads = 0
        self.writes = 0
        self.conflicts = np.zeros(self.count, dtype=np.int64)
        self._bank_counts = np.zeros((self.count, self.banks),
                                     dtype=np.int64)
        self._conflict_cycle = -1

    # -- divergence ----------------------------------------------------
    def _diverge_rows(self, rows) -> None:
        changed = False
        for row in rows:
            if self.active[row]:
                self.active[row] = False
                self.diverged.append(int(row))
                changed = True
        if changed:
            self._sel = np.flatnonzero(self.active)

    # -- operand access ------------------------------------------------
    def _vector(self, value) -> np.ndarray:
        out = np.empty(self.count, dtype=object)
        out[:] = value
        if type(value) is int and -OPERAND_LIMIT <= value <= OPERAND_LIMIT:
            # Broadcasts are eligibility-checked once, not per row.
            self._int_views[id(out)] = (
                out, np.full(self.count, value, dtype=np.int64)
            )
        return out

    def _int_view(self, vec: np.ndarray) -> Optional[np.ndarray]:
        """The int64 image of ``vec``, or None if it is vector-ineligible.

        Eligible means every *active* row holds a Python int with
        ``abs(v) <= OPERAND_LIMIT`` (the bound `sim/vector_ops.py`
        proves overflow-safe on int64).  ``type(v) is int`` is exact on
        purpose: bools and numpy scalars would change result types
        under the type-strict ``_same_scalar`` contract, floats would
        silently truncate.  The verdict is cached by vector identity —
        produced vectors (ufunc results, broadcasts) pre-register
        their views so only memory-derived values pay the row scan.
        """
        cached = self._int_views.get(id(vec))
        if cached is not None and cached[0] is vec:
            return cached[1]
        view: Optional[np.ndarray] = np.zeros(self.count, dtype=np.int64)
        for row in self._sel:
            v = vec[row]
            if type(v) is int and -OPERAND_LIMIT <= v <= OPERAND_LIMIT:
                view[row] = v
            else:
                view = None
                break
        self._int_views[id(vec)] = (vec, view)
        return view

    def _read_operand(self, pe: int, operand: Operand) -> np.ndarray:
        if operand.kind is OperandKind.PORT:
            fifo = self.ports.get((pe, operand.value))
            if not fifo:
                raise _ReplayDiverged(
                    f"PE {pe}: port {operand.value} empty during replay"
                )
            return fifo.popleft()
        if operand.kind is OperandKind.REG:
            key = (pe, operand.value)
            vec = self.regs.get(key)
            if vec is None:
                vec = self._vector(
                    self.program.reg_init.get(key, 0)
                )
                self.regs[key] = vec
            return vec
        return self._vector(operand.value)

    # -- tape events ---------------------------------------------------
    def _drain_deliveries(self, cycle: int) -> None:
        sched = self.sched
        while True:
            due = sched.next_cycle()
            if due is None or due > cycle:
                return
            for dst_pe, port, vec in sched.pop_due(due):
                self.ports.setdefault((dst_pe, port),
                                      deque()).append(vec)

    def on_rearm(self, pe: int) -> None:
        state = self.loops.get(pe)
        if state is not None:
            state["latched"] = False
            state["exhausted"] = False

    def on_issue(self, pe: int, cycle: int,
                 instruction: DataInstruction, latch) -> None:
        if instruction.kind is DataKind.LOOP:
            state = self.loops.setdefault(
                pe, {"latched": False, "cur": 0, "hi": 0, "step": 1,
                     "exhausted": False},
            )
            if latch is not None:
                lo_vec, hi_vec, step_vec = (
                    self._read_operand(pe, operand)
                    for operand in instruction.loop_bounds
                )
                lo, hi, step = latch
                bad = [
                    row for row in self._sel
                    if not (_same_scalar(lo_vec[row], lo)
                            and _same_scalar(hi_vec[row], hi)
                            and _same_scalar(step_vec[row], step))
                ]
                self._diverge_rows(bad)
                state.update(latched=True, cur=lo, hi=hi, step=step,
                             exhausted=False)
            if state["cur"] >= state["hi"]:
                state["exhausted"] = True
                values: Tuple[np.ndarray, ...] = ()
            else:
                emitted = state["cur"]
                state["cur"] = emitted + state["step"]
                if state["cur"] >= state["hi"]:
                    state["exhausted"] = True
                values = (self._vector(emitted),)
        else:
            values = tuple(
                self._read_operand(pe, operand)
                for operand in instruction.srcs
            )
        self.inflight.setdefault(pe, []).append(_FollowerFiring(
            cycle + self.params.t_execute, instruction, values
        ))

    def on_finish(self, pe: int, cycle: int, metas) -> None:
        pending = self.inflight.get(pe, [])
        done = [f for f in pending if f.complete_cycle <= cycle]
        if len(done) != len(metas):
            raise _ReplayDiverged(
                f"PE {pe}: {len(done)} completions vs leader's "
                f"{len(metas)}"
            )
        self.inflight[pe] = [
            f for f in pending if f.complete_cycle > cycle
        ]
        for firing, (number, leader_branch) in zip(done, metas):
            self.records[number] = self._finish(
                pe, firing, leader_branch
            )

    def _finish(self, pe: int, firing: _FollowerFiring,
                leader_branch) -> tuple:
        instruction = firing.instruction
        kind = instruction.kind
        if kind is DataKind.COMPUTE:
            assert instruction.opcode is not None
            out = self._evaluate(instruction.opcode, firing.values,
                                 leader_branch)
            for dest in instruction.dests:
                if dest.kind is DestKind.REG:
                    self.regs[(pe, dest.port)] = out
            return ("value", instruction.dests, out)
        if kind is DataKind.LOAD:
            return ("load", instruction.dests, instruction.array_id,
                    self._indices(firing.values[0]))
        if kind is DataKind.STORE:
            return ("store", instruction.array_id,
                    self._indices(firing.values[0]), firing.values[1])
        if kind is DataKind.LOOP:
            if not firing.values:  # zero-trip loop: exit only
                return ("noop",)
            vec = firing.values[0]
            for dest in instruction.dests:
                if dest.kind is DestKind.REG:
                    self.regs[(pe, dest.port)] = vec
            return ("value", instruction.dests, vec)
        raise _ReplayDiverged(f"unexpected firing of {kind}")

    def _evaluate(self, opcode, values: Tuple[np.ndarray, ...],
                  leader_branch) -> np.ndarray:
        """Evaluate one firing over the cohort column.

        Vector fast path: every operand has an int64 view and the
        opcode has a vetted numpy equivalent — one ufunc call replaces
        the row loop, and the branch check vectorizes too.  Results
        convert back through ``.tolist()`` so rows hold exact Python
        ints (never numpy scalars, which ``_same_scalar`` would
        reject), and re-register their int64 image when it stays in
        bounds so chained int firings never rescan rows.
        """
        vfn = VECTOR_OPS.get(opcode)
        if vfn is not None:
            views = [self._int_view(vec) for vec in values]
            if all(view is not None for view in views):
                start = time.perf_counter()
                res = vfn(*views)
                out = np.empty(self.count, dtype=object)
                out[:] = res.tolist()
                sel = self._sel
                if sel.size and (np.abs(res[sel]) <= OPERAND_LIMIT).all():
                    self._int_views[id(out)] = (out, res)
                if leader_branch is not None:
                    bad = sel[(res[sel] != 0) != leader_branch]
                    if bad.size:
                        self._diverge_rows(bad)
                _accrue(self._sinks, "vector_seconds",
                        time.perf_counter() - start)
                _accrue(self._sinks, "vector_evals")
                return out
        fn = op_info(opcode).evaluate
        assert fn is not None
        out = np.empty(self.count, dtype=object)
        # Row-by-row with the scalar evaluate: exactness for floats,
        # huge ints, and unvetted ops (see sim/vector_ops.py).
        for row in self._sel:
            out[row] = fn(*(vec[row] for vec in values))
        if leader_branch is not None:
            bad = [row for row in self._sel
                   if bool(out[row]) != leader_branch]
            self._diverge_rows(bad)
        _accrue(self._sinks, "scalar_evals")
        return out

    def _indices(self, vec: np.ndarray) -> np.ndarray:
        view = self._int_view(vec)
        if view is not None:
            # Rows outside ``_sel`` hold zeros in the cached image,
            # exactly like the scalar loop below leaves them; inactive
            # rows are masked out of every downstream access anyway.
            return view
        out = np.zeros(self.count, dtype=np.int64)
        for row in self._sel:
            out[row] = int(vec[row])
        return out

    def on_apply(self, pe: int, cycle: int, number: int) -> None:
        record = self.records.pop(number)
        tag = record[0]
        if tag == "noop":
            return
        if tag == "load":
            _, dests, array_id, indices = record
            _name, base, length = self.program.array_table[array_id]
            ok = self._bounds_ok(indices, length)
            addrs = base + indices
            self._track(cycle, addrs, ok)
            self.reads += 1
            out = np.empty(self.count, dtype=object)
            sel = np.flatnonzero(ok)
            out[sel] = self.mem[sel, addrs[sel]]
            self._route(pe, dests, out, cycle)
            return
        if tag == "store":
            _, array_id, indices, values = record
            _name, base, length = self.program.array_table[array_id]
            ok = self._bounds_ok(indices, length)
            addrs = base + indices
            self._track(cycle, addrs, ok)
            self.writes += 1
            sel = np.flatnonzero(ok)
            self.mem[sel, addrs[sel]] = values[sel]
            return
        _, dests, values = record
        self._route(pe, dests, values, cycle)

    def _bounds_ok(self, indices: np.ndarray, length: int) -> np.ndarray:
        ok = self.active & (indices >= 0) & (indices < length)
        bad = self.active & ~ok
        if bad.any():
            # The leader survived this access; a follower that does not
            # has genuinely divergent data — resim it exactly (and let
            # the per-run SimulationError surface there).
            self._diverge_rows(np.flatnonzero(bad))
        return ok

    def _track(self, cycle: int, addrs: np.ndarray,
               ok: np.ndarray) -> None:
        if cycle != self._conflict_cycle:
            self._conflict_cycle = cycle
            self._bank_counts[:] = 0
        sel = np.flatnonzero(ok)
        banks = addrs[sel] % self.banks
        self._bank_counts[sel, banks] += 1
        self.conflicts[sel] += self._bank_counts[sel, banks] > 1

    def _route(self, src_pe: int, dests, values: np.ndarray,
               cycle: int) -> None:
        for dest in dests:
            if dest.kind is not DestKind.PE_PORT:
                continue
            if dest.pe == src_pe:
                self.ports.setdefault((src_pe, dest.port),
                                      deque()).append(values)
            else:
                self.sched.push(
                    cycle + self.params.data_net_latency,
                    (dest.pe, dest.port, values),
                )

    # -- driver --------------------------------------------------------
    def replay(self, tape: _Tape) -> None:
        for event in tape.events:
            kind = event[0]
            if kind == "rearm":
                self.on_rearm(event[1])
                continue
            cycle = event[2]
            self._drain_deliveries(cycle)
            if kind == "finish":
                self.on_finish(event[1], cycle, event[3])
            elif kind == "apply":
                self.on_apply(event[1], cycle, event[3])
            else:
                self.on_issue(event[1], cycle, event[3], event[4])
            if not self._sel.size:
                return  # every follower diverged; resim covers them

    def result_for(self, row: int,
                   leader: SimulationResult) -> SimulationResult:
        scratchpad = Scratchpad(self.words, banks=self.banks)
        scratchpad.data = list(self.mem[row])
        scratchpad.reads = self.reads
        scratchpad.writes = self.writes
        scratchpad.bank_conflicts = int(self.conflicts[row])
        return SimulationResult(
            cycles=leader.cycles,
            stats=copy.deepcopy(leader.stats),
            scratchpad=scratchpad,
            halted=leader.halted,
        )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def _simulate_single(program: ArrayProgram, params: ArchParams,
                     run: BatchRun, *, scratchpad_words: Optional[int],
                     max_cycles: int,
                     halt_messages: int) -> SimulationResult:
    sim = ArraySimulator(params, program,
                         scratchpad_words=scratchpad_words,
                         strategy="event")
    for name, values in run.arrays.items():
        sim.load_array(name, values)
    return sim.run(max_cycles=max_cycles, halt_messages=halt_messages)


def _replay_cohort(replay: _CohortReplay, tape: _Tape,
                   sinks: Sequence) -> set:
    """Drive a follower replay, timing it; return the diverged offsets."""
    start = time.perf_counter()
    try:
        replay.replay(tape)
    except _ReplayDiverged:
        replay.active[:] = False
        replay.diverged = list(range(replay.count))
    _accrue(sinks, "replay_seconds", time.perf_counter() - start)
    return set(replay.diverged)


def simulate_batch(params: ArchParams, program: ArrayProgram,
                   runs: Sequence[BatchRun], *,
                   scratchpad_words: Optional[int] = None,
                   max_cycles: int = 200_000,
                   halt_messages: int = 1,
                   stats=None,
                   tape_store: Optional[TapeStore] = None
                   ) -> List[SimulationResult]:
    """Simulate ``runs`` of one program, batching wherever legal.

    Results are positionally aligned with ``runs`` and bit-identical —
    cycles, ``ArrayStats``, scratchpad image, reads/writes/conflicts —
    to simulating each run alone with ``strategy="naive"`` (the
    differential matrix in ``tests/test_sim_event.py`` enforces this).
    Per-run ``SimulationError``s (out-of-bounds accesses, runaway
    loops) propagate exactly as a solo simulation would raise them.

    ``stats`` is an optional extra counter sink (any object with a
    subset of :class:`BatchStats`' fields, e.g. ``EngineStats``); the
    process-wide :func:`batch_stats` always accrues.  ``tape_store``
    overrides the process-wide memo (pass a fresh :class:`TapeStore`
    to isolate, e.g. in tests).
    """
    program.validate()
    sinks: Tuple = (_GLOBAL_STATS,) if stats is None else (
        _GLOBAL_STATS, stats)
    store = _TAPE_STORE if tape_store is None else tape_store
    fingerprint = program.fingerprint()
    results: List[Optional[SimulationResult]] = [None] * len(runs)
    cohorts: Dict[ArchParams, List[int]] = {}
    for position, run in enumerate(runs):
        cohorts.setdefault(run.params or params, []).append(position)

    for cohort_params, members in cohorts.items():
        key = (fingerprint, cohort_params, max_cycles, halt_messages,
               scratchpad_words)
        cached = store.get(key)
        if cached is not None:
            # Tape-store hit: no leader to record — every member is a
            # follower, and the replay's verification (plus exact
            # resim of diverged rows) covers arbitrary data.
            tape, template, words = cached
            _accrue(sinks, "tape_hits")
            replay = _CohortReplay(
                program, cohort_params, [runs[p] for p in members],
                words, sinks=sinks,
            )
            diverged = _replay_cohort(replay, tape, sinks)
            _accrue(sinks, "fallback_rows", len(diverged))
            for offset, position in enumerate(members):
                if offset in diverged:
                    results[position] = _simulate_single(
                        program, cohort_params, runs[position],
                        scratchpad_words=scratchpad_words,
                        max_cycles=max_cycles,
                        halt_messages=halt_messages,
                    )
                else:
                    results[position] = replay.result_for(
                        offset, template
                    )
            continue

        leader_pos, follower_pos = members[0], members[1:]
        tape = _Tape()
        leader = _RecordingSimulator(
            cohort_params, program,
            scratchpad_words=scratchpad_words, tape=tape,
        )
        words = leader.scratchpad.words
        replay = (
            _CohortReplay(program, cohort_params,
                          [runs[p] for p in follower_pos], words,
                          sinks=sinks)
            if follower_pos else None
        )
        start = time.perf_counter()
        try:
            for name, values in runs[leader_pos].arrays.items():
                leader.load_array(name, values)
            leader_result = leader.run(
                max_cycles=max_cycles, halt_messages=halt_messages
            )
        except SimulationError:
            _accrue(sinks, "record_seconds",
                    time.perf_counter() - start)
            # The leader itself fails: nothing to replay.  Re-run every
            # member individually so errors surface per run, in order.
            # (No tape is stored — a failing schedule is not reusable.)
            _accrue(sinks, "fallback_rows", len(members))
            for position in members:
                results[position] = _simulate_single(
                    program, cohort_params, runs[position],
                    scratchpad_words=scratchpad_words,
                    max_cycles=max_cycles, halt_messages=halt_messages,
                )
            continue
        _accrue(sinks, "record_seconds", time.perf_counter() - start)
        # Store a data-independent template (the scratchpad image is
        # per-member; result_for only reads cycles/stats/halted).
        store.put(key, (
            tape,
            SimulationResult(
                cycles=leader_result.cycles,
                stats=copy.deepcopy(leader_result.stats),
                scratchpad=None,
                halted=leader_result.halted,
            ),
            words,
        ))
        _accrue(sinks, "tape_records")
        results[leader_pos] = leader_result
        if replay is None:
            continue
        diverged = _replay_cohort(replay, tape, sinks)
        _accrue(sinks, "fallback_rows", len(diverged))
        for offset, position in enumerate(follower_pos):
            if offset in diverged:
                results[position] = _simulate_single(
                    program, cohort_params, runs[position],
                    scratchpad_words=scratchpad_words,
                    max_cycles=max_cycles, halt_messages=halt_messages,
                )
            else:
                results[position] = replay.result_for(
                    offset, leader_result
                )
    return results  # type: ignore[return-value]
