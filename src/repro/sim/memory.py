"""Banked data scratchpad.

Arrays live at fixed base addresses (declared in the
:class:`~repro.isa.program.ArrayProgram` array table); addresses interleave
across banks word-by-word.  Bank conflicts are counted but — matching the
paper's optimistic memory model (Section 6.1) — do not stall accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


class Scratchpad:
    """A word-addressed scratchpad of ``words`` 32-bit entries."""

    def __init__(self, words: int, banks: int = 4) -> None:
        if words <= 0 or banks <= 0:
            raise SimulationError("scratchpad size/banks must be positive")
        self.words = words
        self.banks = banks
        self.data: List[float] = [0] * words
        self.reads = 0
        self.writes = 0
        self.bank_conflicts = 0
        self._cycle_banks: Dict[int, int] = {}
        self._cycle: int = -1

    # ------------------------------------------------------------------
    def _bank_of(self, addr: int) -> int:
        return addr % self.banks

    def _track(self, cycle: int, addr: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._cycle_banks = {}
        bank = self._bank_of(addr)
        self._cycle_banks[bank] = self._cycle_banks.get(bank, 0) + 1
        if self._cycle_banks[bank] > 1:
            self.bank_conflicts += 1

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.words:
            raise SimulationError(
                f"scratchpad address {addr} out of range (0..{self.words - 1})"
            )

    # ------------------------------------------------------------------
    def read(self, addr: int, cycle: int = 0) -> float:
        self._check(addr)
        self._track(cycle, addr)
        self.reads += 1
        return self.data[addr]

    def write(self, addr: int, value: float, cycle: int = 0) -> None:
        self._check(addr)
        self._track(cycle, addr)
        self.writes += 1
        self.data[addr] = value

    # ------------------------------------------------------------------
    def load_array(self, base: int, values: Sequence[float]) -> None:
        """DMA an array image in at ``base`` (setup, not timed)."""
        if base < 0 or base + len(values) > self.words:
            raise SimulationError(
                f"array of {len(values)} words does not fit at base {base}"
            )
        for offset, value in enumerate(values):
            self.data[base + offset] = (
                value.item() if isinstance(value, np.generic) else value
            )

    def dump_array(self, base: int, length: int) -> np.ndarray:
        """Read an array image back out (verification, not timed)."""
        if base < 0 or base + length > self.words:
            raise SimulationError(
                f"array of {length} words does not fit at base {base}"
            )
        return np.array(self.data[base:base + length])
