"""Table 6: network area across architectures (28 nm, 32-bit, 4x4).

Competitor numbers are the paper's published constants; the Marionette row
is computed from this repository's PE and network area models.

Paper result: Marionette's total network area is 0.0118 mm^2 — 11.5% of
the computing fabric, versus 47-76% for the other architectures.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.perf.area import table6_rows
from repro.experiments.common import ExperimentResult


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    """Analytic experiment: no workload simulations required."""
    return []


def run(params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table 6",
        title="Network area vs computing fabric (28 nm, 32-bit, 4x4)",
        columns=["architecture", "pe_area", "network_area",
                 "computing_fabric", "network_ratio_pct"],
        paper_claim="Marionette network ratio 11.5% vs 47.2-75.8% for "
                    "Softbrain/REVEL/DySER/Plasticine/SPU",
    )
    for row in table6_rows(params):
        result.rows.append({
            "architecture": row["architecture"],
            "pe_area": round(float(row["pe_area"]), 4),
            "network_area": round(float(row["network_area"]), 4),
            "computing_fabric": round(float(row["computing_fabric"]), 4),
            "network_ratio_pct": 100.0 * float(row["network_ratio"]),
        })
        if row["architecture"] == "Marionette":
            result.summary["marionette network ratio pct"] = (
                100.0 * float(row["network_ratio"])
            )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
