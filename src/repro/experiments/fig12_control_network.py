"""Figure 12: speedup from the peer-to-peer control network.

Paper result: the CS-Benes control network contributes geomean 1.14x, up
to 1.36x on CRC; CRC/ADPCM/Merge Sort benefit most because they are only
partially pipelined, leaving control transfer latency exposed.
"""

from __future__ import annotations

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.baselines import MarionetteModel
from repro.perf.speedup import geomean
from repro.experiments.common import ExperimentResult, SuiteContext


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS) -> ExperimentResult:
    context = SuiteContext.get(scale, seed, params)
    base = MarionetteModel(
        params, control_network=False, agile=False, name="Marionette PE"
    )
    with_network = MarionetteModel(
        params, control_network=True, agile=False,
        name="Marionette PE + Control Network",
    )

    result = ExperimentResult(
        experiment="Figure 12",
        title="Speedup contributed by the dedicated control network",
        columns=["kernel", "marionette_pe", "with_control_network",
                 "improvement_pct"],
        paper_claim="geomean 1.14x, up to 1.36x (CRC)",
    )
    gains = []
    for run_ in context.intensive():
        base_cycles = base.simulate(run_.kernel).cycles
        net_cycles = with_network.simulate(run_.kernel).cycles
        gain = base_cycles / net_cycles
        gains.append(gain)
        result.rows.append({
            "kernel": run_.workload.short,
            "marionette_pe": 1.0,
            "with_control_network": gain,
            "improvement_pct": 100.0 * (gain - 1.0),
        })
    result.summary = {
        "geomean control-network speedup": geomean(gains),
        "max control-network speedup": max(gains),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
