"""Figure 12: speedup from the peer-to-peer control network.

Paper result: the CS-Benes control network contributes geomean 1.14x, up
to 1.36x on CRC; CRC/ADPCM/Merge Sort benefit most because they are only
partially pipelined, leaving control transfer latency exposed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.perf.speedup import geomean
from repro.workloads import INTENSIVE_WORKLOADS
from repro.experiments.common import (
    MARIONETTE_CN,
    MARIONETTE_PE,
    ExperimentResult,
    execute_specs,
)


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    return [
        RunSpec(w.short.lower(), scale, seed, model, params)
        for w in INTENSIVE_WORKLOADS
        for model in (MARIONETTE_PE, MARIONETTE_CN)
    ]


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    table = execute_specs(specs(scale, seed, params), engine)

    result = ExperimentResult(
        experiment="Figure 12",
        title="Speedup contributed by the dedicated control network",
        columns=["kernel", "marionette_pe", "with_control_network",
                 "improvement_pct"],
        paper_claim="geomean 1.14x, up to 1.36x (CRC)",
    )
    gains = []
    for workload in INTENSIVE_WORKLOADS:
        short = workload.short.lower()
        base_cycles = table.cycles(
            RunSpec(short, scale, seed, MARIONETTE_PE, params)
        )
        net_cycles = table.cycles(
            RunSpec(short, scale, seed, MARIONETTE_CN, params)
        )
        gain = base_cycles / net_cycles
        gains.append(gain)
        result.rows.append({
            "kernel": workload.short,
            "marionette_pe": 1.0,
            "with_control_network": gain,
            "improvement_pct": 100.0 * (gain - 1.0),
        })
    result.summary = {
        "geomean control-network speedup": geomean(gains),
        "max control-network speedup": max(gains),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
