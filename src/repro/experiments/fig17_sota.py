"""Figure 17: Marionette vs state-of-the-art spatial architectures.

All 13 kernels; cycles normalised to Softbrain (higher = faster).

Paper result: on intensive control flow kernels Marionette outperforms
Softbrain 2.88x, TIA 3.38x, REVEL 1.55x, RipTide 2.66x geomean; on the
non-intensive kernels (CO/SI/GP) all architectures are comparable except
TIA (longer pipeline II).
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.baselines import (
    MarionetteModel,
    RevelModel,
    RipTideModel,
    SoftbrainModel,
    TIAModel,
)
from repro.perf.speedup import geomean
from repro.experiments.common import ExperimentResult, SuiteContext


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS) -> ExperimentResult:
    context = SuiteContext.get(scale, seed, params)
    models = {
        "softbrain": SoftbrainModel(params),
        "tia": TIAModel(params),
        "revel": RevelModel(params),
        "riptide": RipTideModel(params),
        "marionette": MarionetteModel(params),
    }
    result = ExperimentResult(
        experiment="Figure 17",
        title="vs state-of-the-art architectures "
              "(normalized speedup over Softbrain)",
        columns=["kernel", "group", "softbrain", "tia", "revel", "riptide",
                 "marionette"],
        paper_claim="geomean 2.88x / 3.38x / 1.55x / 2.66x over "
                    "Softbrain / TIA / REVEL / RipTide on intensive kernels",
    )
    cycles_by_kernel: Dict[str, Dict[str, int]] = {}
    for run_ in context.all():
        cycles = {
            name: model.simulate(run_.kernel).cycles
            for name, model in models.items()
        }
        cycles_by_kernel[run_.workload.short] = cycles
        base = cycles["softbrain"]
        result.rows.append({
            "kernel": run_.workload.short,
            "group": run_.workload.group,
            **{name: base / c for name, c in cycles.items()},
        })

    intensive = [r.workload.short for r in context.intensive()]
    for rival in ("softbrain", "tia", "revel", "riptide"):
        result.summary[f"geomean speedup vs {rival}"] = geomean([
            cycles_by_kernel[k][rival] / cycles_by_kernel[k]["marionette"]
            for k in intensive
        ])
    non_intensive = [r.workload.short for r in context.non_intensive()]
    result.summary["geomean vs best rival (non-intensive)"] = geomean([
        min(
            cycles_by_kernel[k][r]
            for r in ("softbrain", "revel", "riptide")
        ) / cycles_by_kernel[k]["marionette"]
        for k in non_intensive
    ])
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
