"""Figure 17: Marionette vs state-of-the-art spatial architectures.

All 13 kernels; cycles normalised to Softbrain (higher = faster).

Paper result: on intensive control flow kernels Marionette outperforms
Softbrain 2.88x, TIA 3.38x, REVEL 1.55x, RipTide 2.66x geomean; on the
non-intensive kernels (CO/SI/GP) all architectures are comparable except
TIA (longer pipeline II).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.perf.speedup import geomean
from repro.workloads import (
    ALL_WORKLOADS,
    INTENSIVE_WORKLOADS,
    NON_INTENSIVE_WORKLOADS,
)
from repro.experiments.common import (
    MARIONETTE,
    REVEL,
    RIPTIDE,
    SOFTBRAIN,
    TIA,
    ExperimentResult,
    execute_specs,
)

_MODELS = {
    "softbrain": SOFTBRAIN,
    "tia": TIA,
    "revel": REVEL,
    "riptide": RIPTIDE,
    "marionette": MARIONETTE,
}


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    return [
        RunSpec(w.short.lower(), scale, seed, model, params)
        for w in ALL_WORKLOADS
        for model in _MODELS.values()
    ]


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    table = execute_specs(specs(scale, seed, params), engine)
    result = ExperimentResult(
        experiment="Figure 17",
        title="vs state-of-the-art architectures "
              "(normalized speedup over Softbrain)",
        columns=["kernel", "group", "softbrain", "tia", "revel", "riptide",
                 "marionette"],
        paper_claim="geomean 2.88x / 3.38x / 1.55x / 2.66x over "
                    "Softbrain / TIA / REVEL / RipTide on intensive kernels",
    )
    cycles_by_kernel: Dict[str, Dict[str, int]] = {}
    for workload in ALL_WORKLOADS:
        short = workload.short.lower()
        cycles = {
            name: table.cycles(RunSpec(short, scale, seed, model, params))
            for name, model in _MODELS.items()
        }
        cycles_by_kernel[workload.short] = cycles
        base = cycles["softbrain"]
        result.rows.append({
            "kernel": workload.short,
            "group": workload.group,
            **{name: base / c for name, c in cycles.items()},
        })

    intensive = [w.short for w in INTENSIVE_WORKLOADS]
    for rival in ("softbrain", "tia", "revel", "riptide"):
        result.summary[f"geomean speedup vs {rival}"] = geomean([
            cycles_by_kernel[k][rival] / cycles_by_kernel[k]["marionette"]
            for k in intensive
        ])
    non_intensive = [w.short for w in NON_INTENSIVE_WORKLOADS]
    result.summary["geomean vs best rival (non-intensive)"] = geomean([
        min(
            cycles_by_kernel[k][r]
            for r in ("softbrain", "revel", "riptide")
        ) / cycles_by_kernel[k]["marionette"]
        for k in non_intensive
    ])
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
