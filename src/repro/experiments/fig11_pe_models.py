"""Figure 11: Marionette PE vs von Neumann PE vs dataflow PE.

Paper setup (Section 7.1): Proactive PE Configuration on, but *no*
dedicated control network and *no* Agile PE Assignment; data network
unified across the three models.  Secondary axis: the share of dynamically
executed operators under a branch.

Paper result: Marionette PE outperforms the von Neumann PE by geomean
1.18x (up to 1.45x on Merge Sort) and the dataflow PE by 1.33x (up to
1.76x on GEMM).
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.ir import analysis
from repro.perf.speedup import geomean
from repro.workloads import INTENSIVE_WORKLOADS
from repro.experiments.common import (
    DATAFLOW,
    MARIONETTE_PE,
    VON_NEUMANN,
    ExperimentResult,
    SuiteContext,
    execute_specs,
)

_MODELS = (VON_NEUMANN, DATAFLOW, MARIONETTE_PE)


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    return [
        RunSpec(w.short.lower(), scale, seed, model, params)
        for w in INTENSIVE_WORKLOADS
        for model in _MODELS
    ]


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    table = execute_specs(specs(scale, seed, params), engine)
    context = SuiteContext(scale, seed, params, engine)

    result = ExperimentResult(
        experiment="Figure 11",
        title="PE execution model comparison (normalized to von Neumann)",
        columns=["kernel", "von_neumann", "dataflow", "marionette_pe",
                 "ops_under_branch_pct"],
        paper_claim="geomean 1.18x over vN PE, 1.33x over dataflow PE",
    )
    speedups_vn = []
    speedups_df = []
    for run_ in context.intensive():
        short = run_.workload.short.lower()
        cycles = {
            "vn": table.cycles(RunSpec(short, scale, seed,
                                       VON_NEUMANN, params)),
            "df": table.cycles(RunSpec(short, scale, seed,
                                       DATAFLOW, params)),
            "m": table.cycles(RunSpec(short, scale, seed,
                                      MARIONETTE_PE, params)),
        }
        under_branch = 100.0 * analysis.ops_under_branch_fraction(
            run_.kernel.cdfg, run_.kernel.trace
        )
        result.rows.append({
            "kernel": run_.workload.short,
            "von_neumann": 1.0,
            "dataflow": cycles["vn"] / cycles["df"],
            "marionette_pe": cycles["vn"] / cycles["m"],
            "ops_under_branch_pct": under_branch,
        })
        speedups_vn.append(cycles["vn"] / cycles["m"])
        speedups_df.append(cycles["df"] / cycles["m"])

    result.summary = {
        "geomean speedup vs von Neumann PE": geomean(speedups_vn),
        "geomean speedup vs dataflow PE": geomean(speedups_df),
        "max speedup vs von Neumann PE": max(speedups_vn),
        "max speedup vs dataflow PE": max(speedups_df),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
