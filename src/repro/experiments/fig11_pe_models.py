"""Figure 11: Marionette PE vs von Neumann PE vs dataflow PE.

Paper setup (Section 7.1): Proactive PE Configuration on, but *no*
dedicated control network and *no* Agile PE Assignment; data network
unified across the three models.  Secondary axis: the share of dynamically
executed operators under a branch.

Paper result: Marionette PE outperforms the von Neumann PE by geomean
1.18x (up to 1.45x on Merge Sort) and the dataflow PE by 1.33x (up to
1.76x on GEMM).
"""

from __future__ import annotations

from typing import Dict

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.baselines import DataflowModel, MarionetteModel, VonNeumannModel
from repro.ir import analysis
from repro.perf.speedup import geomean
from repro.experiments.common import ExperimentResult, SuiteContext


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS) -> ExperimentResult:
    context = SuiteContext.get(scale, seed, params)
    von_neumann = VonNeumannModel(params)
    dataflow = DataflowModel(params)
    marionette = MarionetteModel(
        params, control_network=False, agile=False, name="Marionette PE"
    )

    result = ExperimentResult(
        experiment="Figure 11",
        title="PE execution model comparison (normalized to von Neumann)",
        columns=["kernel", "von_neumann", "dataflow", "marionette_pe",
                 "ops_under_branch_pct"],
        paper_claim="geomean 1.18x over vN PE, 1.33x over dataflow PE",
    )
    speedups_vn = []
    speedups_df = []
    for run_ in context.intensive():
        cycles = {
            "vn": von_neumann.simulate(run_.kernel).cycles,
            "df": dataflow.simulate(run_.kernel).cycles,
            "m": marionette.simulate(run_.kernel).cycles,
        }
        under_branch = 100.0 * analysis.ops_under_branch_fraction(
            run_.instance.cdfg, run_.kernel.trace
        )
        result.rows.append({
            "kernel": run_.workload.short,
            "von_neumann": 1.0,
            "dataflow": cycles["vn"] / cycles["df"],
            "marionette_pe": cycles["vn"] / cycles["m"],
            "ops_under_branch_pct": under_branch,
        })
        speedups_vn.append(cycles["vn"] / cycles["m"])
        speedups_df.append(cycles["df"] / cycles["m"])

    result.summary = {
        "geomean speedup vs von Neumann PE": geomean(speedups_vn),
        "geomean speedup vs dataflow PE": geomean(speedups_df),
        "max speedup vs von Neumann PE": max(speedups_vn),
        "max speedup vs dataflow PE": max(speedups_df),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
