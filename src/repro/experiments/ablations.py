"""Ablation studies beyond the paper's headline figures.

Three sweeps over the design choices DESIGN.md calls out:

* **array size** — does the control flow plane's advantage survive scaling
  the fabric (4x4 -> 8x8)?  The control network grows O(n log n) in
  switches while a crossbar grows O(n^2), and the CCU detour of
  conventional arrays gets *longer* with array diameter;
* **data network latency** — sensitivity of each feature to the mesh
  latency assumption (the paper's ~6-cycle annotation);
* **control FIFO depth** — how deep the per-PE control queues must be
  before the Scheduler stops rejecting standing configurations (measured
  on the micro-architectural simulator).

The parameter sweeps enumerate :class:`RunSpec` batches: the engine shares
one functional trace per workload across every parameter point, so a sweep
costs sweeps-many model evaluations, not sweeps-many workload simulations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.params import DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.perf.speedup import geomean
from repro.workloads import INTENSIVE_WORKLOADS
from repro.experiments.common import (
    MARIONETTE,
    MARIONETTE_CN,
    MARIONETTE_PE,
    VON_NEUMANN,
    ExperimentResult,
    execute_specs,
)

_ARRAY_SIZES: Sequence[int] = (2, 4, 8)
_MESH_LATENCIES: Sequence[int] = (2, 4, 6, 10)


def _array_size_specs(scale: str, seed: int,
                      sizes: Sequence[int]) -> List[RunSpec]:
    return [
        RunSpec(w.short.lower(), scale, seed, model,
                DEFAULT_PARAMS.scaled(size, size))
        for size in sizes
        for w in INTENSIVE_WORKLOADS
        for model in (VON_NEUMANN, MARIONETTE)
    ]


def array_size_sweep(scale: str = "small", seed: int = 0,
                     sizes: Sequence[int] = _ARRAY_SIZES,
                     engine: Optional[Engine] = None) -> ExperimentResult:
    """Marionette-vs-von-Neumann geomean across array sizes."""
    table = execute_specs(_array_size_specs(scale, seed, sizes), engine)
    result = ExperimentResult(
        experiment="Ablation A1",
        title="Marionette advantage vs array size (intensive geomean)",
        columns=["array", "n_pes", "von_neumann_cycles_gm",
                 "marionette_cycles_gm", "speedup"],
        notes=["the CCU detour grows with array diameter while the "
               "control network stays single-cycle"],
    )
    for size in sizes:
        params = DEFAULT_PARAMS.scaled(size, size)
        vn_cycles: List[int] = []
        m_cycles: List[int] = []
        for workload in INTENSIVE_WORKLOADS:
            short = workload.short.lower()
            vn_cycles.append(table.cycles(
                RunSpec(short, scale, seed, VON_NEUMANN, params)
            ))
            m_cycles.append(table.cycles(
                RunSpec(short, scale, seed, MARIONETTE, params)
            ))
        speedups = [v / m for v, m in zip(vn_cycles, m_cycles)]
        result.rows.append({
            "array": f"{size}x{size}",
            "n_pes": params.n_pes,
            "von_neumann_cycles_gm": geomean(vn_cycles),
            "marionette_cycles_gm": geomean(m_cycles),
            "speedup": geomean(speedups),
        })
    result.summary["speedup at largest array"] = result.rows[-1]["speedup"]
    return result


def _mesh_latency_specs(scale: str, seed: int,
                        latencies: Sequence[int]) -> List[RunSpec]:
    return [
        RunSpec(w.short.lower(), scale, seed, model,
                replace(DEFAULT_PARAMS, data_net_latency=latency))
        for latency in latencies
        for w in INTENSIVE_WORKLOADS
        for model in (MARIONETTE_PE, MARIONETTE_CN)
    ]


def mesh_latency_sweep(scale: str = "small", seed: int = 0,
                       latencies: Sequence[int] = _MESH_LATENCIES,
                       engine: Optional[Engine] = None) -> ExperimentResult:
    """Control network gain as a function of data mesh latency."""
    table = execute_specs(_mesh_latency_specs(scale, seed, latencies), engine)
    result = ExperimentResult(
        experiment="Ablation A2",
        title="Control-network speedup vs data mesh latency",
        columns=["data_net_latency", "cn_speedup_geomean"],
        notes=["with a slower mesh, routing control through it costs more, "
               "so the dedicated network's contribution grows"],
    )
    for latency in latencies:
        params = replace(DEFAULT_PARAMS, data_net_latency=latency)
        gains = []
        for workload in INTENSIVE_WORKLOADS:
            short = workload.short.lower()
            gains.append(
                table.cycles(RunSpec(short, scale, seed,
                                     MARIONETTE_PE, params))
                / table.cycles(RunSpec(short, scale, seed,
                                       MARIONETTE_CN, params))
            )
        result.rows.append({
            "data_net_latency": latency,
            "cn_speedup_geomean": geomean(gains),
        })
    first = result.rows[0]["cn_speedup_geomean"]
    last = result.rows[-1]["cn_speedup_geomean"]
    result.summary["gain slope (10c vs 2c mesh)"] = last / first
    return result


def fifo_depth_sweep(depths: Sequence[int] = (1, 2, 4, 8)
                     ) -> ExperimentResult:
    """Control FIFO depth vs scheduler rejections (array simulator).

    Drives a two-loop-run micro-program whose loop operator receives a
    standing reconfiguration while still iterating; a depth-1 FIFO is
    enough for this shape, and rejections never lose messages (the network
    retries), only add cycles.
    """
    from repro.ir.builder import KernelBuilder
    from repro.compiler.config_gen import generate_program
    from repro.sim.array import ArraySimulator

    n = 24
    k = KernelBuilder("fifo_probe")
    size = k.param("n")
    k.array("x")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, k.load("x", i) * 2 + 1)
    cdfg = k.build()

    result = ExperimentResult(
        experiment="Ablation A3",
        title="Control FIFO depth vs conflicts (array simulator)",
        columns=["fifo_depth", "cycles", "ctrl_conflicts", "correct"],
    )
    x = np.arange(n)
    for depth in depths:
        params = replace(DEFAULT_PARAMS, control_fifo_depth=depth)
        program = generate_program(
            cdfg, params, param_values={"n": n},
            array_lengths={"x": n, "o": n},
        )
        sim = ArraySimulator(params, program)
        sim.load_array("x", x)
        sim_result = sim.run(halt_messages=999)
        out = sim_result.array_out(program, "o")
        result.rows.append({
            "fifo_depth": depth,
            "cycles": sim_result.cycles,
            "ctrl_conflicts": sim_result.stats.ctrl_network_conflicts,
            "correct": bool(np.array_equal(out, x * 2 + 1)),
        })
    result.summary["all depths correct"] = float(
        all(r["correct"] for r in result.rows)
    )
    return result


def specs(scale: str = "small", seed: int = 0) -> List[RunSpec]:
    """Every model evaluation the parameter sweeps will need.

    Unlike the figure modules, the sweeps define their own parameter
    points, so there is no ``params`` argument to honour here.
    """
    return (
        _array_size_specs(scale, seed, _ARRAY_SIZES)
        + _mesh_latency_specs(scale, seed, _MESH_LATENCIES)
    )


def run(scale: str = "small", seed: int = 0,
        engine: Optional[Engine] = None) -> List[ExperimentResult]:
    execute_specs(specs(scale, seed), engine)  # one batch, shared traces
    return [
        array_size_sweep(scale, seed, engine=engine),
        mesh_latency_sweep(scale, seed, engine=engine),
        fifo_depth_sweep(),
    ]


if __name__ == "__main__":  # pragma: no cover
    for result in run():
        result.print()
        print()
