"""Run every experiment and emit the full evaluation report.

``python -m repro.experiments.report [scale]`` regenerates all tables and
figures in one pass (the content recorded in EXPERIMENTS.md).

:func:`run_all` collects the :class:`RunSpec` batches of every experiment
first and executes them through one engine, so the nine figures share every
functional trace and — with ``repro bench --jobs N`` — run their model
evaluations in parallel before the tables are assembled serially in paper
order.
"""

from __future__ import annotations

import sys
from typing import (
    Callable, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine, default_engine
from repro.experiments import (
    fig11_pe_models,
    fig12_control_network,
    fig13_network_scaling,
    fig14_agile,
    fig15_utilization,
    fig16_balance,
    fig17_sota,
    table4_area,
    table6_network_area,
)
from repro.experiments.common import ExperimentResult

#: Every experiment module, in paper order.
EXPERIMENT_MODULES = (
    fig11_pe_models,
    fig12_control_network,
    fig13_network_scaling,
    fig14_agile,
    fig15_utilization,
    fig16_balance,
    fig17_sota,
    table4_area,
    table6_network_area,
)


def all_specs(scale: str = "small", seed: int = 0,
              params: ArchParams = DEFAULT_PARAMS,
              kernels: Sequence = ()) -> List:
    """The union of every experiment's run specs (deduplicated in order).

    ``params`` is the architecture every spec prices (``repro bench
    --arch`` threads a loaded description here) — the same sweep over a
    different ``ArchParams`` lands on disjoint fingerprints, so arch
    variants never collide in the cache or a shard partition.

    ``kernels`` (loaded :class:`~repro.kernels.package.KernelPackage`
    objects from ``repro bench --kernels``) appends the external-kernel
    section's specs after the paper's figures, so kernel runs shard,
    stream, cache, and dispatch exactly like built-in ones.
    """
    seen = set()
    specs = []
    for module in EXPERIMENT_MODULES:
        for spec in module.specs(scale, seed, params):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    if kernels:
        from repro.kernels.bench import kernel_specs

        for spec in kernel_specs(kernels, seed, params):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


#: Experiment modules whose ``run`` takes no scale/seed: the area tables
#: are parameter-only, and the network-scaling figure is fully analytic.
_PARAMS_ONLY_MODULES = frozenset({table4_area, table6_network_area})
_ANALYTIC_MODULES = frozenset({fig13_network_scaling})


def _run_module(module, scale: str, seed: int, engine: Engine,
                params: ArchParams = DEFAULT_PARAMS) -> ExperimentResult:
    """One experiment's table, respecting the module's run signature."""
    if module in _PARAMS_ONLY_MODULES:
        return module.run(params=params, engine=engine)
    if module in _ANALYTIC_MODULES:
        return module.run(engine=engine)
    return module.run(scale, seed, params=params, engine=engine)


def run_all(scale: str = "small", seed: int = 0,
            engine: Optional[Engine] = None,
            params: ArchParams = DEFAULT_PARAMS,
            kernels: Sequence = ()
            ) -> List[ExperimentResult]:
    """Every table and figure of the evaluation, in paper order.

    With ``kernels``, the external-kernel section is appended after the
    paper's figures (same engine, same batch — its specs were priced
    alongside everything else).
    """
    engine = engine or default_engine()
    # one batch: parallel + cached
    engine.execute(all_specs(scale, seed, params, kernels))
    results = [
        _run_module(module, scale, seed, engine, params)
        for module in EXPERIMENT_MODULES
    ]
    if kernels:
        from repro.kernels.bench import run_section

        results.append(run_section(kernels, seed, params, engine=engine))
    return results


def assemble_stream(pairs: Iterable[Tuple[int, object]],
                    scale: str = "small", seed: int = 0,
                    engine: Optional[Engine] = None,
                    params: ArchParams = DEFAULT_PARAMS,
                    kernels: Sequence = ()
                    ) -> Iterator[ExperimentResult]:
    """Assemble experiments incrementally from a stream of spec landings.

    ``pairs`` is any iterator of ``(index, _)`` tuples over
    :func:`all_specs` positions — :meth:`Engine.stream` output, or a
    dispatch client's result feed.  Each experiment's table is built and
    yielded **as soon as its last spec lands** (the engine memo replays
    the assembly; nothing is recomputed), subject to one ordering rule:
    experiments emit in paper order, so the concatenated yields are
    exactly :func:`run_all`'s list and a consumer printing them
    reproduces the canonical report byte-for-byte — early tables
    surface while later experiments are still computing, and nothing
    waits for the whole batch.
    """
    engine = engine or default_engine()
    specs = all_specs(scale, seed, params, kernels)
    # (needed spec set, assembly thunk) per report section, in report
    # order: paper experiments first, then the external-kernel section.
    sections: List[Tuple[set, Callable[[], ExperimentResult]]] = [
        (set(module.specs(scale, seed, params)),
         lambda module=module: _run_module(
             module, scale, seed, engine, params))
        for module in EXPERIMENT_MODULES
    ]
    if kernels:
        from repro.kernels.bench import kernel_specs, run_section

        sections.append((
            set(kernel_specs(kernels, seed, params)),
            lambda: run_section(kernels, seed, params, engine=engine),
        ))
    landed: set = set()
    position = 0
    for index, _result in pairs:
        landed.add(specs[index])
        while position < len(sections) \
                and sections[position][0] <= landed:
            yield sections[position][1]()
            position += 1
    # A fully-consumed stream has landed every spec; anything left (e.g.
    # an empty spec batch edge case) assembles from the engine memo.
    while position < len(sections):
        yield sections[position][1]()
        position += 1


def stream_pairs(scale: str = "small", seed: int = 0,
                 engine: Optional[Engine] = None,
                 on_result: Optional[Callable] = None,
                 params: ArchParams = DEFAULT_PARAMS,
                 kernels: Sequence = ()
                 ) -> Iterator[Tuple[int, object]]:
    """:meth:`Engine.stream` over :func:`all_specs`, as ``(index,
    run result)`` pairs ready for :func:`assemble_stream`.

    ``on_result(position, total, run_result)`` fires as each spec
    finishes (completion order) — the CLI's progress lines.  Streaming
    changes *when* results surface, never *what* they are: assembling
    the pairs reproduces :func:`run_all`'s report exactly.
    """
    engine = engine or default_engine()
    specs = all_specs(scale, seed, params, kernels)
    for done, (index, run_result) in enumerate(engine.stream(specs), 1):
        if on_result is not None:
            on_result(done, len(specs), run_result)
        yield index, run_result


def report_header(scale: str, seed: int) -> List[str]:
    """The ASCII report's header lines.

    Shared by :func:`render_results` and the CLI's incremental streamed
    emitter — both paths must stay byte-identical.
    """
    return [
        "# Marionette evaluation report",
        f"(workload scale: {scale}, seed: {seed})",
        "",
    ]


def render_results(results: List[ExperimentResult], scale: str,
                   seed: int) -> str:
    """The canonical ASCII report for an already-assembled result list."""
    sections = report_header(scale, seed)
    for result in results:
        sections.append(result.to_table())
        sections.append("")
    return "\n".join(sections)


def render_report(scale: str = "small", seed: int = 0,
                  engine: Optional[Engine] = None,
                  params: ArchParams = DEFAULT_PARAMS) -> str:
    return render_results(
        run_all(scale, seed, engine=engine, params=params), scale, seed
    )


def main() -> None:  # pragma: no cover - console entry
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(render_report(scale))


if __name__ == "__main__":  # pragma: no cover
    main()
