"""Run every experiment and emit the full evaluation report.

``python -m repro.experiments.report [scale]`` regenerates all tables and
figures in one pass (the content recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from typing import Callable, List

from repro.experiments import (
    fig11_pe_models,
    fig12_control_network,
    fig13_network_scaling,
    fig14_agile,
    fig15_utilization,
    fig16_balance,
    fig17_sota,
    table4_area,
    table6_network_area,
)
from repro.experiments.common import ExperimentResult


def run_all(scale: str = "small", seed: int = 0) -> List[ExperimentResult]:
    """Every table and figure of the evaluation, in paper order."""
    return [
        fig11_pe_models.run(scale, seed),
        fig12_control_network.run(scale, seed),
        fig13_network_scaling.run(),
        fig14_agile.run(scale, seed),
        fig15_utilization.run(scale, seed),
        fig16_balance.run(scale, seed),
        fig17_sota.run(scale, seed),
        table4_area.run(),
        table6_network_area.run(),
    ]


def render_report(scale: str = "small", seed: int = 0) -> str:
    sections = [
        "# Marionette evaluation report",
        f"(workload scale: {scale}, seed: {seed})",
        "",
    ]
    for result in run_all(scale, seed):
        sections.append(result.to_table())
        sections.append("")
    return "\n".join(sections)


def main() -> None:  # pragma: no cover - console entry
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(render_report(scale))


if __name__ == "__main__":  # pragma: no cover
    main()
