"""Run every experiment and emit the full evaluation report.

``python -m repro.experiments.report [scale]`` regenerates all tables and
figures in one pass (the content recorded in EXPERIMENTS.md).

:func:`run_all` collects the :class:`RunSpec` batches of every experiment
first and executes them through one engine, so the nine figures share every
functional trace and — with ``repro bench --jobs N`` — run their model
evaluations in parallel before the tables are assembled serially in paper
order.
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional

from repro.engine.executor import Engine, default_engine
from repro.experiments import (
    fig11_pe_models,
    fig12_control_network,
    fig13_network_scaling,
    fig14_agile,
    fig15_utilization,
    fig16_balance,
    fig17_sota,
    table4_area,
    table6_network_area,
)
from repro.experiments.common import ExperimentResult

#: Every experiment module, in paper order.
EXPERIMENT_MODULES = (
    fig11_pe_models,
    fig12_control_network,
    fig13_network_scaling,
    fig14_agile,
    fig15_utilization,
    fig16_balance,
    fig17_sota,
    table4_area,
    table6_network_area,
)


def all_specs(scale: str = "small", seed: int = 0) -> List:
    """The union of every experiment's run specs (deduplicated in order)."""
    seen = set()
    specs = []
    for module in EXPERIMENT_MODULES:
        for spec in module.specs(scale, seed):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


def run_all(scale: str = "small", seed: int = 0,
            engine: Optional[Engine] = None) -> List[ExperimentResult]:
    """Every table and figure of the evaluation, in paper order."""
    engine = engine or default_engine()
    engine.execute(all_specs(scale, seed))  # one batch: parallel + cached
    return [
        fig11_pe_models.run(scale, seed, engine=engine),
        fig12_control_network.run(scale, seed, engine=engine),
        fig13_network_scaling.run(engine=engine),
        fig14_agile.run(scale, seed, engine=engine),
        fig15_utilization.run(scale, seed, engine=engine),
        fig16_balance.run(scale, seed, engine=engine),
        fig17_sota.run(scale, seed, engine=engine),
        table4_area.run(engine=engine),
        table6_network_area.run(engine=engine),
    ]


def stream_all(scale: str = "small", seed: int = 0,
               engine: Optional[Engine] = None,
               on_result: Optional[Callable] = None
               ) -> List[ExperimentResult]:
    """:func:`run_all`, but through :meth:`Engine.stream`.

    ``on_result(position, total, run_result)`` fires as each spec
    finishes (completion order); the returned report is assembled from
    the engine's memo afterwards and is identical to :func:`run_all`'s —
    streaming changes *when* results surface, never *what* they are.
    """
    engine = engine or default_engine()
    specs = all_specs(scale, seed)
    for done, (index, run_result) in enumerate(engine.stream(specs), 1):
        if on_result is not None:
            on_result(done, len(specs), run_result)
    return run_all(scale, seed, engine=engine)


def render_results(results: List[ExperimentResult], scale: str,
                   seed: int) -> str:
    """The canonical ASCII report for an already-assembled result list."""
    sections = [
        "# Marionette evaluation report",
        f"(workload scale: {scale}, seed: {seed})",
        "",
    ]
    for result in results:
        sections.append(result.to_table())
        sections.append("")
    return "\n".join(sections)


def render_report(scale: str = "small", seed: int = 0,
                  engine: Optional[Engine] = None) -> str:
    return render_results(run_all(scale, seed, engine=engine), scale, seed)


def main() -> None:  # pragma: no cover - console entry
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(render_report(scale))


if __name__ == "__main__":  # pragma: no cover
    main()
