"""Figure 14: speedup from Agile PE Assignment.

Paper result: geomean 2.03x, up to 5.99x; kernels that cannot pipeline
well (CRC/ADPCM/Merge Sort/LDPC) see little gain, regular imperfect nests
(HT, GEMM, SC Decode, Viterbi) see the most.
"""

from __future__ import annotations

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.baselines import MarionetteModel
from repro.perf.speedup import geomean
from repro.experiments.common import ExperimentResult, SuiteContext


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS) -> ExperimentResult:
    context = SuiteContext.get(scale, seed, params)
    base = MarionetteModel(
        params, control_network=False, agile=False, name="Marionette PE"
    )
    agile = MarionetteModel(
        params, control_network=False, agile=True,
        name="Marionette PE + Agile PE Assignment",
    )
    result = ExperimentResult(
        experiment="Figure 14",
        title="Speedup contributed by Agile PE Assignment",
        columns=["kernel", "marionette_pe", "with_agile", "improvement_pct"],
        paper_claim="geomean 2.03x, up to 5.99x",
    )
    gains = []
    for run_ in context.intensive():
        base_cycles = base.simulate(run_.kernel).cycles
        agile_cycles = agile.simulate(run_.kernel).cycles
        gain = base_cycles / agile_cycles
        gains.append(gain)
        result.rows.append({
            "kernel": run_.workload.short,
            "marionette_pe": 1.0,
            "with_agile": gain,
            "improvement_pct": 100.0 * (gain - 1.0),
        })
    result.summary = {
        "geomean Agile speedup": geomean(gains),
        "max Agile speedup": max(gains),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
