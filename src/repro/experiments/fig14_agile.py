"""Figure 14: speedup from Agile PE Assignment.

Paper result: geomean 2.03x, up to 5.99x; kernels that cannot pipeline
well (CRC/ADPCM/Merge Sort/LDPC) see little gain, regular imperfect nests
(HT, GEMM, SC Decode, Viterbi) see the most.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.perf.speedup import geomean
from repro.workloads import INTENSIVE_WORKLOADS
from repro.experiments.common import (
    MARIONETTE_AGILE,
    MARIONETTE_PE,
    ExperimentResult,
    execute_specs,
)


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    return [
        RunSpec(w.short.lower(), scale, seed, model, params)
        for w in INTENSIVE_WORKLOADS
        for model in (MARIONETTE_PE, MARIONETTE_AGILE)
    ]


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    table = execute_specs(specs(scale, seed, params), engine)
    result = ExperimentResult(
        experiment="Figure 14",
        title="Speedup contributed by Agile PE Assignment",
        columns=["kernel", "marionette_pe", "with_agile", "improvement_pct"],
        paper_claim="geomean 2.03x, up to 5.99x",
    )
    gains = []
    for workload in INTENSIVE_WORKLOADS:
        short = workload.short.lower()
        base_cycles = table.cycles(
            RunSpec(short, scale, seed, MARIONETTE_PE, params)
        )
        agile_cycles = table.cycles(
            RunSpec(short, scale, seed, MARIONETTE_AGILE, params)
        )
        gain = base_cycles / agile_cycles
        gains.append(gain)
        result.rows.append({
            "kernel": workload.short,
            "marionette_pe": 1.0,
            "with_agile": gain,
            "improvement_pct": 100.0 * (gain - 1.0),
        })
    result.summary = {
        "geomean Agile speedup": geomean(gains),
        "max Agile speedup": max(gains),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
