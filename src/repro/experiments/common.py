"""Experiment harness shared by every table/figure module.

:class:`SuiteContext` runs each workload once per scale and caches the
functional trace — the expensive part — so all nine experiments replay the
same executions through different architecture models.  Results are plain
:class:`ExperimentResult` tables that render to aligned ASCII, mirroring
the rows/series of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.baselines.base import KernelInstance
from repro.workloads import (
    ALL_WORKLOADS,
    INTENSIVE_WORKLOADS,
    NON_INTENSIVE_WORKLOADS,
    Workload,
    WorkloadInstance,
)


@dataclass
class KernelRun:
    """One workload's cached execution."""

    workload: Workload
    instance: WorkloadInstance
    kernel: KernelInstance


class SuiteContext:
    """Cached workload executions for one (scale, seed, params)."""

    _cache: Dict[tuple, "SuiteContext"] = {}

    def __init__(self, scale: str = "small", seed: int = 0,
                 params: ArchParams = DEFAULT_PARAMS) -> None:
        self.scale = scale
        self.seed = seed
        self.params = params
        self._runs: Dict[str, KernelRun] = {}

    @classmethod
    def get(cls, scale: str = "small", seed: int = 0,
            params: ArchParams = DEFAULT_PARAMS) -> "SuiteContext":
        key = (scale, seed, params)
        if key not in cls._cache:
            cls._cache[key] = cls(scale, seed, params)
        return cls._cache[key]

    # ------------------------------------------------------------------
    def run_of(self, workload: Workload) -> KernelRun:
        if workload.short not in self._runs:
            instance = workload.instance(self.scale, seed=self.seed)
            instance.check()  # every experiment runs on verified outputs
            result = instance.run()
            self._runs[workload.short] = KernelRun(
                workload=workload, instance=instance,
                kernel=KernelInstance(instance.cdfg, result.trace),
            )
        return self._runs[workload.short]

    def intensive(self) -> List[KernelRun]:
        return [self.run_of(w) for w in INTENSIVE_WORKLOADS]

    def non_intensive(self) -> List[KernelRun]:
        return [self.run_of(w) for w in NON_INTENSIVE_WORKLOADS]

    def all(self) -> List[KernelRun]:
        return [self.run_of(w) for w in ALL_WORKLOADS]


@dataclass
class ExperimentResult:
    """A rendered experiment: rows of one table/figure."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper_claim: str = ""
    notes: List[str] = field(default_factory=list)

    def to_table(self) -> str:
        """Aligned ASCII rendering."""
        widths = {c: len(c) for c in self.columns}
        rendered: List[Dict[str, str]] = []
        for row in self.rows:
            out = {}
            for column in self.columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    text = f"{value:.3f}"
                else:
                    text = str(value)
                out[column] = text
                widths[column] = max(widths[column], len(text))
            rendered.append(out)
        lines = [f"== {self.experiment}: {self.title} =="]
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in rendered:
            lines.append(
                "  ".join(row[c].ljust(widths[c]) for c in self.columns)
            )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"{key}: {value:.3f}")
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.to_table())
