"""Experiment harness shared by every table/figure module.

Execution goes through the :mod:`repro.engine` subsystem: each experiment
enumerates declarative :class:`~repro.engine.spec.RunSpec` combinations and
hands them to an :class:`~repro.engine.executor.Engine`, which caches
functional traces (the expensive part) on disk, shares them across all nine
experiments and every parameter sweep, and optionally fans the model
evaluations out over worker processes.  :class:`SuiteContext` remains as a
thin per-(scale, seed) view over the engine for code that needs the
verified workload instances themselves.

Results are plain :class:`ExperimentResult` tables that render to aligned
ASCII, mirroring the rows/series of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine, KernelRun, default_engine
from repro.engine.spec import ModelSpec, RunResult, RunSpec
from repro.workloads import (
    ALL_WORKLOADS,
    INTENSIVE_WORKLOADS,
    NON_INTENSIVE_WORKLOADS,
    Workload,
)

#: Canonical model specs shared across experiments, so figures that price
#: the same configuration (e.g. the bare Marionette PE in Figs. 11/12/14/16)
#: share one cache entry per kernel.
VON_NEUMANN = ModelSpec.make("von_neumann")
DATAFLOW = ModelSpec.make("dataflow")
SOFTBRAIN = ModelSpec.make("softbrain")
TIA = ModelSpec.make("tia")
REVEL = ModelSpec.make("revel")
RIPTIDE = ModelSpec.make("riptide")
IDEAL = ModelSpec.make("ideal")
MARIONETTE = ModelSpec.make("marionette")
MARIONETTE_PE = ModelSpec.make(
    "marionette", label="Marionette PE",
    control_network=False, agile=False,
)
MARIONETTE_CN = ModelSpec.make(
    "marionette", label="Marionette PE + Control Network",
    control_network=True, agile=False,
)
MARIONETTE_AGILE = ModelSpec.make(
    "marionette", label="Marionette PE + Agile PE Assignment",
    control_network=False, agile=True,
)


class ResultTable:
    """Spec-indexed view over one :meth:`Engine.execute` batch."""

    def __init__(self, results: Sequence[RunResult]) -> None:
        self._by_spec: Dict[RunSpec, RunResult] = {
            r.spec: r for r in results
        }

    def run(self, spec: RunSpec) -> RunResult:
        return self._by_spec[spec]

    def result(self, spec: RunSpec):
        return self._by_spec[spec].result

    def cycles(self, spec: RunSpec) -> int:
        return self._by_spec[spec].result.cycles


def execute_specs(specs: Sequence[RunSpec],
                  engine: Optional[Engine] = None) -> ResultTable:
    """Run ``specs`` on ``engine`` (default: the shared process engine)."""
    engine = engine or default_engine()
    return ResultTable(engine.execute(specs))


class SuiteContext:
    """Cached workload executions for one (scale, seed, params) view.

    Functional traces are keyed by (workload, scale, seed) inside the
    engine — parameter sweeps share them — so this class is only a
    convenience binding of a scale/seed pair to the engine.
    """

    _cache: Dict[tuple, "SuiteContext"] = {}

    def __init__(self, scale: str = "small", seed: int = 0,
                 params: ArchParams = DEFAULT_PARAMS,
                 engine: Optional[Engine] = None) -> None:
        self.scale = scale
        self.seed = seed
        self.params = params
        self._engine = engine

    @property
    def engine(self) -> Engine:
        return self._engine or default_engine()

    @classmethod
    def get(cls, scale: str = "small", seed: int = 0,
            params: ArchParams = DEFAULT_PARAMS) -> "SuiteContext":
        key = (scale, seed, params)
        if key not in cls._cache:
            cls._cache[key] = cls(scale, seed, params)
        return cls._cache[key]

    # ------------------------------------------------------------------
    def run_of(self, workload: Workload) -> KernelRun:
        return self.engine.kernel_run(workload, self.scale, self.seed)

    def intensive(self) -> List[KernelRun]:
        return [self.run_of(w) for w in INTENSIVE_WORKLOADS]

    def non_intensive(self) -> List[KernelRun]:
        return [self.run_of(w) for w in NON_INTENSIVE_WORKLOADS]

    def all(self) -> List[KernelRun]:
        return [self.run_of(w) for w in ALL_WORKLOADS]


@dataclass
class ExperimentResult:
    """A rendered experiment: rows of one table/figure."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper_claim: str = ""
    notes: List[str] = field(default_factory=list)

    def to_table(self) -> str:
        """Aligned ASCII rendering."""
        widths = {c: len(c) for c in self.columns}
        rendered: List[Dict[str, str]] = []
        for row in self.rows:
            out = {}
            for column in self.columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    text = f"{value:.3f}"
                else:
                    text = str(value)
                out[column] = text
                widths[column] = max(widths[column], len(text))
            rendered.append(out)
        lines = [f"== {self.experiment}: {self.title} =="]
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in rendered:
            lines.append(
                "  ".join(row[c].ljust(widths[c]) for c in self.columns)
            )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                lines.append(f"{key}: {value:.3f}")
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.to_table())
