"""Figure 15: effects of Agile PE Assignment on utilization.

Only multi-level nested-loop kernels whose innermost loop pipelines are
included (paper: FFT, VI, NW, HT, SCD, LDPC, GEMM).

Paper result: outer-BB PE utilization improves 21.57x on average (GEMM
134x); pipeline utilization improves 1.54x on average.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.perf.utilization import outer_bb_utilization, pipeline_utilization
from repro.workloads import get_workload
from repro.experiments.common import (
    MARIONETTE_AGILE,
    MARIONETTE_PE,
    ExperimentResult,
    SuiteContext,
    execute_specs,
)

FIG15_KERNELS = ("fft", "vi", "nw", "ht", "scd", "ldpc", "gemm")


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    return [
        RunSpec(name, scale, seed, model, params)
        for name in FIG15_KERNELS
        for model in (MARIONETTE_PE, MARIONETTE_AGILE)
    ]


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    table = execute_specs(specs(scale, seed, params), engine)
    context = SuiteContext(scale, seed, params, engine)
    result = ExperimentResult(
        experiment="Figure 15",
        title="Outer-BB PE utilization and pipeline utilization",
        columns=["kernel", "outer_util_orig_pct", "outer_util_agile_pct",
                 "outer_util_gain", "pipe_util_orig_pct",
                 "pipe_util_agile_pct", "pipe_util_gain"],
        paper_claim="outer-BB utilization 21.57x avg (GEMM 134x); "
                    "pipeline utilization 1.54x avg",
    )
    outer_gains = []
    pipe_gains = []
    for name in FIG15_KERNELS:
        run_ = context.run_of(get_workload(name))
        base_result = table.result(
            RunSpec(name, scale, seed, MARIONETTE_PE, params)
        )
        agile_result = table.result(
            RunSpec(name, scale, seed, MARIONETTE_AGILE, params)
        )
        outer_orig = outer_bb_utilization(
            run_.kernel, base_result, params, agile=False
        )
        outer_new = outer_bb_utilization(
            run_.kernel, agile_result, params, agile=True
        )
        pipe_orig = pipeline_utilization(base_result)
        pipe_new = pipeline_utilization(agile_result)
        outer_gain = outer_new / outer_orig if outer_orig > 0 else 1.0
        pipe_gain = pipe_new / pipe_orig if pipe_orig > 0 else 1.0
        outer_gains.append(outer_gain)
        pipe_gains.append(pipe_gain)
        result.rows.append({
            "kernel": run_.workload.short,
            "outer_util_orig_pct": 100.0 * outer_orig,
            "outer_util_agile_pct": 100.0 * outer_new,
            "outer_util_gain": outer_gain,
            "pipe_util_orig_pct": 100.0 * pipe_orig,
            "pipe_util_agile_pct": 100.0 * pipe_new,
            "pipe_util_gain": pipe_gain,
        })
    result.summary = {
        "mean outer-BB utilization gain": sum(outer_gains) / len(outer_gains),
        "max outer-BB utilization gain": max(outer_gains),
        "mean pipeline utilization gain": sum(pipe_gains) / len(pipe_gains),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
