"""One module per paper table/figure; see DESIGN.md's experiment index.

Each module exposes ``run(scale, seed) -> ExperimentResult`` and can be
executed directly (``python -m repro.experiments.fig11_pe_models``);
:mod:`repro.experiments.report` regenerates everything.
"""

from repro.experiments.common import ExperimentResult, SuiteContext

__all__ = ["ExperimentResult", "SuiteContext"]
