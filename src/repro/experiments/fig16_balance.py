"""Figure 16: control network speedup vs Agile PE Assignment speedup.

Paper claim: the two features split the kernels — partially-pipelined
kernels (MS, ADPCM, CRC, LDPC) gain from the control network; kernels with
regular control flow (VI, HT, SCD, GEMM) gain from Agile PE Assignment —
distinguished by how much of the control flow can be hidden in pipelines.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.workloads import get_workload
from repro.experiments.common import (
    MARIONETTE_AGILE,
    MARIONETTE_CN,
    MARIONETTE_PE,
    ExperimentResult,
    execute_specs,
)

#: paper order: network-optimised group, then pipeline-optimised group
FIG16_ORDER = ("ms", "adpcm", "crc", "ldpc", "nw", "fft", "vi", "ht",
               "scd", "gemm")


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    return [
        RunSpec(name, scale, seed, model, params)
        for name in FIG16_ORDER
        for model in (MARIONETTE_PE, MARIONETTE_CN, MARIONETTE_AGILE)
    ]


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    table = execute_specs(specs(scale, seed, params), engine)
    result = ExperimentResult(
        experiment="Figure 16",
        title="Control network speedup vs Agile PE Assignment speedup",
        columns=["kernel", "network_speedup_pct", "agile_speedup_pct",
                 "dominant"],
        paper_claim="network helps partially-pipelined kernels (MS ADPCM "
                    "CRC LDPC); Agile helps regular ones (VI HT SCD GEMM)",
    )
    for name in FIG16_ORDER:
        base_cycles = table.cycles(
            RunSpec(name, scale, seed, MARIONETTE_PE, params)
        )
        network_gain = base_cycles / table.cycles(
            RunSpec(name, scale, seed, MARIONETTE_CN, params)
        )
        agile_gain = base_cycles / table.cycles(
            RunSpec(name, scale, seed, MARIONETTE_AGILE, params)
        )
        network_pct = 100.0 * (network_gain - 1.0)
        agile_pct = 100.0 * (agile_gain - 1.0)
        if agile_pct > 2 * network_pct:
            dominant = "pipeline"
        elif network_pct > 2 * agile_pct:
            dominant = "network"
        else:
            dominant = "balanced"
        result.rows.append({
            "kernel": get_workload(name).short,
            "network_speedup_pct": network_pct,
            "agile_speedup_pct": agile_pct,
            "dominant": dominant,
        })
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
