"""Figure 16: control network speedup vs Agile PE Assignment speedup.

Paper claim: the two features split the kernels — partially-pipelined
kernels (MS, ADPCM, CRC, LDPC) gain from the control network; kernels with
regular control flow (VI, HT, SCD, GEMM) gain from Agile PE Assignment —
distinguished by how much of the control flow can be hidden in pipelines.
"""

from __future__ import annotations

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.baselines import MarionetteModel
from repro.workloads import get_workload
from repro.experiments.common import ExperimentResult, SuiteContext

#: paper order: network-optimised group, then pipeline-optimised group
FIG16_ORDER = ("ms", "adpcm", "crc", "ldpc", "nw", "fft", "vi", "ht",
               "scd", "gemm")


def run(scale: str = "small", seed: int = 0,
        params: ArchParams = DEFAULT_PARAMS) -> ExperimentResult:
    context = SuiteContext.get(scale, seed, params)
    base = MarionetteModel(
        params, control_network=False, agile=False, name="Marionette PE"
    )
    with_network = MarionetteModel(
        params, control_network=True, agile=False, name="+CN"
    )
    with_agile = MarionetteModel(
        params, control_network=False, agile=True, name="+Agile"
    )
    result = ExperimentResult(
        experiment="Figure 16",
        title="Control network speedup vs Agile PE Assignment speedup",
        columns=["kernel", "network_speedup_pct", "agile_speedup_pct",
                 "dominant"],
        paper_claim="network helps partially-pipelined kernels (MS ADPCM "
                    "CRC LDPC); Agile helps regular ones (VI HT SCD GEMM)",
    )
    for name in FIG16_ORDER:
        run_ = context.run_of(get_workload(name))
        base_cycles = base.simulate(run_.kernel).cycles
        network_gain = base_cycles / with_network.simulate(run_.kernel).cycles
        agile_gain = base_cycles / with_agile.simulate(run_.kernel).cycles
        network_pct = 100.0 * (network_gain - 1.0)
        agile_pct = 100.0 * (agile_gain - 1.0)
        if agile_pct > 2 * network_pct:
            dominant = "pipeline"
        elif network_pct > 2 * agile_pct:
            dominant = "network"
        else:
            dominant = "balanced"
        result.rows.append({
            "kernel": run_.workload.short,
            "network_speedup_pct": network_pct,
            "agile_speedup_pct": agile_pct,
            "dominant": dominant,
        })
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
