"""Figure 13: control network delay vs stages vs synthesis frequency.

Paper claim: higher frequency and larger fabric increase network latency,
but the increase (in cycles) stays low — the control network scales well
because control flow tolerates more latency than the data path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.arch.network.area import delay_model, scaling_series, stages_for_array
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.experiments.common import ExperimentResult


def specs(scale: str = "small", seed: int = 0,
          params=None) -> List[RunSpec]:
    """Analytic experiment: no workload simulations required."""
    return []


def run(stage_range: Sequence[int] = (3, 5, 7, 9, 11, 13, 15, 17, 19),
        frequencies_ghz: Sequence[float] = (0.5, 1.0, 2.0),
        engine: Optional[Engine] = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 13",
        title="Control network delay vs stages and synthesis frequency",
        columns=["stages", "frequency_ghz", "network_delay_ns",
                 "clock_period_ns", "latency_cycles", "meets_single_cycle"],
        paper_claim="latency grows slowly with stages; single-cycle at "
                    "500 MHz for the 4x4 prototype (19 stages)",
    )
    for point in scaling_series(stage_range, frequencies_ghz):
        result.rows.append(point)
    prototype = delay_model(stages_for_array(16), 0.5)
    result.summary = {
        "prototype stages (4x4)": float(stages_for_array(16)),
        "prototype latency cycles @500MHz": float(
            prototype["latency_cycles"]
        ),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
