"""Table 4: area and power breakdown of the 28 nm prototype.

Computed from the calibrated component models; the default configuration
reproduces the published totals (0.151 mm^2, 152.09 mW).
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.executor import Engine
from repro.engine.spec import RunSpec
from repro.perf.area import table4_rows
from repro.experiments.common import ExperimentResult


def specs(scale: str = "small", seed: int = 0,
          params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    """Analytic experiment: no workload simulations required."""
    return []


def run(params: ArchParams = DEFAULT_PARAMS,
        engine: Optional[Engine] = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table 4",
        title="Area and power breakdown (28 nm)",
        columns=["group", "component", "area_mm2", "power_mw"],
        paper_claim="total 0.151 mm^2, 152.09 mW",
    )
    rows = table4_rows(params)
    for row in rows:
        result.rows.append({
            "group": row["group"],
            "component": row["component"],
            "area_mm2": round(float(row["area_mm2"]), 4),
            "power_mw": round(float(row["power_mw"]), 2),
        })
    total = rows[-1]
    result.summary = {
        "total area mm^2": float(total["area_mm2"]),
        "total power mW": float(total["power_mw"]),
    }
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
