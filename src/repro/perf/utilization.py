"""Utilization analyses for Fig. 15.

Two metrics, both computed from an execution model's
:class:`~repro.baselines.base.CycleResult` breakdowns and the kernel's
dynamic statistics:

* **outer-BB PE utilization** — busy fraction of the PEs that hold the
  outer-loop basic blocks.  Without Agile PE Assignment those PEs only work
  during the (rare) outer iterations; with it they either join the outer
  pipeline or host reshaped/unrolled copies of the inner pipeline, and the
  kernel also finishes sooner — both effects multiply, producing the
  paper's 21.57x average (134x for GEMM's dense spatial pipeline).
* **pipeline utilization** — the proportion of pipeline initiations to the
  cycles the pipelined regions occupy (an II-weighted idleness measure);
  the Marionette schedule improves it 1.54x on average.
"""

from __future__ import annotations

from typing import Set

from repro.arch.params import ArchParams
from repro.baselines.base import CycleResult, KernelInstance
from repro.errors import ReproError
from repro.ir.cfg import BlockId


def _outer_blocks(kernel: KernelInstance) -> Set[BlockId]:
    """Own blocks of all non-innermost loops (the outer BBs)."""
    out: Set[BlockId] = set()
    for nest in kernel.nests.values():
        if nest.children:
            out |= nest.own_blocks(kernel.nests)
    return out


def outer_bb_utilization(kernel: KernelInstance, result: CycleResult,
                         params: ArchParams, *,
                         agile: bool) -> float:
    """Busy fraction of the PEs statically assigned to outer BBs."""
    outer = _outer_blocks(kernel)
    if not outer:
        raise ReproError(
            f"{kernel.name}: no outer basic blocks (not an imperfect nest)"
        )
    outer_pes = min(
        params.n_pes,
        max(1, sum(kernel.cdfg.block(b).op_count for b in outer)),
    )
    busy = kernel.trace.dynamic_ops_in(kernel.cdfg, outer) * params.t_execute
    if agile:
        # The reshaped/unrolled inner pipelines run on the formerly idle
        # outer PEs: account the inner initiations they now host.
        inner_ops = 0
        for breakdown in result.breakdowns:
            if breakdown.innermost and breakdown.unroll > 1:
                share = (breakdown.unroll - 1) / breakdown.unroll
                nest = kernel.nests[breakdown.header]
                inner_ops += int(
                    share * kernel.trace.dynamic_ops_in(
                        kernel.cdfg, nest.own_blocks(kernel.nests)
                    )
                )
        busy += inner_ops * params.t_execute
    capacity = outer_pes * max(1, result.cycles)
    return min(1.0, busy / capacity)


def pipeline_utilization(result: CycleResult) -> float:
    """Initiations over occupied cycles across innermost pipelines."""
    initiations = 0
    occupied = 0
    for breakdown in result.breakdowns:
        if not breakdown.innermost or breakdown.iterations == 0:
            continue
        initiations += -(-breakdown.iterations // breakdown.unroll)
        occupied += breakdown.own_cycles
    if occupied == 0:
        return 0.0
    return min(1.0, initiations / occupied)
