"""Area and power models (paper Table 4 and Table 6, 28 nm).

Per-component unit costs are calibrated once against the published
prototype breakdown; :func:`table4_rows` then *computes* the breakdown for
any :class:`~repro.arch.params.ArchParams`, so scaling studies (more PEs,
bigger scratchpads) stay self-consistent.  Table 6's competitor numbers are
published constants (normalised by the authors to 28 nm, 32-bit, 4x4); our
row is computed from the network structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arch.network.area import NetworkAreaModel
from repro.arch.params import ArchParams, DEFAULT_PARAMS

# ----------------------------------------------------------------------
# Calibration anchors: the published prototype (Table 4)
# ----------------------------------------------------------------------
_ORDINARY_PE_AREA = 0.059 / 12        # mm^2 per ordinary PE
_NONLINEAR_PE_AREA = 0.032 / 4        # mm^2 per nonlinear-fitting PE
_SRAM_AREA_PER_KB = 0.033 / 16        # data scratchpad
_CTRL_FIFO_AREA = 0.001 / 16          # per PE-attached control FIFO
_CONTROLLER_AREA = 0.013              # controller + 2 KB inst scratchpad

_ORDINARY_PE_POWER = 48.99 / 12       # mW
_NONLINEAR_PE_POWER = 22.02 / 4
_DATA_NET_POWER = 40.80 / 16          # per router
_CTRL_NET_POWER = 13.89 / 416         # per switch
_SRAM_POWER_PER_KB = 5.07 / 16
_MEM_INTERCONNECT_POWER = 14.24
_CTRL_FIFO_POWER = 0.56 / 16
_CONTROLLER_POWER = 6.52


@dataclass(frozen=True)
class AreaPowerModel:
    """Computes the Table 4 breakdown for one configuration."""

    params: ArchParams = DEFAULT_PARAMS

    # -- component areas (mm^2) ----------------------------------------
    def ordinary_pe_area(self) -> float:
        n = self.params.n_pes - self.params.nonlinear_pes
        return n * _ORDINARY_PE_AREA

    def nonlinear_pe_area(self) -> float:
        return self.params.nonlinear_pes * _NONLINEAR_PE_AREA

    def _network(self) -> NetworkAreaModel:
        return NetworkAreaModel(
            n_pes=self.params.n_pes,
            data_width_bits=self.params.data_width_bits,
        )

    def data_network_area(self) -> float:
        return self._network().data_network_area()

    def control_network_area(self) -> float:
        return self._network().control_network_area()

    def scratchpad_area(self) -> float:
        return self.params.sram_kb * _SRAM_AREA_PER_KB

    def memory_interconnect_area(self) -> float:
        return self._network().memory_interconnect_area()

    def control_fifo_area(self) -> float:
        return self.params.n_pes * _CTRL_FIFO_AREA

    def controller_area(self) -> float:
        return _CONTROLLER_AREA * (self.params.inst_scratchpad_kb / 2)

    def total_area(self) -> float:
        return sum((
            self.ordinary_pe_area(), self.nonlinear_pe_area(),
            self.data_network_area(), self.control_network_area(),
            self.scratchpad_area(), self.memory_interconnect_area(),
            self.control_fifo_area(), self.controller_area(),
        ))

    # -- component powers (mW) -----------------------------------------
    def total_power(self) -> float:
        n_ord = self.params.n_pes - self.params.nonlinear_pes
        switches = self._network  # noqa: F841 - see control net power below
        from repro.arch.network.cs_benes import ControlNetwork

        ctrl_switches = ControlNetwork(self.params.n_pes).switch_count
        return sum((
            n_ord * _ORDINARY_PE_POWER,
            self.params.nonlinear_pes * _NONLINEAR_PE_POWER,
            self.params.n_pes * _DATA_NET_POWER,
            ctrl_switches * _CTRL_NET_POWER,
            self.params.sram_kb * _SRAM_POWER_PER_KB,
            _MEM_INTERCONNECT_POWER * (self.params.n_pes / 16),
            self.params.n_pes * _CTRL_FIFO_POWER,
            _CONTROLLER_POWER * (self.params.inst_scratchpad_kb / 2),
        ))


def table4_rows(params: ArchParams = DEFAULT_PARAMS) -> List[Dict[str, object]]:
    """The Table 4 breakdown: (group, component, area mm^2, power mW)."""
    model = AreaPowerModel(params)
    from repro.arch.network.cs_benes import ControlNetwork

    ctrl_switches = ControlNetwork(params.n_pes).switch_count
    n_ord = params.n_pes - params.nonlinear_pes
    rows = [
        {"group": "PE", "component": f"PEs ({n_ord} ordinary)",
         "area_mm2": model.ordinary_pe_area(),
         "power_mw": n_ord * _ORDINARY_PE_POWER},
        {"group": "PE",
         "component": f"PEs ({params.nonlinear_pes} with nonlinear fitting)",
         "area_mm2": model.nonlinear_pe_area(),
         "power_mw": params.nonlinear_pes * _NONLINEAR_PE_POWER},
        {"group": "Network", "component": "Data Network",
         "area_mm2": model.data_network_area(),
         "power_mw": params.n_pes * _DATA_NET_POWER},
        {"group": "Network", "component": "Control Network",
         "area_mm2": model.control_network_area(),
         "power_mw": ctrl_switches * _CTRL_NET_POWER},
        {"group": "Memory",
         "component": f"Data Scratchpad ({params.sram_kb}KB)",
         "area_mm2": model.scratchpad_area(),
         "power_mw": params.sram_kb * _SRAM_POWER_PER_KB},
        {"group": "Memory", "component": "Memory Access Interconnect",
         "area_mm2": model.memory_interconnect_area(),
         "power_mw": _MEM_INTERCONNECT_POWER * (params.n_pes / 16)},
        {"group": "Memory", "component": "Control FIFOs",
         "area_mm2": model.control_fifo_area(),
         "power_mw": params.n_pes * _CTRL_FIFO_POWER},
        {"group": "Control",
         "component": (
             f"Controller / Instruction Scratchpad "
             f"({params.inst_scratchpad_kb}KB)"
         ),
         "area_mm2": model.controller_area(),
         "power_mw": _CONTROLLER_POWER * (params.inst_scratchpad_kb / 2)},
    ]
    rows.append({
        "group": "Total", "component": "Marionette",
        "area_mm2": sum(r["area_mm2"] for r in rows),
        "power_mw": sum(r["power_mw"] for r in rows),
    })
    return rows


# ----------------------------------------------------------------------
# Table 6: published competitor numbers (28 nm, 32-bit, 4x4 normalised)
# ----------------------------------------------------------------------
TABLE6_PUBLISHED: Dict[str, Dict[str, float]] = {
    "Softbrain": {"pe_area": 0.0041, "network_area": 0.0130},
    "REVEL": {"pe_area": 0.022, "network_area": 0.028},
    "DySER": {"pe_area": 0.058, "network_area": 0.052},
    "Plasticine": {"pe_area": 0.161, "network_area": 0.294},
    "SPU": {"pe_area": 0.050, "network_area": 0.045},
}


def table6_rows(params: ArchParams = DEFAULT_PARAMS) -> List[Dict[str, object]]:
    """Table 6: network area vs computing fabric across architectures.

    Competitor rows are the published constants; the Marionette row is
    computed from this repo's PE and network models.
    """
    rows: List[Dict[str, object]] = []
    for arch, data in TABLE6_PUBLISHED.items():
        fabric = data["pe_area"] + data["network_area"]
        rows.append({
            "architecture": arch,
            "pe_area": data["pe_area"],
            "network_area": data["network_area"],
            "computing_fabric": fabric,
            "network_ratio": data["network_area"] / fabric,
        })
    model = AreaPowerModel(params)
    pe_area = model.ordinary_pe_area() + model.nonlinear_pe_area()
    network = (
        model.data_network_area()
        + model.memory_interconnect_area()
        + model.control_network_area()
    )
    fabric = pe_area + network
    rows.append({
        "architecture": "Marionette",
        "pe_area": pe_area,
        "network_area": network,
        "computing_fabric": fabric,
        "network_ratio": network / fabric,
    })
    return rows
