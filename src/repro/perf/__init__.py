"""Area/power models and utilization analyses backing the experiments."""

from repro.perf.area import AreaPowerModel, TABLE6_PUBLISHED, table4_rows, table6_rows
from repro.perf.utilization import (
    outer_bb_utilization,
    pipeline_utilization,
)
from repro.perf.speedup import geomean, normalize

__all__ = [
    "AreaPowerModel",
    "TABLE6_PUBLISHED",
    "table4_rows",
    "table6_rows",
    "outer_bb_utilization",
    "pipeline_utilization",
    "geomean",
    "normalize",
]
