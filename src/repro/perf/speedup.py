"""Speedup arithmetic helpers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.errors import ReproError


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive inputs."""
    vals = list(values)
    if not vals:
        raise ReproError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ReproError(f"geomean needs positive values, got {vals}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize(cycles: Dict[str, int], baseline: str) -> Dict[str, float]:
    """Speedups of every entry relative to ``baseline`` (higher = faster)."""
    if baseline not in cycles:
        raise ReproError(f"baseline {baseline!r} missing from {cycles}")
    base = cycles[baseline]
    return {name: base / value for name, value in cycles.items()}
