"""Exception hierarchy for the Marionette reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-types are grouped by
subsystem: IR construction, compilation/mapping, simulation, and network
routing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IRError(ReproError):
    """Malformed IR: invalid CDFG structure, bad operands, type misuse."""


class BuilderError(IRError):
    """Misuse of the :class:`~repro.ir.builder.KernelBuilder` DSL."""


class InterpreterError(ReproError):
    """Functional interpretation failed (bad memory access, no terminator)."""


class CompilationError(ReproError):
    """Mapping / scheduling / configuration generation failed."""


class PlacementError(CompilationError):
    """A DFG could not be placed onto the PE grid."""


class RoutingError(CompilationError):
    """A data or control edge could not be routed."""


class EncodingError(ReproError):
    """ISA encoding or decoding failed."""


class SimulationError(ReproError):
    """The micro-architectural simulator hit an inconsistent state."""


class NetworkError(ReproError):
    """Control/data network construction or routing failed."""


class ConfigurationError(ReproError):
    """Invalid architecture parameters."""


class EngineError(ReproError):
    """The experiment engine failed: a worker crashed mid-stream, or a
    shard export is malformed / inconsistent with its merge partners."""


class DistributedError(EngineError):
    """The distributed execution subsystem failed: a cache server or
    coordinator is unreachable, speaks a different engine version, a
    dispatched job was rejected, or a remote worker reported a failure."""


class DistributedUnavailable(DistributedError):
    """A *transport-level* distributed failure: the server could not be
    reached at all (connection refused, timeout, it vanished
    mid-request, or it answered with bytes that are not JSON).  Unlike
    its parent — which also covers protocol-level rejections such as
    "unknown job" that retrying can never fix — this condition is
    plausibly transient, so workers and dispatch clients may retry with
    backoff instead of dying on the first server restart."""
