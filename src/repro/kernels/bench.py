"""The ``repro bench --kernels DIR`` report section.

External kernels enter the evaluation as ordinary :class:`RunSpec`
batches — workload token ``kernel:<name>@<fingerprint>``, the package's
scale hint, the bench seed — so the engine's caching, sharding,
streaming, and dispatch all apply unchanged.  This module enumerates
those specs (:func:`kernel_specs`) and assembles the extra
:class:`~repro.experiments.common.ExperimentResult` section
(:func:`run_section`) the report appends after the paper's figures.

Each package is priced on a representative model ladder (von Neumann
-> dataflow -> RipTide -> Marionette -> ideal), one row per
(kernel, model), with the speedup column normalized to the von Neumann
baseline — the same normalization Fig. 11 uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine.spec import ModelSpec, RunSpec
from repro.experiments.common import ExperimentResult
from repro.kernels.package import KernelPackage
from repro.kernels.registry import register

#: The model ladder every external kernel is priced on.
KERNEL_BENCH_MODELS = (
    ModelSpec.make("von_neumann"),
    ModelSpec.make("dataflow"),
    ModelSpec.make("riptide"),
    ModelSpec.make("marionette"),
    ModelSpec.make("ideal"),
)


def kernel_specs(packages: Sequence[KernelPackage], seed: int = 0,
                 params: ArchParams = DEFAULT_PARAMS) -> List[RunSpec]:
    """Every (kernel, model) spec, in suite order then ladder order.

    Registers each package in the process-wide registry as a side
    effect, so the returned specs are immediately executable (and
    dispatchable — ``to_payload`` reads the registry).
    """
    specs = []
    for package in packages:
        token = register(package)
        for model in KERNEL_BENCH_MODELS:
            specs.append(RunSpec(
                workload=token, scale=package.scale_hint, seed=seed,
                model=model, params=params,
            ))
    return specs


def run_section(packages: Sequence[KernelPackage], seed: int = 0,
                params: ArchParams = DEFAULT_PARAMS,
                engine=None) -> ExperimentResult:
    """The external-kernels report section (one row per kernel-model)."""
    from repro.engine.executor import default_engine

    engine = engine or default_engine()
    specs = kernel_specs(packages, seed, params)
    results = engine.execute(specs)
    by_spec: Dict[RunSpec, int] = {
        run.spec: run.cycles for run in results
    }
    rows = []
    for package in packages:
        token = package.workload_token()
        baseline: Optional[int] = None
        for model in KERNEL_BENCH_MODELS:
            spec = RunSpec(workload=token, scale=package.scale_hint,
                           seed=seed, model=model, params=params)
            cycles = by_spec[spec]
            if baseline is None:
                baseline = cycles
            rows.append({
                "kernel": package.name,
                "fingerprint": package.fingerprint()[:12],
                "model": model.model,
                "cycles": cycles,
                "speedup": baseline / cycles,
            })
    return ExperimentResult(
        experiment="kernels",
        title="external kernel packages",
        columns=["kernel", "fingerprint", "model", "cycles", "speedup"],
        rows=rows,
        notes=[f"{len(packages)} package(s); speedup normalized to "
               f"von_neumann, as in fig11"],
    )
