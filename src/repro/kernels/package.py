"""On-disk kernel packages: bring-your-own workloads for the toolkit.

Every workload the evaluation ships is a hand-built Python module under
``repro.workloads``; a *kernel package* is the external counterpart — a
directory a user authors (or ``repro kernel init`` scaffolds) that the
toolkit ingests without any code change:

    mykernel/
      kernel.json          # the manifest (schema "repro-kernel", v1)
      instructions.csv     # the loop-body instruction matrix
      memory/x.csv         # one initial region image per array
      memory/y.csv
      expected/y.csv       # optional: expected final output images

The manifest names the kernel, binds its single counted loop
(``var``/``start``/``stop``/``step``), declares scalar parameters,
loop-carried state variables, and every scratchpad array (shape, dtype,
role), and sets the float tolerance.  The program — a three-address
instruction matrix over those symbols — lives either in the manifest's
``program`` key or in ``instructions.csv`` (one row per instruction,
``dest,op,a,b,c``); both sources canonicalise to the same document, so
where the rows live never changes the kernel's identity.

Laws the format keeps (locked by ``tests/test_kernels.py``):

* **round trip** — ``from_document(pkg.to_document())`` reproduces an
  equal package (same fingerprint);
* **one-line diagnostics** — unknown keys, version skew, torn
  JSON/CSV, shape or dtype mismatches all raise a single-line
  :class:`~repro.errors.ConfigurationError` naming the offending file,
  in the same style as :mod:`repro.arch.spec`;
* **identity** — :meth:`KernelPackage.fingerprint` is the SHA-256 of
  the canonical document *including every memory image*, so editing a
  single CSV cell lands the kernel on a different content address
  (cache identity, shard coordinate, and wire identity all follow).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Format marker carried by every kernel package manifest.
KERNEL_SCHEMA = "repro-kernel"

#: Bump when the package shape changes incompatibly.
KERNEL_SCHEMA_VERSION = 1

MANIFEST_NAME = "kernel.json"
INSTRUCTIONS_NAME = "instructions.csv"
MEMORY_DIR = "memory"
EXPECTED_DIR = "expected"

#: ``RunSpec.workload`` prefix that marks an external kernel token.
KERNEL_TOKEN_PREFIX = "kernel:"

#: Array element types a package may declare.
DTYPES: Dict[str, np.dtype] = {
    "int32": np.dtype(np.int32),
    "int64": np.dtype(np.int64),
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

#: Array roles: inputs need an initial image, outputs are verified.
ROLES = ("input", "output", "inout", "scratch")

#: Roles whose final image a verdict compares against expected outputs.
OUTPUT_ROLES = ("output", "inout")

#: Program opcodes by arity (plus ``load``/``store``, handled apart).
BINARY_OPS = ("add", "sub", "mul", "div", "mod", "min", "max", "and",
              "or", "xor", "shl", "shr", "lt", "le", "gt", "ge", "eq",
              "ne")
UNARY_OPS = ("neg", "not", "abs", "log", "exp", "sqrt", "sigmoid",
             "sin", "cos")
TERNARY_OPS = ("select",)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]{0,63}$")
_SYMBOL_RE = re.compile(r"^[a-z_][a-z0-9_]*$")
_INT_RE = re.compile(r"^[+-]?[0-9]+$")

_REQUIRED_KEYS = ("schema", "version", "name", "loop", "arrays")
_OPTIONAL_KEYS = ("description", "params", "state", "atol",
                  "scale_hint", "program")
#: Keys only the *document* (wire/canonical) form carries on top of the
#: manifest: the program is mandatory there, and the region images ride
#: inline instead of in CSV files.
_DOCUMENT_ONLY_KEYS = ("memory", "expected")

_SCALE_HINTS = ("tiny", "small", "paper")


def _check(condition: bool, source: str, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"{source}: {message}")


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class ArrayDecl:
    """One declared scratchpad array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    role: str = "input"

    @property
    def length(self) -> int:
        length = 1
        for dim in self.shape:
            length *= dim
        return length

    def to_entry(self) -> Dict[str, object]:
        return {"name": self.name, "shape": list(self.shape),
                "dtype": self.dtype, "role": self.role}


@dataclass(frozen=True)
class LoopBinding:
    """The kernel's single counted loop: ``for var in range(...)``."""

    var: str
    start: object   # int literal or parameter name
    stop: object    # int literal or parameter name
    step: int = 1

    def to_entry(self) -> Dict[str, object]:
        return {"var": self.var, "start": self.start,
                "stop": self.stop, "step": self.step}


def _json_values(decl: ArrayDecl, values: np.ndarray) -> List[object]:
    if decl.dtype.startswith("int"):
        return [int(v) for v in values]
    return [float(v) for v in values]


@dataclass
class KernelPackage:
    """One validated external kernel: manifest + program + images.

    Everything here is already schema-checked — construction goes
    through :func:`from_document` (wire/canonical form) or
    :func:`load_kernel` (on-disk form), never raw ``__init__`` from
    user input.
    """

    name: str
    loop: LoopBinding
    arrays: Tuple[ArrayDecl, ...]
    program: Tuple[Tuple[str, ...], ...]
    params: Dict[str, int] = field(default_factory=dict)
    state: Dict[str, float] = field(default_factory=dict)
    memory: Dict[str, np.ndarray] = field(default_factory=dict)
    expected: Dict[str, np.ndarray] = field(default_factory=dict)
    atol: float = 0.0
    description: str = ""
    scale_hint: str = "small"

    # -- identity ------------------------------------------------------
    def to_document(self) -> Dict[str, object]:
        """The canonical JSON-safe form (manifest + program + images).

        This is both the wire form (dispatched specs ship it to remote
        workers) and the fingerprint input, so it spells out every
        input the kernel's behaviour depends on — including the full
        initial memory images and any declared expected outputs.
        """
        document: Dict[str, object] = {
            "schema": KERNEL_SCHEMA,
            "version": KERNEL_SCHEMA_VERSION,
            "name": self.name,
            "loop": self.loop.to_entry(),
            "params": {k: self.params[k] for k in sorted(self.params)},
            "state": {k: self.state[k] for k in sorted(self.state)},
            "atol": float(self.atol),
            "scale_hint": self.scale_hint,
            "arrays": [decl.to_entry() for decl in self.arrays],
            "program": [list(row) for row in self.program],
            "memory": {
                decl.name: _json_values(decl, self.memory[decl.name])
                for decl in self.arrays
            },
            "expected": {
                name: _json_values(self._decl(name), self.expected[name])
                for name in sorted(self.expected)
            },
        }
        if self.description:
            document["description"] = self.description
        return document

    def fingerprint(self) -> str:
        """SHA-256 content address of the canonical document."""
        canonical = json.dumps(self.to_document(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def workload_token(self) -> str:
        """The ``RunSpec.workload`` name of this kernel.

        Carries the full content fingerprint, so the kernel's identity
        rides into every cache key, shard coordinate, and dispatch
        payload through the existing spec plumbing.
        """
        return f"{KERNEL_TOKEN_PREFIX}{self.name}@{self.fingerprint()}"

    # -- declarations --------------------------------------------------
    def _decl(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(name)  # pragma: no cover - guarded by validation

    @property
    def output_arrays(self) -> Tuple[ArrayDecl, ...]:
        return tuple(d for d in self.arrays if d.role in OUTPUT_ROLES)

    def array_lengths(self) -> Dict[str, int]:
        return {decl.name: decl.length for decl in self.arrays}

    # -- CDFG construction ---------------------------------------------
    def build_cdfg(self):
        """Construct the kernel's CDFG through the builder DSL.

        The program matrix is three-address code over the loop
        variable, parameters, state variables, and temporaries; this
        replays it row by row inside one counted loop, which is exactly
        the kernel class the configuration generator maps onto the
        array simulator.
        """
        from repro.ir.builder import KernelBuilder, Value

        k = KernelBuilder(self.name)
        param_values = {name: k.param(name) for name in sorted(self.params)}
        for decl in self.arrays:
            k.array(decl.name)
        for var in sorted(self.state):
            k.set(var, self.state[var])

        def bound(spec: object):
            return param_values[spec] if isinstance(spec, str) else spec

        env: Dict[str, Value] = {}

        def operand(token: str):
            if _INT_RE.match(token):
                return int(token)
            if not _SYMBOL_RE.match(token):
                return float(token)
            if token == self.loop.var or token in self.state:
                return k.get(token)
            if token in self.params:
                return param_values[token]
            return env[token]

        def as_value(token: str) -> Value:
            value = operand(token)
            if isinstance(value, Value):
                return value
            return k.const(value)

        with k.loop(self.loop.var, bound(self.loop.start),
                    bound(self.loop.stop), self.loop.step):
            for dest, op, *args in self.program:
                if op == "load":
                    result = k.load(args[0], operand(args[1]))
                elif op == "store":
                    k.store(args[0], operand(args[1]), operand(args[2]))
                    continue
                elif op in BINARY_OPS:
                    a, b = as_value(args[0]), operand(args[1])
                    result = _BINARY_BUILD[op](k, a, b)
                elif op in UNARY_OPS:
                    result = _UNARY_BUILD[op](k, as_value(args[0]))
                else:  # select — the only ternary op
                    result = k.select(operand(args[0]), operand(args[1]),
                                      operand(args[2]))
                if dest in self.state:
                    k.set(dest, result)
                else:
                    env[dest] = result
        return k.build()


_BINARY_BUILD = {
    "add": lambda k, a, b: a + b, "sub": lambda k, a, b: a - b,
    "mul": lambda k, a, b: a * b, "div": lambda k, a, b: a / b,
    "mod": lambda k, a, b: a % b,
    "min": lambda k, a, b: k.minimum(a, b),
    "max": lambda k, a, b: k.maximum(a, b),
    "and": lambda k, a, b: a & b, "or": lambda k, a, b: a | b,
    "xor": lambda k, a, b: a ^ b, "shl": lambda k, a, b: a << b,
    "shr": lambda k, a, b: a >> b, "lt": lambda k, a, b: a < b,
    "le": lambda k, a, b: a <= b, "gt": lambda k, a, b: a > b,
    "ge": lambda k, a, b: a >= b, "eq": lambda k, a, b: a.eq(b),
    "ne": lambda k, a, b: a.ne(b),
}

_UNARY_BUILD = {
    "neg": lambda k, a: -a, "not": lambda k, a: ~a,
    "abs": lambda k, a: k.absolute(a), "log": lambda k, a: k.log(a),
    "exp": lambda k, a: k.exp(a), "sqrt": lambda k, a: k.sqrt(a),
    "sigmoid": lambda k, a: k.sigmoid(a), "sin": lambda k, a: k.sin(a),
    "cos": lambda k, a: k.cos(a),
}


# ----------------------------------------------------------------------
# Validation (shared by the on-disk loader and the wire form)
# ----------------------------------------------------------------------
def _validate_loop(entry: object, params: Mapping[str, int],
                   source: str) -> LoopBinding:
    _check(isinstance(entry, dict), source, "loop must be a JSON object")
    unknown = sorted(set(entry) - {"var", "start", "stop", "step"})
    _check(not unknown, source, f"unknown loop key(s) {unknown}")
    _check("var" in entry and "stop" in entry, source,
           "loop needs at least 'var' and 'stop'")
    var = entry["var"]
    _check(isinstance(var, str) and _SYMBOL_RE.match(var or ""), source,
           f"loop.var {var!r} is not an identifier")
    start = entry.get("start", 0)
    stop = entry["stop"]
    for key, value in (("start", start), ("stop", stop)):
        if isinstance(value, str):
            _check(value in params, source,
                   f"loop.{key} names unknown parameter {value!r} "
                   f"(declared: {sorted(params)})")
        else:
            _check(_is_int(value), source,
                   f"loop.{key} must be an integer or a parameter name, "
                   f"got {value!r}")
    step = entry.get("step", 1)
    _check(_is_int(step) and step > 0, source,
           f"loop.step must be a positive integer, got {step!r}")
    return LoopBinding(var=var, start=start, stop=stop, step=step)


def _validate_arrays(entries: object, source: str) -> Tuple[ArrayDecl, ...]:
    _check(isinstance(entries, list) and entries, source,
           "arrays must be a non-empty list of declarations")
    declared: List[ArrayDecl] = []
    seen = set()
    for index, entry in enumerate(entries):
        where = f"arrays[{index}]"
        _check(isinstance(entry, dict), source,
               f"{where} must be a JSON object")
        unknown = sorted(set(entry) - {"name", "shape", "dtype", "role"})
        _check(not unknown, source, f"{where}: unknown key(s) {unknown}")
        missing = sorted({"name", "shape", "dtype"} - set(entry))
        _check(not missing, source, f"{where}: missing key(s) {missing}")
        name = entry["name"]
        _check(isinstance(name, str) and _SYMBOL_RE.match(name or ""),
               source, f"{where}: array name {name!r} is not an identifier")
        _check(name not in seen, source,
               f"array {name!r} declared twice")
        seen.add(name)
        shape = entry["shape"]
        _check(isinstance(shape, list) and shape
               and all(_is_int(d) and d > 0 for d in shape), source,
               f"array {name!r}: shape must be a list of positive "
               f"integers, got {shape!r}")
        dtype = entry["dtype"]
        _check(dtype in DTYPES, source,
               f"array {name!r}: dtype {dtype!r} unknown; "
               f"pick one of {sorted(DTYPES)}")
        role = entry.get("role", "input")
        _check(role in ROLES, source,
               f"array {name!r}: role {role!r} unknown; "
               f"pick one of {ROLES}")
        declared.append(ArrayDecl(name=name, shape=tuple(shape),
                                  dtype=dtype, role=role))
    return tuple(declared)


def _validate_program(rows: object, loop: LoopBinding,
                      params: Mapping[str, int],
                      state: Mapping[str, float],
                      arrays: Sequence[ArrayDecl],
                      source: str) -> Tuple[Tuple[str, ...], ...]:
    _check(isinstance(rows, list) and rows, source,
           "program must be a non-empty list of instruction rows")
    array_names = {decl.name for decl in arrays}
    reserved = ({loop.var} | set(params) | array_names)
    defined = set(state)
    out: List[Tuple[str, ...]] = []
    stores = 0

    def check_operand(row_no: int, token: object, what: str) -> str:
        _check(isinstance(token, str) and token.strip() != "", source,
               f"program row {row_no}: missing {what}")
        token = token.strip()
        if _INT_RE.match(token):
            return token
        if _SYMBOL_RE.match(token):
            known = (token == loop.var or token in params
                     or token in defined)
            _check(known, source,
                   f"program row {row_no}: {what} {token!r} is not the "
                   f"loop variable, a parameter, a state variable, or a "
                   f"previously defined temporary")
            return token
        try:
            float(token)
        except ValueError:
            raise ConfigurationError(
                f"{source}: program row {row_no}: {what} {token!r} is "
                f"not a number or an identifier"
            ) from None
        return token

    for row_no, row in enumerate(rows, 1):
        _check(isinstance(row, list)
               and all(isinstance(cell, str) for cell in row), source,
               f"program row {row_no} must be a list of strings")
        cells = [cell.strip() for cell in row]
        while len(cells) < 2:
            cells.append("")
        dest, op, args = cells[0], cells[1], [c for c in cells[2:] if c]
        known_ops = (("load", "store") + BINARY_OPS + UNARY_OPS
                     + TERNARY_OPS)
        _check(op in known_ops, source,
               f"program row {row_no}: unknown op {op!r}")
        if op == "load":
            _check(len(args) == 2, source,
                   f"program row {row_no}: load takes (array, index), "
                   f"got {len(args)} operand(s)")
            _check(args[0] in array_names, source,
                   f"program row {row_no}: load from undeclared array "
                   f"{args[0]!r}")
            args[1] = check_operand(row_no, args[1], "index")
        elif op == "store":
            _check(not dest, source,
                   f"program row {row_no}: store takes no destination")
            _check(len(args) == 3, source,
                   f"program row {row_no}: store takes (array, index, "
                   f"value), got {len(args)} operand(s)")
            _check(args[0] in array_names, source,
                   f"program row {row_no}: store to undeclared array "
                   f"{args[0]!r}")
            args[1] = check_operand(row_no, args[1], "index")
            args[2] = check_operand(row_no, args[2], "value")
            stores += 1
            out.append(("", op, *args))
            continue
        else:
            arity = (2 if op in BINARY_OPS
                     else 1 if op in UNARY_OPS else 3)
            _check(len(args) == arity, source,
                   f"program row {row_no}: {op} takes {arity} "
                   f"operand(s), got {len(args)}")
            args = [check_operand(row_no, a, f"operand {i + 1}")
                    for i, a in enumerate(args)]
        # Every non-store row produces a value.
        _check(_SYMBOL_RE.match(dest or "") is not None, source,
               f"program row {row_no}: {op} needs an identifier "
               f"destination, got {dest!r}")
        _check(dest not in reserved, source,
               f"program row {row_no}: destination {dest!r} collides "
               f"with the loop variable, a parameter, or an array")
        _check(dest in state or dest not in defined, source,
               f"program row {row_no}: temporary {dest!r} assigned twice")
        defined.add(dest)
        out.append((dest, op, *args))
    _check(stores > 0, source,
           "program never stores to any array — the kernel would have "
           "no observable output")
    return tuple(out)


def _validate_image(decl: ArrayDecl, values: object, source: str,
                    *, expected: bool = False) -> np.ndarray:
    kind = "expected output" if expected else "memory image"
    _check(isinstance(values, list) and values, source,
           f"array {decl.name!r}: {kind} must be a non-empty list")
    _check(all(_is_number(v) for v in values), source,
           f"array {decl.name!r}: {kind} holds non-numeric values")
    if expected:
        _check(len(values) <= decl.length, source,
               f"array {decl.name!r}: expected output holds "
               f"{len(values)} values, more than the declared "
               f"{decl.length}")
    else:
        _check(len(values) == decl.length, source,
               f"array {decl.name!r}: {kind} holds {len(values)} "
               f"values, declared shape {list(decl.shape)} needs "
               f"{decl.length}")
    if decl.dtype.startswith("int"):
        _check(all(float(v).is_integer() for v in values), source,
               f"array {decl.name!r}: {kind} holds non-integral values "
               f"for dtype {decl.dtype}")
    return np.asarray(values, dtype=DTYPES[decl.dtype])


def validate_manifest(document: object,
                      source: str = "<kernel manifest>"
                      ) -> Dict[str, object]:
    """Schema-check the manifest part of a package document.

    Shared by :func:`load_kernel` (reading ``kernel.json``) and
    :func:`from_document` (the wire/canonical form, which additionally
    carries ``memory``/``expected`` images and always a ``program``).
    """
    _check(isinstance(document, dict), source,
           "kernel manifest must be a JSON object")
    _check(document.get("schema") == KERNEL_SCHEMA, source,
           f"not a kernel package manifest (schema "
           f"{document.get('schema')!r}, expected {KERNEL_SCHEMA!r})")
    version = document.get("version")
    _check(version == KERNEL_SCHEMA_VERSION, source,
           f"schema version {version!r} not supported "
           f"(this build reads version {KERNEL_SCHEMA_VERSION})")
    known = (set(_REQUIRED_KEYS) | set(_OPTIONAL_KEYS)
             | set(_DOCUMENT_ONLY_KEYS))
    unknown = sorted(set(document) - known)
    _check(not unknown, source,
           f"unknown key(s) {unknown} (known: {sorted(known)})")
    missing = sorted(set(_REQUIRED_KEYS) - set(document))
    _check(not missing, source, f"missing required key(s) {missing}")
    name = document["name"]
    _check(isinstance(name, str) and _NAME_RE.match(name or ""), source,
           f"name {name!r} must match {_NAME_RE.pattern}")
    _check(isinstance(document.get("description", ""), str), source,
           "description must be a string")
    scale_hint = document.get("scale_hint", "small")
    _check(scale_hint in _SCALE_HINTS, source,
           f"scale_hint {scale_hint!r} unknown; "
           f"pick one of {_SCALE_HINTS}")
    atol = document.get("atol", 0.0)
    _check(_is_number(atol) and atol >= 0, source,
           f"atol must be a non-negative number, got {atol!r}")
    params = document.get("params", {})
    _check(isinstance(params, dict), source,
           "params must be a JSON object of integer bindings")
    for key, value in params.items():
        _check(isinstance(key, str) and _SYMBOL_RE.match(key or ""),
               source, f"parameter name {key!r} is not an identifier")
        _check(_is_int(value), source,
               f"params.{key} must be an integer, got {value!r}")
    state = document.get("state", {})
    _check(isinstance(state, dict), source,
           "state must be a JSON object of initial values")
    for key, value in state.items():
        _check(isinstance(key, str) and _SYMBOL_RE.match(key or ""),
               source, f"state name {key!r} is not an identifier")
        _check(key not in params, source,
               f"state variable {key!r} collides with a parameter")
        _check(_is_number(value), source,
               f"state.{key} must be a number, got {value!r}")
    arrays = _validate_arrays(document["arrays"], source)
    loop = _validate_loop(document["loop"], params, source)
    _check(loop.var not in params and loop.var not in state, source,
           f"loop variable {loop.var!r} collides with a parameter or "
           f"state variable")
    clashes = sorted({d.name for d in arrays}
                     & (set(params) | set(state) | {loop.var}))
    _check(not clashes, source,
           f"array name(s) {clashes} collide with scalar symbols")
    return document


def from_document(document: object,
                  source: str = "<kernel package>") -> KernelPackage:
    """Build a validated :class:`KernelPackage` from its document form."""
    document = validate_manifest(document, source)
    params = dict(document.get("params", {}))
    state = {k: v for k, v in document.get("state", {}).items()}
    arrays = _validate_arrays(document["arrays"], source)
    loop = _validate_loop(document["loop"], params, source)
    _check("program" in document, source,
           "document carries no program (manifest 'program' key or "
           "instructions.csv rows)")
    program = _validate_program(document["program"], loop, params, state,
                                arrays, source)
    by_name = {decl.name: decl for decl in arrays}
    raw_memory = document.get("memory", {})
    _check(isinstance(raw_memory, dict), source,
           "memory must be a JSON object of array images")
    unknown = sorted(set(raw_memory) - set(by_name))
    _check(not unknown, source,
           f"memory image(s) for undeclared array(s) {unknown}")
    memory: Dict[str, np.ndarray] = {}
    for decl in arrays:
        if decl.name in raw_memory:
            memory[decl.name] = _validate_image(
                decl, raw_memory[decl.name], source
            )
        else:
            _check(decl.role not in ("input", "inout"), source,
                   f"array {decl.name!r} has role {decl.role!r} but no "
                   f"initial memory image "
                   f"({MEMORY_DIR}/{decl.name}.csv)")
            memory[decl.name] = np.zeros(decl.length,
                                         dtype=DTYPES[decl.dtype])
    raw_expected = document.get("expected", {})
    _check(isinstance(raw_expected, dict), source,
           "expected must be a JSON object of output images")
    expected: Dict[str, np.ndarray] = {}
    for name, values in raw_expected.items():
        _check(name in by_name, source,
               f"expected output for undeclared array {name!r}")
        decl = by_name[name]
        _check(decl.role in OUTPUT_ROLES, source,
               f"expected output for array {name!r}, whose role "
               f"{decl.role!r} is not one of {OUTPUT_ROLES}")
        expected[name] = _validate_image(decl, values, source,
                                         expected=True)
    return KernelPackage(
        name=document["name"],
        loop=loop,
        arrays=arrays,
        program=program,
        params=params,
        state=state,
        memory=memory,
        expected=expected,
        atol=float(document.get("atol", 0.0)),
        description=document.get("description", ""),
        scale_hint=document.get("scale_hint", "small"),
    )


# ----------------------------------------------------------------------
# On-disk loading
# ----------------------------------------------------------------------
def _read_csv_values(path: Path) -> List[object]:
    """Parse one region CSV: numbers separated by commas/newlines.

    Blank cells and ``#`` comment lines are skipped; any other
    non-numeric cell is a one-line diagnostic naming file and line.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(
            f"cannot read {path}: {error}"
        ) from error
    values: List[object] = []
    for line_no, line in enumerate(text.splitlines(), 1):
        if line.strip().startswith("#"):
            continue
        for cell in line.split(","):
            cell = cell.strip()
            if not cell:
                continue
            if _INT_RE.match(cell):
                values.append(int(cell))
                continue
            try:
                values.append(float(cell))
            except ValueError:
                raise ConfigurationError(
                    f"{path}: line {line_no}: {cell!r} is not a number"
                ) from None
    return values


def _read_instruction_rows(path: Path) -> List[List[str]]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(
            f"cannot read {path}: {error}"
        ) from error
    rows: List[List[str]] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        cells = [cell.strip() for cell in line.split(",")]
        while cells and not cells[-1]:
            cells.pop()
        if cells:
            rows.append(cells)
    return rows


def is_kernel_dir(path) -> bool:
    """True when ``path`` holds a kernel package manifest."""
    return (Path(path) / MANIFEST_NAME).is_file()


def _region_files(directory: Path) -> Dict[str, Path]:
    if not directory.is_dir():
        return {}
    return {p.stem: p for p in sorted(directory.iterdir())
            if p.suffix == ".csv" and p.is_file()}


def load_kernel(path) -> KernelPackage:
    """Load one kernel package directory (the ``repro run`` entry point)."""
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not root.is_dir():
        raise ConfigurationError(
            f"kernel package {root} does not exist or is not a directory"
        )
    if not manifest_path.is_file():
        nested = [p.parent.name for p in sorted(root.glob(f"*/{MANIFEST_NAME}"))]
        hint = (f" — it holds kernel package(s) {nested}; pass one of "
                f"them, or the whole directory to 'repro bench "
                f"--kernels'" if nested else "")
        raise ConfigurationError(
            f"{root} is not a kernel package (no {MANIFEST_NAME}){hint}"
        )
    try:
        text = manifest_path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(
            f"cannot read kernel manifest {manifest_path}: {error}"
        ) from error
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"{manifest_path}: invalid kernel manifest JSON ({error})"
        ) from error
    source = str(manifest_path)
    manifest = validate_manifest(manifest, source)
    for key in _DOCUMENT_ONLY_KEYS:
        _check(key not in manifest, source,
               f"{key!r} images live in {MEMORY_DIR}/*.csv files, not "
               f"in the manifest")

    instructions_path = root / INSTRUCTIONS_NAME
    if "program" in manifest:
        _check(not instructions_path.is_file(), source,
               f"program rows in both the manifest and "
               f"{INSTRUCTIONS_NAME} — keep exactly one source")
        document = dict(manifest)
    else:
        _check(instructions_path.is_file(), source,
               f"no program: add a 'program' key or an "
               f"{INSTRUCTIONS_NAME} next to the manifest")
        document = dict(manifest)
        document["program"] = _read_instruction_rows(instructions_path)
        _check(bool(document["program"]), str(instructions_path),
               "holds no instruction rows")

    declared = {entry["name"] for entry in manifest["arrays"]}
    memory_files = _region_files(root / MEMORY_DIR)
    unknown = sorted(set(memory_files) - declared)
    _check(not unknown, source,
           f"{MEMORY_DIR}/ holds image(s) for undeclared array(s) "
           f"{unknown}")
    document["memory"] = {
        name: _read_csv_values(memory_files[name])
        for name in sorted(memory_files)
    }
    expected_files = _region_files(root / EXPECTED_DIR)
    unknown = sorted(set(expected_files) - declared)
    _check(not unknown, source,
           f"{EXPECTED_DIR}/ holds image(s) for undeclared array(s) "
           f"{unknown}")
    document["expected"] = {
        name: _read_csv_values(expected_files[name])
        for name in sorted(expected_files)
    }
    return from_document(document, source)


def load_kernel_suite(path) -> List[Tuple[Path, KernelPackage]]:
    """Load a directory of kernel packages (``--kernels DIR``).

    ``path`` may be a single package (one entry) or a directory whose
    immediate subdirectories are packages; subdirectory-name order is
    the suite's deterministic section/row order.  Duplicate kernel
    names are rejected — report rows and cache identities must be
    distinguishable by name.
    """
    root = Path(path)
    if not root.is_dir():
        raise ConfigurationError(
            f"kernel directory {root} does not exist"
        )
    if is_kernel_dir(root):
        return [(root, load_kernel(root))]
    members = sorted(p for p in root.iterdir()
                     if p.is_dir() and is_kernel_dir(p))
    if not members:
        raise ConfigurationError(
            f"{root} holds no kernel packages (no {MANIFEST_NAME}, and "
            f"no subdirectory with one)"
        )
    entries = [(member, load_kernel(member)) for member in members]
    seen: Dict[str, Path] = {}
    for member, package in entries:
        if package.name in seen:
            raise ConfigurationError(
                f"kernel suite: {member} and {seen[package.name]} both "
                f"name the kernel {package.name!r} — kernel names must "
                f"be unique within a suite"
            )
        seen[package.name] = member
    return entries


# ----------------------------------------------------------------------
# On-disk writing (repro kernel init, the workload exporter)
# ----------------------------------------------------------------------
def _format_value(decl: ArrayDecl, value: object) -> str:
    if decl.dtype.startswith("int"):
        return str(int(value))
    return repr(float(value))


def dump_manifest(package: KernelPackage, *,
                  program_in_manifest: bool = False) -> str:
    """The canonical serialized ``kernel.json`` (stable across dumps)."""
    document = package.to_document()
    for key in _DOCUMENT_ONLY_KEYS:
        document.pop(key, None)
    if not program_in_manifest:
        document.pop("program")
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def save_kernel(package: KernelPackage, path, *,
                program_in_manifest: bool = False) -> Path:
    """Write a package out in canonical on-disk form.

    ``load_kernel(save_kernel(pkg, d))`` reproduces the fingerprint
    exactly; the instruction matrix goes to ``instructions.csv`` unless
    ``program_in_manifest`` keeps it inline.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    (root / MANIFEST_NAME).write_text(
        dump_manifest(package, program_in_manifest=program_in_manifest),
        encoding="utf-8",
    )
    if not program_in_manifest:
        rows = "\n".join(",".join(row) for row in package.program)
        (root / INSTRUCTIONS_NAME).write_text(
            "# dest,op,a,b,c\n" + rows + "\n", encoding="utf-8"
        )
    memory_dir = root / MEMORY_DIR
    memory_dir.mkdir(exist_ok=True)
    for decl in package.arrays:
        values = package.memory[decl.name]
        (memory_dir / f"{decl.name}.csv").write_text(
            "\n".join(_format_value(decl, v) for v in values) + "\n",
            encoding="utf-8",
        )
    if package.expected:
        expected_dir = root / EXPECTED_DIR
        expected_dir.mkdir(exist_ok=True)
        for name in sorted(package.expected):
            decl = package._decl(name)
            values = package.expected[name]
            (expected_dir / f"{name}.csv").write_text(
                "\n".join(_format_value(decl, v) for v in values) + "\n",
                encoding="utf-8",
            )
    return root
