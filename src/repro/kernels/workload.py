"""The workload adapter: a kernel package as a first-class Workload.

:class:`KernelWorkload` plugs an ingested package into the exact
framework the 13 built-in benchmarks use — ``instance()`` returns a
real :class:`~repro.workloads.base.WorkloadInstance` (CDFG + memory +
params + expected outputs), so the engine's trace computation,
reference checking, caching, and every execution model see nothing
unusual.  Two deliberate differences from the built-ins:

* inputs are the package's committed memory images, not seeded random
  draws — ``scale`` and ``seed`` do not change an external kernel's
  data (the content fingerprint already pins it);
* when the package declares no expected outputs, the reference is
  computed by the functional interpreter, making the instance
  self-consistent (the simulators are still meaningfully verified
  against it — they share none of the interpreter's machinery).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.cdfg import CDFG
from repro.ir.interp import Interpreter
from repro.kernels.package import KernelPackage
from repro.workloads.base import EXTERNAL, Workload


class KernelWorkload(Workload):
    """One external kernel package behind the Workload interface."""

    group = EXTERNAL

    def __init__(self, package: KernelPackage) -> None:
        self.package = package
        # The token (name@fingerprint) is the registry short name, so
        # RunSpec.workload — and through it every cache key, shard
        # coordinate, and wire payload — carries the content identity.
        self.short = package.workload_token()
        self.name = package.name
        self.paper_size = package.scale_hint
        self.atol = package.atol

    def sizes(self, scale: str) -> Dict[str, int]:
        # Package data is fixed; every scale maps to the same kernel.
        return {}

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        return self.package.build_cdfg()

    def inputs(self, sizes: Mapping[str, int],
               rng: np.random.Generator
               ) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        memory = {name: values.copy()
                  for name, values in self.package.memory.items()}
        return memory, dict(self.package.params)

    def reference(self, sizes: Mapping[str, int],
                  memory: Mapping[str, np.ndarray],
                  params: Mapping[str, int]) -> Dict[str, np.ndarray]:
        if self.package.expected:
            return {name: values.copy()
                    for name, values in self.package.expected.items()}
        result = Interpreter(self.build(sizes)).run(
            {name: np.asarray(values).copy()
             for name, values in memory.items()},
            dict(params),
        )
        return {decl.name: result.array(decl.name).copy()
                for decl in self.package.output_arrays}
