"""External kernel ingestion: on-disk kernel packages (`repro-kernel` v1).

A kernel package is a directory a user authors — ``kernel.json``
manifest, ``instructions.csv`` (or an inline ``program``), and
``memory/``/``expected/`` region CSVs — that the toolkit runs like any
built-in workload: ``repro run DIR`` simulates it cycle-accurately,
``repro kernel validate|init`` support authoring, and ``repro bench
--kernels DIR`` prices a whole suite through the engine (caching,
sharding, streaming, and dispatch included).  docs/KERNELS.md is the
format specification and walkthrough.
"""

from repro.kernels.package import (
    DTYPES,
    KERNEL_SCHEMA,
    KERNEL_SCHEMA_VERSION,
    KERNEL_TOKEN_PREFIX,
    ArrayDecl,
    KernelPackage,
    LoopBinding,
    dump_manifest,
    from_document,
    is_kernel_dir,
    load_kernel,
    load_kernel_suite,
    save_kernel,
    validate_manifest,
)
from repro.kernels.export import package_from_workload
from repro.kernels.registry import (
    document_for,
    is_kernel_token,
    register,
    register_document,
    register_documents,
    resolve,
    resolve_workload,
)
from repro.kernels.runner import KernelRunReport, OutputVerdict, run_kernel
from repro.kernels.workload import KernelWorkload

__all__ = [
    "DTYPES",
    "KERNEL_SCHEMA",
    "KERNEL_SCHEMA_VERSION",
    "KERNEL_TOKEN_PREFIX",
    "ArrayDecl",
    "KernelPackage",
    "KernelRunReport",
    "KernelWorkload",
    "LoopBinding",
    "OutputVerdict",
    "document_for",
    "dump_manifest",
    "from_document",
    "is_kernel_dir",
    "is_kernel_token",
    "load_kernel",
    "load_kernel_suite",
    "package_from_workload",
    "register",
    "register_document",
    "register_documents",
    "resolve",
    "resolve_workload",
    "run_kernel",
    "save_kernel",
    "validate_manifest",
]
