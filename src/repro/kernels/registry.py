"""Process-wide registry of ingested kernel packages.

The engine names workloads by string (``RunSpec.workload``); external
kernels ride through it as ``kernel:<name>@<fingerprint>`` tokens, so
the whole cache/shard/dispatch stack treats them like any registry
workload — the fingerprint in the token *is* their cache identity.
This module is the token resolver: :func:`register` admits a validated
:class:`~repro.kernels.package.KernelPackage`,
:func:`resolve_workload` (called by
:func:`repro.workloads.get_workload`) turns a token back into a
runnable :class:`~repro.kernels.workload.KernelWorkload`.

Registration must reach every process that resolves tokens: the
executor ships registered documents to its pool workers (initializer
state), ``RunSpec.to_payload`` attaches them to dispatch wire payloads,
and the distributed worker registers them before computing — see
:meth:`~repro.engine.executor.Engine` and the coordinator's trace-task
construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.errors import ConfigurationError
from repro.kernels.package import (
    KERNEL_TOKEN_PREFIX,
    KernelPackage,
    from_document,
)

_PACKAGES: Dict[str, KernelPackage] = {}
_WORKLOADS: Dict[str, object] = {}


def register(package: KernelPackage) -> str:
    """Admit a package; returns its workload token (idempotent)."""
    token = package.workload_token()
    _PACKAGES.setdefault(token, package)
    return token


def register_document(document: Mapping[str, object],
                      source: str = "<kernel document>") -> str:
    """Validate + admit a package from its wire/canonical form."""
    return register(from_document(dict(document), source))


def register_documents(documents: Iterable[Mapping[str, object]]
                       ) -> List[str]:
    """Admit a batch (pool-worker initializers, shard-merge replays)."""
    return [register_document(document) for document in documents]


def resolve(token: str) -> KernelPackage:
    """The package behind one token; a precise error when unregistered."""
    package = _PACKAGES.get(token)
    if package is None:
        raise ConfigurationError(
            f"kernel token {token!r} is not registered in this process "
            f"— load its package (repro.kernels.load_kernel) before "
            f"building specs, or ship its document with the spec payload"
        )
    return package


def resolve_workload(token: str):
    """The runnable workload adapter behind one token (cached)."""
    if token not in _WORKLOADS:
        from repro.kernels.workload import KernelWorkload

        _WORKLOADS[token] = KernelWorkload(resolve(token))
    return _WORKLOADS[token]


def document_for(token: str) -> Dict[str, object]:
    """The canonical document to ship wherever the token travels."""
    return resolve(token).to_document()


def registered_tokens() -> List[str]:
    return sorted(_PACKAGES)


def is_kernel_token(name: str) -> bool:
    return name.startswith(KERNEL_TOKEN_PREFIX)
