"""``repro run KERNEL_DIR``: simulate one package on the array.

The end-to-end ingestion path: load + validate the package, construct
its CDFG, generate the array configuration
(:func:`repro.compiler.config_gen.generate_program` — external kernels
must sit in the same compilable class the built-in micro-architectural
validation uses), pre-load the committed memory images, run the
cycle-accurate :class:`~repro.sim.array.ArraySimulator`, and compare
every output region against the package's expected images (or the
functional interpreter's, when the package omits them) under the
package's tolerance.

:func:`run_kernel` returns a :class:`KernelRunReport`; the CLI renders
it in ASCII or JSON and maps the verdict to an exit code (0 PASS,
1 FAIL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.compiler.config_gen import generate_program
from repro.errors import ConfigurationError
from repro.kernels.package import KernelPackage
from repro.kernels.workload import KernelWorkload
from repro.sim.array import ArraySimulator
from repro.workloads.base import outputs_match


@dataclass
class OutputVerdict:
    """One output region's comparison against its expected image."""

    array: str
    passed: bool
    checked: int
    atol: float
    first_bad_index: Optional[int] = None


@dataclass
class KernelRunReport:
    """Everything ``repro run`` reports about one simulation."""

    name: str
    fingerprint: str
    arch: str
    strategy: str
    cycles: int
    halted: bool
    mean_utilization: float
    ctrl_msgs_delivered: int
    ctrl_network_conflicts: int
    verdicts: List[OutputVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(verdict.passed for verdict in self.verdicts)

    def to_document(self) -> Dict[str, object]:
        """The ``--format json`` document."""
        return {
            "kernel": self.name,
            "fingerprint": self.fingerprint,
            "arch": self.arch,
            "strategy": self.strategy,
            "cycles": self.cycles,
            "halted": self.halted,
            "mean_utilization": self.mean_utilization,
            "ctrl_msgs_delivered": self.ctrl_msgs_delivered,
            "ctrl_network_conflicts": self.ctrl_network_conflicts,
            "outputs": [
                {
                    "array": verdict.array,
                    "verdict": "PASS" if verdict.passed else "FAIL",
                    "checked": verdict.checked,
                    "atol": verdict.atol,
                    "first_bad_index": verdict.first_bad_index,
                }
                for verdict in self.verdicts
            ],
            "verdict": "PASS" if self.passed else "FAIL",
        }

    def to_lines(self) -> List[str]:
        """The ``--format ascii`` rendering."""
        lines = [
            f"kernel: {self.name} "
            f"(fingerprint {self.fingerprint[:12]})",
            f"arch: {self.arch}  strategy: {self.strategy}",
            f"cycles: {self.cycles}"
            + ("" if self.halted else "  [hit max-cycles]"),
            f"array: mean utilization "
            f"{100.0 * self.mean_utilization:.1f}%, "
            f"{self.ctrl_msgs_delivered} ctrl msgs delivered, "
            f"{self.ctrl_network_conflicts} conflicts",
        ]
        for verdict in self.verdicts:
            status = "PASS" if verdict.passed else (
                f"FAIL (first bad index "
                f"{verdict.first_bad_index})"
            )
            lines.append(
                f"  {verdict.array}: {status} "
                f"({verdict.checked} values, atol={verdict.atol:g})"
            )
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return lines


def _first_bad(actual: np.ndarray, expected: np.ndarray,
               atol: float) -> Optional[int]:
    actual = np.asarray(actual)[: len(expected)]
    bad = np.argwhere(
        ~np.isclose(actual, expected, atol=max(atol, 1e-12), rtol=1e-6)
    )
    return int(bad[0][0]) if len(bad) else None


def run_kernel(package: KernelPackage, *,
               params: ArchParams = DEFAULT_PARAMS,
               arch_name: str = "default",
               strategy: str = "event",
               max_cycles: int = 200_000) -> KernelRunReport:
    """Simulate one package end to end and grade its outputs."""
    workload = KernelWorkload(package)
    instance = workload.instance(package.scale_hint)
    try:
        program = generate_program(
            instance.cdfg, params, instance.params,
            package.array_lengths(),
        )
    except ConfigurationError:
        raise
    except Exception as error:
        # CompilationError and friends: name the kernel, keep one line.
        raise ConfigurationError(
            f"kernel {package.name!r} cannot be configured for the "
            f"array: {error}"
        ) from error
    simulator = ArraySimulator(params, program, strategy=strategy)
    for decl in package.arrays:
        simulator.load_array(decl.name, package.memory[decl.name])
    # Run to quiescence (not the first exit announcement): the loop
    # operator signals exit while the tail iterations' stores are still
    # in flight, and a verdict graded on a truncated image is noise.
    result = simulator.run(max_cycles=max_cycles, halt_messages=999)
    # A quiescent stop leaves stats.halted False (no message threshold
    # was reached); what the report should flag is a *runaway* — the
    # cycle budget running out with work still in flight.
    completed = result.halted or result.cycles < max_cycles

    verdicts = []
    for name in sorted(instance.expected):
        expected = instance.expected[name]
        actual = result.array_out(program, name)
        passed = outputs_match(actual, expected, package.atol)
        verdicts.append(OutputVerdict(
            array=name, passed=passed, checked=len(expected),
            atol=package.atol,
            first_bad_index=(None if passed
                             else _first_bad(actual, expected,
                                             package.atol)),
        ))
    stats = result.stats
    return KernelRunReport(
        name=package.name,
        fingerprint=package.fingerprint(),
        arch=arch_name,
        strategy=strategy,
        cycles=result.cycles,
        halted=completed,
        mean_utilization=stats.mean_utilization,
        ctrl_msgs_delivered=stats.ctrl_msgs_delivered,
        ctrl_network_conflicts=stats.ctrl_network_conflicts,
        verdicts=verdicts,
    )
