"""Export a built-in workload as an on-disk kernel package.

``repro kernel init --from WORKLOAD`` and the committed
``examples/kernels/`` suite use this to turn one of the registry
workloads into the external format: the single-loop CDFG is decompiled
back into the package's three-address instruction rows, the instance's
concrete memory images and reference outputs become the ``memory/`` and
``expected/`` region files, and the result is re-validated end to end
(re-ingested, re-interpreted, compared against the original reference)
before anything is written.

Only the compilable kernel class is exportable — exactly the class
:func:`repro.compiler.config_gen.generate_program` accepts (one counted
loop, single body block).  Workloads outside it get a one-line
:class:`~repro.errors.ConfigurationError` naming the structural reason,
mirroring the config generator's own diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.compiler.config_gen import _match_structure
from repro.errors import CompilationError, ConfigurationError
from repro.ir.dfg import Node, NodeId
from repro.ir.interp import Interpreter
from repro.ir.ops import Opcode
from repro.kernels.package import (
    BINARY_OPS,
    DTYPES,
    ArrayDecl,
    KernelPackage,
    LoopBinding,
    TERNARY_OPS,
    UNARY_OPS,
    from_document,
)
from repro.workloads.base import Workload, outputs_match

_ROW_OPS = (set(BINARY_OPS) | set(UNARY_OPS) | set(TERNARY_OPS)
            | {"load", "store"})


def _fail(workload: Workload, message: str) -> ConfigurationError:
    return ConfigurationError(
        f"workload {workload.name!r} is outside the exportable kernel "
        f"class: {message}"
    )


def _literal(value: object) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _scalar_binding(workload: Workload, node: Node,
                    params: Dict[str, int], what: str) -> object:
    """A loop bound as the manifest encodes it: int or parameter name."""
    if node.opcode is Opcode.CONST:
        return int(node.value)
    if node.opcode is Opcode.INPUT and node.var in params:
        return node.var
    raise _fail(workload,
                f"loop {what} must be a constant or parameter, got "
                f"{node.opcode.value}")


def _dtype_of(workload: Workload, name: str,
              values: np.ndarray) -> str:
    dtype = str(np.asarray(values).dtype)
    if dtype not in DTYPES:
        raise _fail(workload,
                    f"array {name!r} has dtype {dtype}, not one of "
                    f"{sorted(DTYPES)}")
    return dtype


def package_from_workload(workload: Workload, scale: str = "tiny",
                          seed: int = 0) -> KernelPackage:
    """One workload instance as a validated kernel package."""
    instance = workload.instance(scale, seed=seed)
    cdfg = instance.cdfg
    try:
        entry_blk, header, body, _after = _match_structure(cdfg)
    except CompilationError as error:
        raise _fail(workload, str(error)) from error
    loop_var = header.loop_var
    if loop_var is None:
        raise _fail(workload, "loop header lost its variable")
    params = {name: int(value) for name, value in instance.params.items()}

    # -- loop binding --------------------------------------------------
    start_node = entry_blk.dfg.node(entry_blk.outputs[loop_var])
    cond = header.dfg.node(header.terminator.cond)
    if cond.opcode is not Opcode.LT:
        raise _fail(workload,
                    f"loop condition must be '<', got {cond.opcode.value}")
    stop_node = header.dfg.node(cond.operands[1])
    increment = body.dfg.node(body.outputs[loop_var])
    if increment.opcode is not Opcode.ADD:
        raise _fail(workload, "loop increment is not an addition")
    step_node = body.dfg.node(increment.operands[1])
    if step_node.opcode is not Opcode.CONST:
        raise _fail(workload, "loop step is not a constant")
    loop = LoopBinding(
        var=loop_var,
        start=_scalar_binding(workload, start_node, params, "start"),
        stop=_scalar_binding(workload, stop_node, params, "stop"),
        step=int(step_node.value),
    )

    # -- loop-carried state (entry-block constant initializers) --------
    state: Dict[str, float] = {}
    for var, node_id in entry_blk.outputs.items():
        if var == loop_var:
            continue
        node = entry_blk.dfg.node(node_id)
        if node.opcode is not Opcode.CONST:
            raise _fail(workload,
                        f"state variable {var!r} has a non-constant "
                        f"initializer ({node.opcode.value})")
        state[var] = float(node.value)
    state_of: Dict[NodeId, str] = {}
    for var, node_id in body.outputs.items():
        if var == loop_var:
            continue
        if var not in state:
            raise _fail(workload,
                        f"loop body defines {var!r} without an entry "
                        f"initializer")
        if node_id in state_of:
            raise _fail(workload,
                        f"one value updates both state variables "
                        f"{state_of[node_id]!r} and {var!r}")
        state_of[node_id] = var

    # -- instruction rows (live body nodes, in dataflow order) ---------
    # Required: stores and state updates, plus everything feeding them.
    # The loop increment is *not* required — the package's loop
    # construct re-creates it, and exporting it would double-step.
    required: set = set()
    worklist = [node.node_id for node in body.dfg.nodes
                if node.opcode is Opcode.STORE]
    worklist.extend(state_of)
    while worklist:
        node_id = worklist.pop()
        if node_id in required:
            continue
        required.add(node_id)
        worklist.extend(body.dfg.node(node_id).operands)

    names: Dict[NodeId, str] = {}
    temps = 0

    def operand_text(node_id: NodeId) -> str:
        node = body.dfg.node(node_id)
        if node.opcode is Opcode.CONST:
            return _literal(node.value)
        if node.opcode is Opcode.INPUT:
            var = node.var or ""
            if var == loop_var or var in params or var in state:
                return var
            raise _fail(workload,
                        f"loop body reads {var!r}, which is not the "
                        f"loop variable, a parameter, or state")
        if node_id not in names:
            raise _fail(workload,
                        f"value flows outside dataflow order "
                        f"(node {node_id})")
        return names[node_id]

    rows: List[Tuple[str, ...]] = []
    for node in body.dfg.nodes:
        if node.node_id not in required:
            continue
        if node.opcode in (Opcode.CONST, Opcode.INPUT):
            continue
        op = node.opcode.value
        if op not in _ROW_OPS:
            raise _fail(workload, f"op {op!r} has no package encoding")
        if node.opcode is Opcode.STORE:
            rows.append(("", "store", node.array,
                         operand_text(node.operands[0]),
                         operand_text(node.operands[1])))
            continue
        args = tuple(operand_text(operand) for operand in node.operands)
        if node.node_id in state_of:
            dest = state_of[node.node_id]
        else:
            dest = f"t{temps}"
            temps += 1
        names[node.node_id] = dest
        if node.opcode is Opcode.LOAD:
            rows.append((dest, "load", node.array, args[0]))
        else:
            rows.append((dest, op, *args))

    # -- arrays, roles, images -----------------------------------------
    loaded = {node.array for node in body.dfg.nodes
              if node.opcode is Opcode.LOAD}
    stored = {node.array for node in body.dfg.nodes
              if node.opcode is Opcode.STORE and node.node_id in required}
    for name in instance.expected:
        if name not in stored:
            raise _fail(workload,
                        f"expected output {name!r} is never stored in "
                        f"the loop body")
    arrays = []
    for name in cdfg.arrays:
        values = np.asarray(instance.memory[name])
        if name in stored:
            role = "inout" if name in loaded else "output"
        elif name in loaded:
            role = "input"
        else:
            role = "scratch"
        arrays.append(ArrayDecl(
            name=name, shape=(len(values),),
            dtype=_dtype_of(workload, name, values), role=role,
        ))

    package = KernelPackage(
        name=workload.name,
        loop=loop,
        arrays=tuple(arrays),
        program=tuple(rows),
        params=params,
        state=state,
        memory={name: np.asarray(values).copy()
                for name, values in instance.memory.items()},
        expected={name: np.asarray(values).copy()
                  for name, values in instance.expected.items()},
        atol=float(workload.atol),
        description=(f"exported from the {workload.name!r} workload "
                     f"at scale {scale!r}, seed {seed}"),
        scale_hint=scale,
    )
    # Round the export through full schema validation, then prove the
    # decompiled program still computes the original reference.
    package = from_document(package.to_document(),
                            f"<export of {workload.name!r}>")
    result = Interpreter(package.build_cdfg()).run(
        {name: values.copy() for name, values in package.memory.items()},
        dict(package.params),
    )
    for name, expected in instance.expected.items():
        if not outputs_match(result.array(name), expected, package.atol):
            raise _fail(workload,
                        f"exported program diverges from the reference "
                        f"on output {name!r}")
    return package
