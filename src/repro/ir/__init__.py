"""CDFG intermediate representation.

The IR mirrors the computational model of spatial architectures (paper
Section 2.1): a program is a Control Data Flow Graph — a control flow graph
(CFG) whose nodes are basic blocks (BBs), each holding a pure data flow graph
(DFG).  Kernels are written against :class:`~repro.ir.builder.KernelBuilder`,
executed functionally by :class:`~repro.ir.interp.Interpreter`, and analysed
by :mod:`repro.ir.analysis`.
"""

from repro.ir.ops import Opcode, OpClass, op_info, OPCODE_INFO
from repro.ir.dfg import Node, DFG
from repro.ir.cfg import (
    BasicBlock,
    BlockRole,
    Branch,
    CFG,
    Halt,
    Jump,
    Terminator,
)
from repro.ir.cdfg import CDFG, LoopNest
from repro.ir.builder import KernelBuilder, Value
from repro.ir.interp import ExecutionResult, Interpreter
from repro.ir.trace import DynamicTrace, Run

__all__ = [
    "Opcode",
    "OpClass",
    "op_info",
    "OPCODE_INFO",
    "Node",
    "DFG",
    "BasicBlock",
    "BlockRole",
    "Branch",
    "CFG",
    "Halt",
    "Jump",
    "Terminator",
    "CDFG",
    "LoopNest",
    "KernelBuilder",
    "Value",
    "Interpreter",
    "ExecutionResult",
    "DynamicTrace",
    "Run",
]
