"""Opcode taxonomy for the CDFG IR.

Opcodes are grouped into classes that matter to the architecture models:

* ``ARITH`` / ``LOGIC`` / ``COMPARE`` — ordinary single-result FU operations;
* ``MEMORY`` — loads and stores against named scratchpad arrays;
* ``NONLINEAR`` — transcendental operators served by the four
  "nonlinear-fitting" PEs of the prototype (paper Table 4);
* ``META`` — constants and live-in reads that consume no FU.

``op_info`` exposes per-opcode static properties (latency, arity, an
evaluation function for the functional interpreter).  The default execution
latency of two cycles follows the paper's relative-timing assumption
(Section 2.3: "executing an instruction takes two cycles").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import IRError

_INT_MASK = 0xFFFFFFFF


def _as_int(x: float) -> int:
    """Coerce an interpreter value to a Python int (C-style truncation)."""
    return int(x)


def _wrap32(x: int) -> int:
    """Wrap an integer to unsigned 32-bit, matching the 32-bit datapath."""
    return _as_int(x) & _INT_MASK


class OpClass(enum.Enum):
    """Functional class of an opcode, as seen by the hardware."""

    ARITH = "arith"
    LOGIC = "logic"
    COMPARE = "compare"
    MEMORY = "memory"
    NONLINEAR = "nonlinear"
    META = "meta"


class Opcode(enum.Enum):
    """All operations the data flow plane can execute."""

    # Meta (no FU): constants and live-in variable reads.
    CONST = "const"
    INPUT = "input"

    # Integer/float arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"

    # Bitwise / shifts (32-bit semantics).
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"

    # Comparisons (produce 0/1).
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    # Selection (cond ? a : b) — the predication primitive.
    SELECT = "select"

    # Memory ops against named arrays.
    LOAD = "load"
    STORE = "store"

    # Nonlinear-fitting PE operations.
    LOG = "log"
    EXP = "exp"
    SQRT = "sqrt"
    SIGMOID = "sigmoid"
    SIN = "sin"
    COS = "cos"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    opcode: Opcode
    op_class: OpClass
    arity: int
    latency: int
    commutative: bool
    evaluate: Optional[Callable[..., float]]

    @property
    def is_memory(self) -> bool:
        return self.op_class is OpClass.MEMORY

    @property
    def needs_fu(self) -> bool:
        """Whether the op occupies a function unit when mapped to a PE."""
        return self.op_class is not OpClass.META


def _div(a, b):
    if b == 0:
        raise IRError("division by zero in DFG evaluation")
    if isinstance(a, int) and isinstance(b, int):
        # C-style truncating division.
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _mod(a, b):
    if b == 0:
        raise IRError("modulo by zero in DFG evaluation")
    if isinstance(a, int) and isinstance(b, int):
        # C-style remainder (sign of the dividend).
        return a - _div(a, b) * b
    return math.fmod(a, b)


def _shl(a, b):
    return _wrap32(_as_int(a) << (_as_int(b) & 31))


def _shr(a, b):
    return _wrap32(a) >> (_as_int(b) & 31)


def _sigmoid(a):
    return 1.0 / (1.0 + math.exp(-a))


_TWO_CYCLE = 2

_RAW_INFO: Tuple[Tuple[Opcode, OpClass, int, int, bool, Optional[Callable]], ...] = (
    (Opcode.CONST, OpClass.META, 0, 0, False, None),
    (Opcode.INPUT, OpClass.META, 0, 0, False, None),
    (Opcode.ADD, OpClass.ARITH, 2, _TWO_CYCLE, True, lambda a, b: a + b),
    (Opcode.SUB, OpClass.ARITH, 2, _TWO_CYCLE, False, lambda a, b: a - b),
    (Opcode.MUL, OpClass.ARITH, 2, _TWO_CYCLE, True, lambda a, b: a * b),
    (Opcode.DIV, OpClass.ARITH, 2, _TWO_CYCLE, False, _div),
    (Opcode.MOD, OpClass.ARITH, 2, _TWO_CYCLE, False, _mod),
    (Opcode.MIN, OpClass.ARITH, 2, _TWO_CYCLE, True, min),
    (Opcode.MAX, OpClass.ARITH, 2, _TWO_CYCLE, True, max),
    (Opcode.ABS, OpClass.ARITH, 1, _TWO_CYCLE, False, abs),
    (Opcode.NEG, OpClass.ARITH, 1, _TWO_CYCLE, False, lambda a: -a),
    (Opcode.AND, OpClass.LOGIC, 2, _TWO_CYCLE, True,
     lambda a, b: _wrap32(a) & _wrap32(b)),
    (Opcode.OR, OpClass.LOGIC, 2, _TWO_CYCLE, True,
     lambda a, b: _wrap32(a) | _wrap32(b)),
    (Opcode.XOR, OpClass.LOGIC, 2, _TWO_CYCLE, True,
     lambda a, b: _wrap32(a) ^ _wrap32(b)),
    (Opcode.NOT, OpClass.LOGIC, 1, _TWO_CYCLE, False,
     lambda a: _wrap32(~_as_int(a))),
    (Opcode.SHL, OpClass.LOGIC, 2, _TWO_CYCLE, False, _shl),
    (Opcode.SHR, OpClass.LOGIC, 2, _TWO_CYCLE, False, _shr),
    (Opcode.EQ, OpClass.COMPARE, 2, _TWO_CYCLE, True,
     lambda a, b: int(a == b)),
    (Opcode.NE, OpClass.COMPARE, 2, _TWO_CYCLE, True,
     lambda a, b: int(a != b)),
    (Opcode.LT, OpClass.COMPARE, 2, _TWO_CYCLE, False,
     lambda a, b: int(a < b)),
    (Opcode.LE, OpClass.COMPARE, 2, _TWO_CYCLE, False,
     lambda a, b: int(a <= b)),
    (Opcode.GT, OpClass.COMPARE, 2, _TWO_CYCLE, False,
     lambda a, b: int(a > b)),
    (Opcode.GE, OpClass.COMPARE, 2, _TWO_CYCLE, False,
     lambda a, b: int(a >= b)),
    (Opcode.SELECT, OpClass.ARITH, 3, _TWO_CYCLE, False,
     lambda c, a, b: a if c else b),
    (Opcode.LOAD, OpClass.MEMORY, 1, _TWO_CYCLE, False, None),
    (Opcode.STORE, OpClass.MEMORY, 2, _TWO_CYCLE, False, None),
    (Opcode.LOG, OpClass.NONLINEAR, 1, _TWO_CYCLE, False, math.log),
    (Opcode.EXP, OpClass.NONLINEAR, 1, _TWO_CYCLE, False, math.exp),
    (Opcode.SQRT, OpClass.NONLINEAR, 1, _TWO_CYCLE, False, math.sqrt),
    (Opcode.SIGMOID, OpClass.NONLINEAR, 1, _TWO_CYCLE, False, _sigmoid),
    (Opcode.SIN, OpClass.NONLINEAR, 1, _TWO_CYCLE, False, math.sin),
    (Opcode.COS, OpClass.NONLINEAR, 1, _TWO_CYCLE, False, math.cos),
)

OPCODE_INFO: Dict[Opcode, OpInfo] = {
    opcode: OpInfo(opcode, op_class, arity, latency, commutative, evaluate)
    for opcode, op_class, arity, latency, commutative, evaluate in _RAW_INFO
}


def op_info(opcode: Opcode) -> OpInfo:
    """Return the static :class:`OpInfo` for ``opcode``."""
    try:
        return OPCODE_INFO[opcode]
    except KeyError:  # pragma: no cover - all opcodes are registered
        raise IRError(f"unknown opcode: {opcode!r}")


#: Comparison opcodes, usable as branch conditions directly.
COMPARE_OPCODES = frozenset(
    op for op, info in OPCODE_INFO.items() if info.op_class is OpClass.COMPARE
)

#: Opcodes that require a nonlinear-fitting PE.
NONLINEAR_OPCODES = frozenset(
    op for op, info in OPCODE_INFO.items() if info.op_class is OpClass.NONLINEAR
)
