"""The combined CDFG: a CFG whose blocks embed DFGs, plus loop-nest analysis.

:class:`LoopNest` is the unit the Marionette scheduler works at (paper
Fig. 8): scheduling proceeds innermost loop level to outermost, mapping the
basic blocks of each level and time-extending leftovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import IRError
from repro.ir.cfg import BasicBlock, BlockId, BlockRole, Branch, CFG, Halt, Jump


@dataclass
class LoopNest:
    """One natural loop in the nest tree.

    Attributes:
        header: Block id of the loop header (the loop decision block).
        blocks: All block ids in the loop (including inner loops' blocks).
        depth: Nesting depth; 1 for outermost loops.
        parent: Header id of the enclosing loop, or ``None``.
        children: Headers of directly nested loops.
    """

    header: BlockId
    blocks: Set[BlockId]
    depth: int = 1
    parent: Optional[BlockId] = None
    children: List[BlockId] = field(default_factory=list)

    def own_blocks(self, nests: Dict[BlockId, "LoopNest"]) -> Set[BlockId]:
        """Blocks belonging to this loop level but not to any inner loop."""
        inner: Set[BlockId] = set()
        for child in self.children:
            inner |= nests[child].blocks
        return self.blocks - inner


class CDFG:
    """A kernel: control flow graph + per-block data flow graphs."""

    def __init__(self, name: str, cfg: CFG,
                 params: Sequence[str] = (),
                 arrays: Sequence[str] = ()) -> None:
        self.name = name
        self.cfg = cfg
        #: runtime scalar parameter names (set by the interpreter caller)
        self.params: Tuple[str, ...] = tuple(params)
        #: scratchpad array names referenced by LOAD/STORE
        self.arrays: Tuple[str, ...] = tuple(arrays)
        self._loop_nests: Optional[Dict[BlockId, LoopNest]] = None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def blocks(self) -> List[BasicBlock]:
        return self.cfg.blocks

    def block(self, block_id: BlockId) -> BasicBlock:
        return self.cfg.block(block_id)

    @property
    def entry(self) -> BlockId:
        if self.cfg.entry is None:
            raise IRError(f"kernel {self.name!r} has no entry block")
        return self.cfg.entry

    @property
    def total_op_count(self) -> int:
        """Static FU-operation count over all blocks."""
        return sum(b.op_count for b in self.blocks)

    # ------------------------------------------------------------------
    # Loop nest analysis
    # ------------------------------------------------------------------
    def loop_nests(self) -> Dict[BlockId, LoopNest]:
        """Header id -> :class:`LoopNest`, computed once and cached."""
        if self._loop_nests is None:
            self._loop_nests = self._build_loop_nests()
        return self._loop_nests

    def _build_loop_nests(self) -> Dict[BlockId, LoopNest]:
        raw = self.cfg.natural_loops()
        nests = {h: LoopNest(h, set(body)) for h, body in raw.items()}
        headers = sorted(nests, key=lambda h: len(nests[h].blocks))
        # Parent = the smallest enclosing loop (smallest superset of blocks).
        for header in headers:
            nest = nests[header]
            best: Optional[BlockId] = None
            best_size = None
            for other in headers:
                if other == header:
                    continue
                candidate = nests[other]
                if header in candidate.blocks and nest.blocks <= candidate.blocks:
                    if best_size is None or len(candidate.blocks) < best_size:
                        best = other
                        best_size = len(candidate.blocks)
            nest.parent = best
            if best is not None:
                nests[best].children.append(header)
        for header in headers:
            depth = 1
            cursor = nests[header].parent
            while cursor is not None:
                depth += 1
                cursor = nests[cursor].parent
            nests[header].depth = depth
        return nests

    def max_loop_depth(self) -> int:
        nests = self.loop_nests()
        return max((n.depth for n in nests.values()), default=0)

    def innermost_loops(self) -> List[LoopNest]:
        return [n for n in self.loop_nests().values() if not n.children]

    def loop_of_block(self, block_id: BlockId) -> Optional[LoopNest]:
        """The innermost loop containing ``block_id``, or ``None``."""
        best: Optional[LoopNest] = None
        for nest in self.loop_nests().values():
            if block_id in nest.blocks:
                if best is None or len(nest.blocks) < len(best.blocks):
                    best = nest
        return best

    def loop_depth_of_block(self, block_id: BlockId) -> int:
        nest = self.loop_of_block(block_id)
        return nest.depth if nest else 0

    def levels_inner_to_outer(self) -> List[List[LoopNest]]:
        """Loop nests grouped by depth, innermost (deepest) first."""
        nests = self.loop_nests()
        if not nests:
            return []
        max_depth = max(n.depth for n in nests.values())
        levels: List[List[LoopNest]] = []
        for depth in range(max_depth, 0, -1):
            level = [n for n in nests.values() if n.depth == depth]
            if level:
                levels.append(sorted(level, key=lambda n: n.header))
        return levels

    # ------------------------------------------------------------------
    # Control structure queries used by the execution models
    # ------------------------------------------------------------------
    def is_imperfect(self) -> bool:
        """Whether any non-innermost loop level carries FU computation.

        This is the paper's *Imperfect Loop* form: computation present in
        outer loop bodies (Section 3.1).
        """
        nests = self.loop_nests()
        for nest in nests.values():
            if not nest.children:
                continue
            for bid in nest.own_blocks(nests):
                block = self.block(bid)
                if block.role is BlockRole.LOOP_HEADER and bid == nest.header:
                    continue
                if block.op_count > 0:
                    return True
        return False

    def branch_blocks(self) -> List[BasicBlock]:
        """Blocks ending in a non-loop conditional branch (divergence points)."""
        out = []
        for block in self.blocks:
            term = block.terminator
            if isinstance(term, Branch) and not term.is_loop_branch:
                out.append(block)
        return out

    def under_branch_blocks(self) -> Set[BlockId]:
        """Blocks control-dependent on a non-loop branch (branch arms/merges
        reached before the merge point re-joins).

        Computed structurally: for each divergent branch, the blocks reachable
        from exactly one of the two arms before reaching a common
        post-dominator are "under" the branch.  Builder roles give the same
        answer for builder-produced CDFGs; this stays correct for hand-built
        graphs too.
        """
        under: Set[BlockId] = set()
        for block in self.branch_blocks():
            term = block.terminator
            assert isinstance(term, Branch)
            reach_true = self._forward_region(term.if_true, block.block_id)
            reach_false = self._forward_region(term.if_false, block.block_id)
            under |= reach_true.symmetric_difference(reach_false)
        return under

    def _forward_region(self, start: BlockId, stop: BlockId) -> Set[BlockId]:
        """Blocks reachable from ``start`` without passing through ``stop``
        or traversing loop back edges."""
        back = set(self.cfg.back_edges())
        seen: Set[BlockId] = set()
        stack = [start]
        while stack:
            bid = stack.pop()
            if bid in seen or bid == stop:
                continue
            seen.add(bid)
            for succ in self.cfg.successors(bid):
                if (bid, succ) in back:
                    continue
                stack.append(succ)
        return seen

    # ------------------------------------------------------------------
    # Validation / repr
    # ------------------------------------------------------------------
    def validate(self) -> None:
        self.cfg.validate()
        referenced: Set[str] = set()
        for block in self.blocks:
            for node in block.dfg:
                if node.array is not None:
                    referenced.add(node.array)
        missing = referenced - set(self.arrays)
        if missing:
            raise IRError(
                f"kernel {self.name!r} uses undeclared arrays: {sorted(missing)}"
            )

    def summary(self) -> str:
        """A short human-readable description of the kernel's structure."""
        nests = self.loop_nests()
        return (
            f"kernel {self.name}: {len(self.blocks)} blocks, "
            f"{self.total_op_count} ops, {len(nests)} loops "
            f"(max depth {self.max_loop_depth()}), "
            f"{len(self.branch_blocks())} divergent branches, "
            f"imperfect={self.is_imperfect()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CDFG({self.summary()})"
