"""Dynamic execution traces.

The functional interpreter records the sequence of executed basic blocks as
**runs** ``(block, count)`` — maximal stretches of consecutive executions of
the same block.  Runs are exactly the unit the architecture timing models
price: a run of an innermost loop-body block is one pipelined burst; a
transition between different blocks is a control flow transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.cdfg import CDFG
from repro.ir.cfg import BlockId


@dataclass(frozen=True)
class Run:
    """``count`` consecutive executions of block ``block``."""

    block: BlockId
    count: int


class DynamicTrace:
    """Aggregated dynamic behaviour of one kernel execution."""

    def __init__(self, kernel: str) -> None:
        self.kernel = kernel
        self.runs: List[Run] = []
        self.exec_counts: Dict[BlockId, int] = {}
        self.edge_counts: Dict[Tuple[BlockId, BlockId], int] = {}
        self._open_block: Optional[BlockId] = None
        self._open_count = 0

    # ------------------------------------------------------------------
    # Recording (used by the interpreter)
    # ------------------------------------------------------------------
    def record(self, block: BlockId) -> None:
        """Record one execution of ``block``."""
        if block == self._open_block:
            self._open_count += 1
        else:
            if self._open_block is not None:
                self.runs.append(Run(self._open_block, self._open_count))
                self.edge_counts[(self._open_block, block)] = (
                    self.edge_counts.get((self._open_block, block), 0) + 1
                )
            self._open_block = block
            self._open_count = 1
        self.exec_counts[block] = self.exec_counts.get(block, 0) + 1

    def finish(self) -> None:
        """Flush the open run; called once when execution halts."""
        if self._open_block is not None:
            self.runs.append(Run(self._open_block, self._open_count))
            self._open_block = None
            self._open_count = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_block_execs(self) -> int:
        return sum(self.exec_counts.values())

    def execs_of(self, block: BlockId) -> int:
        return self.exec_counts.get(block, 0)

    def runs_of(self, block: BlockId) -> List[Run]:
        return [r for r in self.runs if r.block == block]

    def transitions(self) -> int:
        """Number of block-to-block control transfers (run boundaries)."""
        return max(0, len(self.runs) - 1)

    def dynamic_op_count(self, cdfg: CDFG) -> int:
        """Total FU operations executed."""
        return sum(
            cdfg.block(bid).op_count * n for bid, n in self.exec_counts.items()
        )

    def dynamic_ops_in(self, cdfg: CDFG, blocks: Iterable[BlockId]) -> int:
        """FU operations executed within the given block set."""
        wanted: Set[BlockId] = set(blocks)
        return sum(
            cdfg.block(bid).op_count * n
            for bid, n in self.exec_counts.items()
            if bid in wanted
        )

    def mean_run_length(self, block: BlockId) -> float:
        """Average burst length of ``block`` (pipeline depth opportunity)."""
        runs = self.runs_of(block)
        if not runs:
            return 0.0
        return sum(r.count for r in runs) / len(runs)

    # ------------------------------------------------------------------
    # Serialization (the engine's on-disk trace cache)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe image of a *finished* trace."""
        return {
            "kernel": self.kernel,
            "runs": [[r.block, r.count] for r in self.runs],
            "exec_counts": {
                str(b): n for b, n in sorted(self.exec_counts.items())
            },
            "edge_counts": [
                [src, dst, n]
                for (src, dst), n in sorted(self.edge_counts.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DynamicTrace":
        """Inverse of :meth:`to_payload`."""
        trace = cls(str(payload["kernel"]))
        trace.runs = [
            Run(int(block), int(count)) for block, count in payload["runs"]
        ]
        trace.exec_counts = {
            int(b): int(n) for b, n in dict(payload["exec_counts"]).items()
        }
        trace.edge_counts = {
            (int(src), int(dst)): int(n)
            for src, dst, n in payload["edge_counts"]
        }
        return trace

    def validate(self) -> None:
        """Internal consistency: runs must sum to exec counts."""
        per_block: Dict[BlockId, int] = {}
        for run in self.runs:
            per_block[run.block] = per_block.get(run.block, 0) + run.count
        assert per_block == self.exec_counts, (
            "trace runs disagree with execution counts"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DynamicTrace({self.kernel}: {len(self.runs)} runs, "
            f"{self.total_block_execs} block execs)"
        )
