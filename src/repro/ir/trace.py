"""Dynamic execution traces.

The functional interpreter records the sequence of executed basic blocks as
**runs** ``(block, count)`` — maximal stretches of consecutive executions of
the same block.  Runs are exactly the unit the architecture timing models
price: a run of an innermost loop-body block is one pipelined burst; a
transition between different blocks is a control flow transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.cdfg import CDFG
from repro.ir.cfg import BlockId


@dataclass(frozen=True)
class Run:
    """``count`` consecutive executions of block ``block``."""

    block: BlockId
    count: int


class DynamicTrace:
    """Aggregated dynamic behaviour of one kernel execution."""

    def __init__(self, kernel: str) -> None:
        self.kernel = kernel
        self.runs: List[Run] = []
        self.exec_counts: Dict[BlockId, int] = {}
        self.edge_counts: Dict[Tuple[BlockId, BlockId], int] = {}
        self._open_block: Optional[BlockId] = None
        self._open_count = 0
        # Lazily built per-block query indices.  The timing models walk
        # ``runs_of``/``mean_run_length`` once per block per model — on
        # a sweep that is thousands of full-list scans of the same
        # finished trace, so the first query folds the run list into a
        # per-block index + closed-form (runs, execs) aggregates, and
        # later queries are O(1).  Recording invalidates them.
        self._runs_index: Optional[Dict[BlockId, List[Run]]] = None
        self._run_aggregates: Optional[
            Dict[BlockId, Tuple[int, int]]
        ] = None
        # id(cdfg) -> (cdfg, total ops); the strong reference pins the
        # CDFG so its id cannot be recycled under the memo.
        self._dyn_ops: Dict[int, Tuple[CDFG, int]] = {}

    # ------------------------------------------------------------------
    # Recording (used by the interpreter)
    # ------------------------------------------------------------------
    def record(self, block: BlockId) -> None:
        """Record one execution of ``block``.

        The common case — another execution of the block already open —
        is a single integer bump: the run's contribution to
        ``exec_counts`` is folded in when the run *closes* (a different
        block arrives, or :meth:`finish`).  The interpreter's inner loop
        therefore does no dict churn while a block re-executes, and
        ``exec_counts`` / ``edge_counts`` are complete only once the
        trace is finished (which is when every consumer reads them —
        the engine caches finished traces only).  ``execs_of`` and
        ``total_block_execs`` do account for the still-open run, so
        those two stay exact even mid-recording.
        """
        if block == self._open_block:
            self._open_count += 1
            return
        self._close_open_run(block)
        self._open_block = block
        self._open_count = 1

    def _close_open_run(self, successor: Optional[BlockId]) -> None:
        """Fold the open run into runs/exec_counts (+ the taken edge)."""
        block = self._open_block
        if block is None:
            return
        self._runs_index = None
        self._run_aggregates = None
        self._dyn_ops.clear()
        self.runs.append(Run(block, self._open_count))
        self.exec_counts[block] = (
            self.exec_counts.get(block, 0) + self._open_count
        )
        if successor is not None:
            self.edge_counts[(block, successor)] = (
                self.edge_counts.get((block, successor), 0) + 1
            )

    def finish(self) -> None:
        """Flush the open run; called once when execution halts."""
        self._close_open_run(None)
        self._open_block = None
        self._open_count = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_block_execs(self) -> int:
        return sum(self.exec_counts.values()) + self._open_count

    def execs_of(self, block: BlockId) -> int:
        count = self.exec_counts.get(block, 0)
        if block == self._open_block:
            count += self._open_count
        return count

    def _index_runs(self) -> Dict[BlockId, List[Run]]:
        if self._runs_index is None:
            index: Dict[BlockId, List[Run]] = {}
            aggregates: Dict[BlockId, Tuple[int, int]] = {}
            for run in self.runs:
                index.setdefault(run.block, []).append(run)
                count, total = aggregates.get(run.block, (0, 0))
                aggregates[run.block] = (count + 1, total + run.count)
            self._runs_index = index
            self._run_aggregates = aggregates
        return self._runs_index

    def runs_of(self, block: BlockId) -> List[Run]:
        return self._index_runs().get(block, [])

    def run_stats_of(self, block: BlockId) -> Tuple[int, int]:
        """Closed-form ``(number of runs, total executions)`` of a block.

        The algebraic form of what the analytical models used to derive
        by walking :attr:`runs` — burst counts and burst volumes fall
        out of one cached fold instead of a scan per query.
        """
        self._index_runs()
        assert self._run_aggregates is not None
        return self._run_aggregates.get(block, (0, 0))

    def transitions(self) -> int:
        """Number of block-to-block control transfers (run boundaries)."""
        return max(0, len(self.runs) - 1)

    def dynamic_op_count(self, cdfg: CDFG) -> int:
        """Total FU operations executed (memoised per CDFG)."""
        memo = self._dyn_ops.get(id(cdfg))
        if memo is not None and memo[0] is cdfg:
            return memo[1]
        total = sum(
            cdfg.block(bid).op_count * n for bid, n in self.exec_counts.items()
        )
        self._dyn_ops[id(cdfg)] = (cdfg, total)
        return total

    def dynamic_ops_in(self, cdfg: CDFG, blocks: Iterable[BlockId]) -> int:
        """FU operations executed within the given block set."""
        wanted: Set[BlockId] = set(blocks)
        return sum(
            cdfg.block(bid).op_count * n
            for bid, n in self.exec_counts.items()
            if bid in wanted
        )

    def mean_run_length(self, block: BlockId) -> float:
        """Average burst length of ``block`` (pipeline depth opportunity)."""
        count, total = self.run_stats_of(block)
        if not count:
            return 0.0
        return total / count

    # ------------------------------------------------------------------
    # Serialization (the engine's on-disk trace cache)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe image of a *finished* trace."""
        return {
            "kernel": self.kernel,
            "runs": [[r.block, r.count] for r in self.runs],
            "exec_counts": {
                str(b): n for b, n in sorted(self.exec_counts.items())
            },
            "edge_counts": [
                [src, dst, n]
                for (src, dst), n in sorted(self.edge_counts.items())
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DynamicTrace":
        """Inverse of :meth:`to_payload`."""
        trace = cls(str(payload["kernel"]))
        trace.runs = [
            Run(int(block), int(count)) for block, count in payload["runs"]
        ]
        trace.exec_counts = {
            int(b): int(n) for b, n in dict(payload["exec_counts"]).items()
        }
        trace.edge_counts = {
            (int(src), int(dst)): int(n)
            for src, dst, n in payload["edge_counts"]
        }
        return trace

    def validate(self) -> None:
        """Internal consistency: runs must sum to exec counts."""
        per_block: Dict[BlockId, int] = {}
        for run in self.runs:
            per_block[run.block] = per_block.get(run.block, 0) + run.count
        assert per_block == self.exec_counts, (
            "trace runs disagree with execution counts"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DynamicTrace({self.kernel}: {len(self.runs)} runs, "
            f"{self.total_block_execs} block execs)"
        )
