"""Control flow graphs: basic blocks, terminators, dominators, natural loops.

Terminators carry the control decision of a block:

* :class:`Jump` — unconditional successor (same control flow, the Control
  Flow Sender's *DFG operator mode*);
* :class:`Branch` — two-way conditional on a DFG node (*branch operator
  mode*); ``is_loop_branch`` marks loop header/latch branches (*loop operator
  mode*);
* :class:`Halt` — kernel exit.

Block roles record how the builder created a block (loop header, branch arm,
…) so analyses do not have to re-discover intent heuristically; structural
facts (dominators, natural loops) are still computed from the graph itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import IRError
from repro.ir.dfg import DFG, NodeId

BlockId = int


class BlockRole(enum.Enum):
    """How the builder created a block (annotation, not structure)."""

    ENTRY = "entry"
    EXIT = "exit"
    PLAIN = "plain"
    LOOP_PREHEADER = "loop_preheader"
    LOOP_HEADER = "loop_header"
    LOOP_BODY = "loop_body"
    LOOP_LATCH = "loop_latch"
    BRANCH_ARM = "branch_arm"
    MERGE = "merge"


@dataclass
class Jump:
    """Unconditional transfer to ``target``."""

    target: BlockId


@dataclass
class Branch:
    """Two-way conditional transfer on the value of ``cond`` (a DFG node).

    ``is_loop_branch`` is set for loop header/latch decisions, which the
    Marionette control plane serves in loop operator mode rather than branch
    operator mode.
    """

    cond: NodeId
    if_true: BlockId
    if_false: BlockId
    is_loop_branch: bool = False


@dataclass
class Halt:
    """Kernel exit."""


Terminator = (Jump, Branch, Halt)


@dataclass
class BasicBlock:
    """A single-entry single-exit block holding one DFG."""

    block_id: BlockId
    name: str
    dfg: DFG = field(default_factory=DFG)
    terminator: Optional[object] = None
    role: BlockRole = BlockRole.PLAIN
    #: variable name -> producing DFG node (live-out bindings)
    outputs: Dict[str, NodeId] = field(default_factory=dict)
    #: loop variable owned by this block's loop, if it is a header
    loop_var: Optional[str] = None
    #: builder-level annotations (pragmas)
    annotations: Dict[str, object] = field(default_factory=dict)

    def successors(self) -> Tuple[BlockId, ...]:
        term = self.terminator
        if isinstance(term, Jump):
            return (term.target,)
        if isinstance(term, Branch):
            return (term.if_true, term.if_false)
        if isinstance(term, Halt):
            return ()
        raise IRError(f"block {self.name!r} has no terminator")

    @property
    def op_count(self) -> int:
        return self.dfg.op_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BasicBlock({self.block_id}, {self.name!r}, "
            f"{self.op_count} ops, role={self.role.value})"
        )


class CFG:
    """A control flow graph over :class:`BasicBlock`.

    Provides dominator computation (iterative dataflow algorithm) and natural
    loop discovery via back edges; both are pure structure, independent of the
    builder's role annotations.
    """

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self.entry: Optional[BlockId] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_block(
        self, name: str, role: BlockRole = BlockRole.PLAIN
    ) -> BasicBlock:
        block = BasicBlock(len(self.blocks), name, role=role)
        self.blocks.append(block)
        if self.entry is None:
            self.entry = block.block_id
            if role is BlockRole.PLAIN:
                block.role = BlockRole.ENTRY
        return block

    def block(self, block_id: BlockId) -> BasicBlock:
        return self.blocks[block_id]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def successors(self, block_id: BlockId) -> Tuple[BlockId, ...]:
        return self.blocks[block_id].successors()

    def predecessors(self) -> Dict[BlockId, List[BlockId]]:
        preds: Dict[BlockId, List[BlockId]] = {b.block_id: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block.block_id)
        return preds

    def edges(self) -> List[Tuple[BlockId, BlockId]]:
        out: List[Tuple[BlockId, BlockId]] = []
        for block in self.blocks:
            for succ in block.successors():
                out.append((block.block_id, succ))
        return out

    def reachable(self) -> Set[BlockId]:
        """Blocks reachable from the entry."""
        if self.entry is None:
            return set()
        seen: Set[BlockId] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].successors())
        return seen

    def reverse_postorder(self) -> List[BlockId]:
        """Reverse postorder over reachable blocks (good for dataflow)."""
        if self.entry is None:
            return []
        visited: Set[BlockId] = set()
        order: List[BlockId] = []

        def visit(bid: BlockId) -> None:
            stack: List[Tuple[BlockId, int]] = [(bid, 0)]
            while stack:
                node, idx = stack[-1]
                if node not in visited:
                    visited.add(node)
                succs = self.blocks[node].successors()
                if idx < len(succs):
                    stack[-1] = (node, idx + 1)
                    nxt = succs[idx]
                    if nxt not in visited:
                        stack.append((nxt, 0))
                else:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def dominators(self) -> Dict[BlockId, Set[BlockId]]:
        """Dominator sets via the classic iterative algorithm.

        ``dom[b]`` is the set of blocks that dominate ``b`` (including ``b``).
        Unreachable blocks are excluded.
        """
        if self.entry is None:
            return {}
        rpo = self.reverse_postorder()
        reachable = set(rpo)
        preds = self.predecessors()
        universe = set(rpo)
        dom: Dict[BlockId, Set[BlockId]] = {
            bid: {bid} if bid == self.entry else set(universe) for bid in rpo
        }
        changed = True
        while changed:
            changed = False
            for bid in rpo:
                if bid == self.entry:
                    continue
                reachable_preds = [p for p in preds[bid] if p in reachable]
                if reachable_preds:
                    new = set.intersection(
                        *(dom[p] for p in reachable_preds)
                    )
                else:  # pragma: no cover - entry handled above
                    new = set()
                new.add(bid)
                if new != dom[bid]:
                    dom[bid] = new
                    changed = True
        return dom

    def immediate_dominators(self) -> Dict[BlockId, Optional[BlockId]]:
        """Immediate dominator per block (``None`` for the entry)."""
        dom = self.dominators()
        idom: Dict[BlockId, Optional[BlockId]] = {}
        for bid, doms in dom.items():
            if bid == self.entry:
                idom[bid] = None
                continue
            strict = doms - {bid}
            # The idom is the strict dominator that every other strict
            # dominator dominates (the closest one).
            candidate = None
            for d in strict:
                if all(other in dom[d] for other in strict):
                    candidate = d
                    break
            idom[bid] = candidate
        return idom

    def back_edges(self) -> List[Tuple[BlockId, BlockId]]:
        """Edges ``u -> v`` where ``v`` dominates ``u`` (loop back edges)."""
        dom = self.dominators()
        out = []
        for u, v in self.edges():
            if u in dom and v in dom.get(u, set()):
                out.append((u, v))
        return out

    def natural_loops(self) -> Dict[BlockId, Set[BlockId]]:
        """Header -> set of blocks in the loop (merged per header)."""
        preds = self.predecessors()
        loops: Dict[BlockId, Set[BlockId]] = {}
        for latch, header in self.back_edges():
            body: Set[BlockId] = {header}
            stack = [latch]
            while stack:
                bid = stack.pop()
                if bid in body:
                    continue
                body.add(bid)
                stack.extend(preds[bid])
            loops.setdefault(header, set()).update(body)
        return loops

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check graph invariants; raises :class:`IRError` on violation."""
        if self.entry is None:
            raise IRError("CFG has no entry block")
        halts = 0
        for block in self.blocks:
            if block.terminator is None:
                raise IRError(f"block {block.name!r} lacks a terminator")
            for succ in block.successors():
                if not 0 <= succ < len(self.blocks):
                    raise IRError(
                        f"block {block.name!r} targets missing block {succ}"
                    )
            if isinstance(block.terminator, Branch):
                cond = block.terminator.cond
                if not 0 <= cond < len(block.dfg):
                    raise IRError(
                        f"block {block.name!r}: branch condition n{cond} "
                        "is not in its DFG"
                    )
            if isinstance(block.terminator, Halt):
                halts += 1
            for var, node_id in block.outputs.items():
                if not 0 <= node_id < len(block.dfg):
                    raise IRError(
                        f"block {block.name!r}: output {var!r} binds missing "
                        f"node n{node_id}"
                    )
            block.dfg.validate()
        if halts == 0:
            raise IRError("CFG has no exit (Halt) block")
