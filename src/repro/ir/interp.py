"""Functional interpreter for CDFGs, with dynamic trace capture.

Two execution engines share one semantics:

* the **compiled** engine translates each basic block to a Python function
  once (a per-block template JIT) — fast enough to run the paper-sized
  workloads of Table 5;
* the **walking** engine dispatches on :mod:`repro.ir.ops` evaluate
  functions node by node — slow, but independent, and used by tests to
  cross-check the compiled engine.

Both engines execute blocks in node-creation order (a topological order that
equals program order), apply live-out bindings to the environment at block
end, and follow terminators until ``Halt``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import InterpreterError
from repro.ir.cdfg import CDFG
from repro.ir.cfg import BasicBlock, BlockId, Branch, Halt, Jump
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode, op_info
from repro.ir.trace import DynamicTrace

#: opcodes inlined as Python operators by the block compiler
_INLINE_BINOPS = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.LT: "<",
    Opcode.LE: "<=",
    Opcode.GT: ">",
    Opcode.GE: ">=",
    Opcode.EQ: "==",
    Opcode.NE: "!=",
}

_COMPARE_OPS = {Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE,
                Opcode.EQ, Opcode.NE}


@dataclass
class ExecutionResult:
    """Outcome of a kernel interpretation."""

    memory: Dict[str, np.ndarray]
    env: Dict[str, float]
    trace: DynamicTrace
    steps: int

    def array(self, name: str) -> np.ndarray:
        return self.memory[name]


def _oob(kernel: str, block: str, array: str, index: int) -> None:
    raise InterpreterError(
        f"{kernel}/{block}: out-of-bounds access {array}[{index}]"
    )


class _BlockProgram:
    """A basic block compiled to a Python callable.

    The callable has signature ``fn(env, memory) -> cond`` where ``cond`` is
    the branch condition value (or ``None`` for jumps/halts); live-out
    variables are written into ``env`` directly.
    """

    def __init__(self, kernel: str, block: BasicBlock) -> None:
        self.block = block
        self.fn = self._compile(kernel, block)

    @staticmethod
    def _compile(kernel: str, block: BasicBlock) -> Callable:
        dfg = block.dfg
        lines: List[str] = [f"def _bb(env, memory):"]
        body: List[str] = []
        helpers: Dict[str, object] = {"_oob": _oob}
        array_vars: Dict[str, str] = {}

        def arr_var(name: str) -> str:
            if name not in array_vars:
                array_vars[name] = f"_m{len(array_vars)}"
            return array_vars[name]

        for node in dfg.nodes:
            v = f"v{node.node_id}"
            ops = [f"v{o}" for o in node.operands]
            opcode = node.opcode
            if opcode is Opcode.CONST:
                body.append(f"{v} = {node.value!r}")
            elif opcode is Opcode.INPUT:
                body.append(f"{v} = env[{node.var!r}]")
            elif opcode is Opcode.LOAD:
                m = arr_var(node.array)
                body.append(f"_i = int({ops[0]})")
                body.append(
                    f"if not 0 <= _i < {m}.shape[0]: "
                    f"_oob({kernel!r}, {block.name!r}, {node.array!r}, _i)"
                )
                body.append(f"{v} = {m}[_i].item()")
            elif opcode is Opcode.STORE:
                m = arr_var(node.array)
                body.append(f"_i = int({ops[0]})")
                body.append(
                    f"if not 0 <= _i < {m}.shape[0]: "
                    f"_oob({kernel!r}, {block.name!r}, {node.array!r}, _i)"
                )
                body.append(f"{m}[_i] = {ops[1]}")
            elif opcode in _INLINE_BINOPS:
                expr = f"{ops[0]} {_INLINE_BINOPS[opcode]} {ops[1]}"
                if opcode in _COMPARE_OPS:
                    expr = f"int({expr})"
                body.append(f"{v} = {expr}")
            elif opcode is Opcode.SELECT:
                body.append(f"{v} = {ops[1]} if {ops[0]} else {ops[2]}")
            elif opcode is Opcode.MIN:
                body.append(f"{v} = min({ops[0]}, {ops[1]})")
            elif opcode is Opcode.MAX:
                body.append(f"{v} = max({ops[0]}, {ops[1]})")
            elif opcode is Opcode.ABS:
                body.append(f"{v} = abs({ops[0]})")
            elif opcode is Opcode.NEG:
                body.append(f"{v} = -{ops[0]}")
            else:
                # Delegate to the canonical evaluate function so both
                # engines share one definition of the tricky semantics
                # (C-style div/mod, 32-bit logic, nonlinear ops).
                helper = f"_f{node.node_id}"
                helpers[helper] = op_info(opcode).evaluate
                body.append(f"{v} = {helper}({', '.join(ops)})")

        for var, node_id in block.outputs.items():
            body.append(f"env[{var!r}] = v{node_id}")

        term = block.terminator
        if isinstance(term, Branch):
            body.append(f"return v{term.cond}")
        else:
            body.append("return None")

        prologue = [
            f"    {var} = memory[{name!r}]"
            for name, var in array_vars.items()
        ]
        source = "\n".join(
            lines + prologue + [f"    {line}" for line in body]
        )
        namespace: Dict[str, object] = dict(helpers)
        exec(source, namespace)  # noqa: S102 - generated from trusted IR
        return namespace["_bb"]


#: Compiled block programs, cached per CDFG object across Interpreter
#: instances.  Workload instances, repeated ``run()`` calls, and tests
#: re-interpret the same (immutable-after-build) CDFG many times; the
#: template JIT is the dominant setup cost, so pay it once.  Weak keys
#: let a discarded kernel free its compiled code.
_COMPILED_CACHE: "weakref.WeakKeyDictionary[CDFG, List[_BlockProgram]]" = (
    weakref.WeakKeyDictionary()
)


def _compiled_programs(cdfg: CDFG) -> List[_BlockProgram]:
    programs = _COMPILED_CACHE.get(cdfg)
    if programs is None or len(programs) != len(cdfg.blocks):
        programs = [
            _BlockProgram(cdfg.name, block) for block in cdfg.blocks
        ]
        _COMPILED_CACHE[cdfg] = programs
    return programs


class Interpreter:
    """Executes a CDFG against concrete memory and parameters."""

    def __init__(self, cdfg: CDFG, *, engine: str = "compiled") -> None:
        if engine not in ("compiled", "walking"):
            raise InterpreterError(f"unknown engine {engine!r}")
        self.cdfg = cdfg
        self.engine = engine
        self._programs: Optional[List[_BlockProgram]] = None
        if engine == "compiled":
            self._programs = _compiled_programs(cdfg)

    # ------------------------------------------------------------------
    def run(
        self,
        memory: Mapping[str, np.ndarray],
        params: Optional[Mapping[str, float]] = None,
        *,
        max_steps: int = 50_000_000,
        collect_trace: bool = True,
    ) -> ExecutionResult:
        """Execute the kernel.

        Args:
            memory: array name -> 1-D numpy array; copied before execution.
            params: runtime scalar parameters (must cover ``cdfg.params``).
            max_steps: block-execution budget (guards non-termination).
            collect_trace: record the dynamic BB trace (small overhead).

        Returns:
            :class:`ExecutionResult` with final memory, environment, trace.
        """
        params = dict(params or {})
        missing = [p for p in self.cdfg.params if p not in params]
        if missing:
            raise InterpreterError(
                f"kernel {self.cdfg.name!r} missing parameters: {missing}"
            )
        mem: Dict[str, np.ndarray] = {}
        for name in self.cdfg.arrays:
            if name not in memory:
                raise InterpreterError(
                    f"kernel {self.cdfg.name!r} missing array {name!r}"
                )
            array = np.asarray(memory[name])
            if array.ndim != 1:
                raise InterpreterError(
                    f"array {name!r} must be 1-D (got shape {array.shape})"
                )
            mem[name] = array.copy()

        env: Dict[str, float] = dict(params)
        trace = DynamicTrace(self.cdfg.name)
        steps = 0
        bid: Optional[BlockId] = self.cdfg.entry

        blocks = self.cdfg.blocks
        programs = self._programs
        while bid is not None:
            steps += 1
            if steps > max_steps:
                raise InterpreterError(
                    f"kernel {self.cdfg.name!r} exceeded {max_steps} block "
                    "executions; non-terminating?"
                )
            if collect_trace:
                trace.record(bid)
            block = blocks[bid]
            if programs is not None:
                try:
                    cond = programs[bid].fn(env, mem)
                except KeyError as exc:
                    raise InterpreterError(
                        f"{self.cdfg.name}/{block.name}: variable {exc} "
                        "read before assignment"
                    )
            else:
                cond = self._walk_block(block, env, mem)
            term = block.terminator
            if isinstance(term, Jump):
                bid = term.target
            elif isinstance(term, Branch):
                bid = term.if_true if cond else term.if_false
            else:
                bid = None
        trace.finish()
        return ExecutionResult(mem, env, trace, steps)

    # ------------------------------------------------------------------
    def _walk_block(
        self,
        block: BasicBlock,
        env: Dict[str, float],
        mem: Dict[str, np.ndarray],
    ):
        """Reference (slow) engine: per-node dispatch via op_info."""
        dfg = block.dfg
        vals: List[float] = [0] * len(dfg)
        for node in dfg.nodes:
            opcode = node.opcode
            if opcode is Opcode.CONST:
                vals[node.node_id] = node.value
            elif opcode is Opcode.INPUT:
                try:
                    vals[node.node_id] = env[node.var]
                except KeyError:
                    raise InterpreterError(
                        f"{self.cdfg.name}/{block.name}: variable "
                        f"{node.var!r} read before assignment"
                    )
            elif opcode is Opcode.LOAD:
                array = mem[node.array]
                idx = int(vals[node.operands[0]])
                if not 0 <= idx < array.shape[0]:
                    _oob(self.cdfg.name, block.name, node.array, idx)
                vals[node.node_id] = array[idx].item()
            elif opcode is Opcode.STORE:
                array = mem[node.array]
                idx = int(vals[node.operands[0]])
                if not 0 <= idx < array.shape[0]:
                    _oob(self.cdfg.name, block.name, node.array, idx)
                array[idx] = vals[node.operands[1]]
            else:
                fn = op_info(opcode).evaluate
                assert fn is not None
                vals[node.node_id] = fn(*(vals[o] for o in node.operands))
        for var, node_id in block.outputs.items():
            env[var] = vals[node_id]
        term = block.terminator
        if isinstance(term, Branch):
            return vals[term.cond]
        return None
