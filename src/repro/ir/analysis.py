"""Static + dynamic analyses over CDFGs and traces.

These produce the kernel-characterisation quantities the paper reports:

* **operators under branch %** — the secondary axis of Fig. 11: the share of
  dynamically executed FU operators that live in branch-divergent regions
  (these are the operators a von Neumann PE wastes under Predication);
* **control flow form metrics** — Table 1's qualitative rows (nested
  branches, imperfect/nested/serial loops) derived from the CDFG structure;
* **pipelineability** — how much of the dynamic work sits in long innermost
  loop bursts, which decides how much Agile PE Assignment can help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ir.cdfg import CDFG, LoopNest
from repro.ir.cfg import BlockId, BlockRole, Branch
from repro.ir.trace import DynamicTrace


@dataclass(frozen=True)
class ControlFlowProfile:
    """Structural + dynamic control flow characterisation of one kernel."""

    kernel: str
    blocks: int
    static_ops: int
    dynamic_ops: int
    loop_count: int
    max_loop_depth: int
    imperfect: bool
    serial_loops: int
    divergent_branches: int
    max_branch_nesting: int
    ops_under_branch_pct: float
    innermost_burst_ops_pct: float
    mean_innermost_run: float

    def table1_row(self) -> Dict[str, str]:
        """Qualitative Table 1 style description."""
        if self.divergent_branches == 0:
            branch = "N/A"
        elif self.max_branch_nesting > 1:
            branch = "Nested branches"
        else:
            branch = "Branches"
        loops: List[str] = []
        if self.max_loop_depth > 1:
            loops.append("Imperfect nested" if self.imperfect else "Nested")
        elif self.loop_count:
            loops.append("Single loop")
        if self.serial_loops > 1:
            loops.append("Serial Loops")
        return {
            "workload": self.kernel,
            "intensive_branch": branch,
            "intensive_loop": ", ".join(loops) if loops else "N/A",
        }


def branch_nesting_depth(cdfg: CDFG) -> int:
    """Maximum nesting depth of non-loop branches.

    Measured structurally: for each divergent branch block, count how many
    other divergent branches it is "under" (inside the divergent region of).
    """
    branch_blocks = cdfg.branch_blocks()
    if not branch_blocks:
        return 0
    depth: Dict[BlockId, int] = {}
    regions: Dict[BlockId, Set[BlockId]] = {}
    for block in branch_blocks:
        term = block.terminator
        assert isinstance(term, Branch)
        r_true = cdfg._forward_region(term.if_true, block.block_id)
        r_false = cdfg._forward_region(term.if_false, block.block_id)
        regions[block.block_id] = r_true.symmetric_difference(r_false)
    for block in branch_blocks:
        depth[block.block_id] = 1 + sum(
            1
            for other, region in regions.items()
            if other != block.block_id and block.block_id in region
        )
    return max(depth.values())


def serial_loop_count(cdfg: CDFG) -> int:
    """Number of sibling loops at the outermost loop level (serial loops)."""
    nests = cdfg.loop_nests()
    return sum(1 for nest in nests.values() if nest.parent is None)


def ops_under_branch_fraction(cdfg: CDFG, trace: DynamicTrace) -> float:
    """Dynamic share of FU operators inside branch-divergent regions."""
    total = trace.dynamic_op_count(cdfg)
    if total == 0:
        return 0.0
    under = cdfg.under_branch_blocks()
    return trace.dynamic_ops_in(cdfg, under) / total


def innermost_loop_blocks(cdfg: CDFG) -> Set[BlockId]:
    """Blocks belonging to innermost loops (candidate pipeline bodies)."""
    nests = cdfg.loop_nests()
    out: Set[BlockId] = set()
    for nest in cdfg.innermost_loops():
        out |= nest.own_blocks(nests)
    return out


def innermost_burst_fraction(cdfg: CDFG, trace: DynamicTrace) -> float:
    """Dynamic share of FU ops executed inside innermost loop bodies."""
    total = trace.dynamic_op_count(cdfg)
    if total == 0:
        return 0.0
    inner = innermost_loop_blocks(cdfg)
    return trace.dynamic_ops_in(cdfg, inner) / total


def mean_innermost_run_length(cdfg: CDFG, trace: DynamicTrace) -> float:
    """Average burst length over innermost loop-body blocks."""
    inner = innermost_loop_blocks(cdfg)
    body_blocks = [
        bid for bid in inner
        if cdfg.block(bid).role is BlockRole.LOOP_BODY
        or cdfg.block(bid).op_count > 0
    ]
    lengths = [
        trace.mean_run_length(bid)
        for bid in body_blocks
        if trace.execs_of(bid) > 0
    ]
    if not lengths:
        return 0.0
    return sum(lengths) / len(lengths)


@dataclass(frozen=True)
class LoopDynamics:
    """Dynamic behaviour of one natural loop.

    Attributes:
        header: Loop header block id.
        entries: How many times control entered the loop from outside.
        total_iterations: Total body iterations across all entries.
        depth: Static nesting depth (1 = outermost).
        innermost: Whether the loop has no nested loops.
    """

    header: BlockId
    entries: int
    total_iterations: int
    depth: int
    innermost: bool

    @property
    def mean_trip_count(self) -> float:
        """Average iterations per loop entry (pipeline burst length)."""
        if self.entries == 0:
            return 0.0
        return self.total_iterations / self.entries


def loop_dynamics(cdfg: CDFG, trace: DynamicTrace) -> Dict[BlockId, LoopDynamics]:
    """Per-loop entry and iteration counts from the dynamic trace.

    Entries are counted as trace edges into the header from outside the loop
    body; iterations as back edges (latch -> header).  Requires the trace's
    edge counts, which are complete because the builder never creates
    single-block self loops.
    """
    out: Dict[BlockId, LoopDynamics] = {}
    for header, nest in cdfg.loop_nests().items():
        entries = 0
        iterations = 0
        for (src, dst), count in trace.edge_counts.items():
            if dst != header:
                continue
            if src in nest.blocks:
                iterations += count
            else:
                entries += count
        out[header] = LoopDynamics(
            header=header,
            entries=entries,
            total_iterations=iterations,
            depth=nest.depth,
            innermost=not nest.children,
        )
    return out


def profile(cdfg: CDFG, trace: DynamicTrace) -> ControlFlowProfile:
    """Compute the full :class:`ControlFlowProfile` for one execution."""
    nests = cdfg.loop_nests()
    return ControlFlowProfile(
        kernel=cdfg.name,
        blocks=len(cdfg.blocks),
        static_ops=cdfg.total_op_count,
        dynamic_ops=trace.dynamic_op_count(cdfg),
        loop_count=len(nests),
        max_loop_depth=cdfg.max_loop_depth(),
        imperfect=cdfg.is_imperfect(),
        serial_loops=serial_loop_count(cdfg),
        divergent_branches=len(cdfg.branch_blocks()),
        max_branch_nesting=branch_nesting_depth(cdfg),
        ops_under_branch_pct=100.0 * ops_under_branch_fraction(cdfg, trace),
        innermost_burst_ops_pct=100.0 * innermost_burst_fraction(cdfg, trace),
        mean_innermost_run=mean_innermost_run_length(cdfg, trace),
    )
