"""KernelBuilder: a small DSL that constructs CDFGs.

This replaces the paper's annotated-C + modified-Clang frontend.  Kernels are
written as straight-line Python that *emits* IR; structured control flow is
expressed with context managers::

    k = KernelBuilder("saxpy")
    n = k.param("n")
    k.array("x"); k.array("y")
    with k.loop("i", 0, n) as i:
        xi = k.load("x", i)
        yi = k.load("y", i)
        k.store("y", i, xi * 2 + yi)
    cdfg = k.build()

Branches::

    with k.branch(a < b) as br:
        ...            # taken path
    with br.orelse():
        ...            # not-taken path

Values flow across blocks through named variables; a :class:`Value` produced
in one block and used in another is automatically spilled to a synthetic
variable (the CDFG live-in/live-out mechanism the mapper sees).
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import BuilderError
from repro.ir.cdfg import CDFG
from repro.ir.cfg import BasicBlock, BlockRole, Branch, CFG, Halt, Jump
from repro.ir.dfg import NodeId
from repro.ir.ops import Opcode

Number = Union[int, float]
Operand = Union["Value", int, float]


class Value:
    """A handle to either a DFG node or a named variable.

    Node-backed values remember the block that produced them; variable-backed
    values resolve to a fresh ``INPUT`` read at each point of use, which is
    what gives loop variables their per-iteration semantics.
    """

    __slots__ = ("builder", "block_id", "node_id", "var")

    def __init__(self, builder: "KernelBuilder",
                 block_id: Optional[int] = None,
                 node_id: Optional[NodeId] = None,
                 var: Optional[str] = None) -> None:
        if (node_id is None) == (var is None):
            raise BuilderError("Value must be node-backed xor variable-backed")
        self.builder = builder
        self.block_id = block_id
        self.node_id = node_id
        self.var = var

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.ADD, self, other)

    def __radd__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.ADD, other, self)

    def __sub__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.SUB, self, other)

    def __rsub__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.SUB, other, self)

    def __mul__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.MUL, self, other)

    def __rmul__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.MUL, other, self)

    def __truediv__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.DIV, self, other)

    def __rtruediv__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.DIV, other, self)

    def __floordiv__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.DIV, self, other)

    def __rfloordiv__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.DIV, other, self)

    def __mod__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.MOD, self, other)

    def __neg__(self) -> "Value":
        return self.builder._unop(Opcode.NEG, self)

    # -- bitwise -------------------------------------------------------
    def __and__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.AND, self, other)

    def __or__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.OR, self, other)

    def __xor__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.XOR, self, other)

    def __invert__(self) -> "Value":
        return self.builder._unop(Opcode.NOT, self)

    def __lshift__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.SHL, self, other)

    def __rshift__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.SHR, self, other)

    # -- comparisons (return IR values, not Python bools) ---------------
    def __lt__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.LT, self, other)

    def __le__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.LE, self, other)

    def __gt__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.GT, self, other)

    def __ge__(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.GE, self, other)

    def eq(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.EQ, self, other)

    def ne(self, other: Operand) -> "Value":
        return self.builder._binop(Opcode.NE, self, other)

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:  # identity, not IR equality
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.var is not None:
            return f"Value(%{self.var})"
        return f"Value(bb{self.block_id}:n{self.node_id})"


class BranchScope:
    """Context handle returned by :meth:`KernelBuilder.branch`."""

    def __init__(self, builder: "KernelBuilder", then_blk: BasicBlock,
                 else_blk: BasicBlock, merge_blk: BasicBlock) -> None:
        self._builder = builder
        self._then = then_blk
        self._else = else_blk
        self._merge = merge_blk
        self._then_done = False
        self._else_done = False

    # The scope itself acts as the "then" context manager.
    def __enter__(self) -> "BranchScope":
        if self._then_done:
            raise BuilderError("branch 'then' arm entered twice")
        self._builder._current = self._then
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        self._then_done = True
        self._builder._seal_to(self._merge)

    @contextlib.contextmanager
    def orelse(self):
        """Open the not-taken arm."""
        if not self._then_done:
            raise BuilderError("orelse() before the 'then' arm completed")
        if self._else_done:
            raise BuilderError("branch 'orelse' arm entered twice")
        # Clear the pre-sealed jump so the arm is open for emission.
        self._else.terminator = None
        self._builder._current = self._else
        try:
            yield self
        finally:
            self._else_done = True
            self._builder._seal_to(self._merge)


class KernelBuilder:
    """Constructs a :class:`~repro.ir.cdfg.CDFG` imperatively."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._cfg = CFG()
        self._current: BasicBlock = self._cfg.new_block("entry")
        self._params: List[str] = []
        self._arrays: List[str] = []
        self._tmp_counter = 0
        self._loop_counter = 0
        self._branch_counter = 0
        #: per-block map of variables assigned within the block
        self._block_defs: Dict[int, Dict[str, NodeId]] = {}
        self._built = False

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def param(self, name: str) -> Value:
        """Declare a runtime scalar parameter; returns a variable value."""
        if name in self._params:
            raise BuilderError(f"parameter {name!r} declared twice")
        self._params.append(name)
        return Value(self, var=name)

    def array(self, name: str) -> str:
        """Declare a scratchpad array used by loads/stores."""
        if name not in self._arrays:
            self._arrays.append(name)
        return name

    # ------------------------------------------------------------------
    # Low-level emission
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._built:
            raise BuilderError("builder already finalized by build()")
        if self._current.terminator is not None:
            raise BuilderError(
                f"emitting into sealed block {self._current.name!r}"
            )

    def _as_node(self, operand: Operand) -> NodeId:
        """Materialise ``operand`` as a node id in the current block."""
        block = self._current
        if isinstance(operand, (int, float)):
            return block.dfg.const(operand)
        if not isinstance(operand, Value):
            raise BuilderError(f"cannot use {operand!r} as an IR operand")
        if operand.builder is not self:
            raise BuilderError("value belongs to a different KernelBuilder")
        if operand.var is not None:
            defs = self._block_defs.get(block.block_id, {})
            if operand.var in defs:
                return defs[operand.var]
            return block.dfg.input(operand.var)
        if operand.block_id == block.block_id:
            assert operand.node_id is not None
            return operand.node_id
        # Cross-block use: spill through a synthetic variable.
        assert operand.block_id is not None and operand.node_id is not None
        producer = self._cfg.block(operand.block_id)
        spill = f".t{operand.block_id}_{operand.node_id}"
        producer.outputs.setdefault(spill, operand.node_id)
        defs = self._block_defs.get(block.block_id, {})
        if spill in defs:  # pragma: no cover - defensive
            return defs[spill]
        return block.dfg.input(spill)

    def _wrap(self, node_id: NodeId) -> Value:
        return Value(self, block_id=self._current.block_id, node_id=node_id)

    def _binop(self, opcode: Opcode, a: Operand, b: Operand) -> Value:
        self._check_open()
        na = self._as_node(a)
        nb = self._as_node(b)
        return self._wrap(self._current.dfg.add(opcode, (na, nb)))

    def _unop(self, opcode: Opcode, a: Operand) -> Value:
        self._check_open()
        na = self._as_node(a)
        return self._wrap(self._current.dfg.add(opcode, (na,)))

    # ------------------------------------------------------------------
    # Public op helpers
    # ------------------------------------------------------------------
    def const(self, value: Number) -> Value:
        self._check_open()
        return self._wrap(self._current.dfg.const(value))

    def load(self, array: str, index: Operand) -> Value:
        self._check_open()
        if array not in self._arrays:
            raise BuilderError(f"array {array!r} not declared")
        idx = self._as_node(index)
        return self._wrap(
            self._current.dfg.add(Opcode.LOAD, (idx,), array=array)
        )

    def store(self, array: str, index: Operand, value: Operand) -> None:
        self._check_open()
        if array not in self._arrays:
            raise BuilderError(f"array {array!r} not declared")
        idx = self._as_node(index)
        val = self._as_node(value)
        self._current.dfg.add(Opcode.STORE, (idx, val), array=array)

    def minimum(self, a: Operand, b: Operand) -> Value:
        return self._binop(Opcode.MIN, a, b)

    def maximum(self, a: Operand, b: Operand) -> Value:
        return self._binop(Opcode.MAX, a, b)

    def absolute(self, a: Operand) -> Value:
        return self._unop(Opcode.ABS, a)

    def select(self, cond: Operand, if_true: Operand,
               if_false: Operand) -> Value:
        """Predicated selection: ``cond ? if_true : if_false``."""
        self._check_open()
        nc = self._as_node(cond)
        na = self._as_node(if_true)
        nb = self._as_node(if_false)
        return self._wrap(self._current.dfg.add(Opcode.SELECT, (nc, na, nb)))

    def log(self, a: Operand) -> Value:
        return self._unop(Opcode.LOG, a)

    def exp(self, a: Operand) -> Value:
        return self._unop(Opcode.EXP, a)

    def sqrt(self, a: Operand) -> Value:
        return self._unop(Opcode.SQRT, a)

    def sigmoid(self, a: Operand) -> Value:
        return self._unop(Opcode.SIGMOID, a)

    def sin(self, a: Operand) -> Value:
        return self._unop(Opcode.SIN, a)

    def cos(self, a: Operand) -> Value:
        return self._unop(Opcode.COS, a)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def set(self, name: str, value: Operand) -> Value:
        """Assign variable ``name``; later reads in any block see it."""
        self._check_open()
        node = self._as_node(value)
        block = self._current
        block.outputs[name] = node
        self._block_defs.setdefault(block.block_id, {})[name] = node
        return Value(self, var=name)

    def get(self, name: str) -> Value:
        """Read variable ``name`` (resolved at each point of use)."""
        return Value(self, var=name)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _seal_to(self, target: BasicBlock) -> None:
        """Seal the current block with a jump to ``target`` (if open) and
        make ``target`` current."""
        if self._current.terminator is None:
            self._current.terminator = Jump(target.block_id)
        self._current = target

    @contextlib.contextmanager
    def loop(self, var: str, start: Operand, stop: Operand,
             step: Operand = 1, *, annotations: Optional[Dict] = None):
        """A counted loop ``for var in range(start, stop, step)``.

        ``step`` must be a positive compile-time constant; the loop condition
        is ``var < stop``, re-evaluated in the loop header each iteration.
        """
        self._check_open()
        if isinstance(step, (int, float)) and step <= 0:
            raise BuilderError("loop step must be positive")
        self._loop_counter += 1
        tag = f"{var}{self._loop_counter}"

        self.set(var, start)
        header = self._cfg.new_block(f"loop_{tag}_head", BlockRole.LOOP_HEADER)
        header.loop_var = var
        if annotations:
            header.annotations.update(annotations)
        body = self._cfg.new_block(f"loop_{tag}_body", BlockRole.LOOP_BODY)
        after = self._cfg.new_block(f"loop_{tag}_after", BlockRole.MERGE)
        self._current.terminator = Jump(header.block_id)

        self._current = header
        cond = self.get(var) < stop
        assert cond.node_id is not None
        header.terminator = Branch(
            cond.node_id, body.block_id, after.block_id, is_loop_branch=True
        )

        self._current = body
        try:
            yield Value(self, var=var)
        finally:
            # Increment in whatever block the body ended in, then back-edge.
            self._check_open()
            self.set(var, self.get(var) + step)
            self._current.annotations.setdefault("loop_latch_for", var)
            self._current.terminator = Jump(header.block_id)
            self._current = after

    @contextlib.contextmanager
    def while_(self, cond_fn, *, name: str = "while",
               annotations: Optional[Dict] = None):
        """A while loop; ``cond_fn()`` is invoked to build the condition in
        the header block each time the builder lays it out."""
        self._check_open()
        self._loop_counter += 1
        tag = f"{name}{self._loop_counter}"
        header = self._cfg.new_block(f"{tag}_head", BlockRole.LOOP_HEADER)
        if annotations:
            header.annotations.update(annotations)
        body = self._cfg.new_block(f"{tag}_body", BlockRole.LOOP_BODY)
        after = self._cfg.new_block(f"{tag}_after", BlockRole.MERGE)
        self._current.terminator = Jump(header.block_id)

        self._current = header
        cond = cond_fn()
        if not isinstance(cond, Value) or cond.node_id is None:
            raise BuilderError("while_ condition must be a node-backed Value")
        if cond.block_id != header.block_id:
            cond_id = self._as_node(cond)
        else:
            cond_id = cond.node_id
        header.terminator = Branch(
            cond_id, body.block_id, after.block_id, is_loop_branch=True
        )

        self._current = body
        try:
            yield
        finally:
            self._check_open()
            self._current.annotations.setdefault("loop_latch_for", tag)
            self._current.terminator = Jump(header.block_id)
            self._current = after

    def branch(self, cond: Operand, *, name: str = "br") -> BranchScope:
        """Open a two-way branch; use as ``with k.branch(c) as br: ...`` and
        optionally ``with br.orelse(): ...``."""
        self._check_open()
        self._branch_counter += 1
        tag = f"{name}{self._branch_counter}"
        cond_id = self._as_node(cond)
        then_blk = self._cfg.new_block(f"{tag}_then", BlockRole.BRANCH_ARM)
        else_blk = self._cfg.new_block(f"{tag}_else", BlockRole.BRANCH_ARM)
        merge_blk = self._cfg.new_block(f"{tag}_merge", BlockRole.MERGE)
        self._current.terminator = Branch(
            cond_id, then_blk.block_id, else_blk.block_id
        )
        # Pre-seal both arms; nested constructs overwrite as needed.
        then_blk.terminator = None
        else_blk.terminator = Jump(merge_blk.block_id)
        return BranchScope(self, then_blk, else_blk, merge_blk)

    def if_(self, cond: Operand, *, name: str = "if") -> BranchScope:
        """Alias of :meth:`branch` for a then-only reading style."""
        return self.branch(cond, name=name)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> CDFG:
        """Seal the kernel, validate it, and return the CDFG."""
        if self._built:
            raise BuilderError("build() called twice")
        if self._current.terminator is None:
            self._current.terminator = Halt()
        else:  # pragma: no cover - defensive
            raise BuilderError("kernel ended inside an unclosed scope")
        self._built = True
        # Seal any dangling (unentered) branch arms.
        for block in self._cfg.blocks:
            if block.terminator is None:
                raise BuilderError(f"block {block.name!r} left unterminated")
        cdfg = CDFG(self.name, self._cfg, self._params, self._arrays)
        cdfg.validate()
        return cdfg
