"""Per-basic-block data flow graphs.

A :class:`DFG` is a pure dataflow graph: nodes are operations
(:class:`~repro.ir.ops.Opcode`), edges are value dependencies.  Node ids are
dense integers in creation order; creation order is guaranteed to be a valid
topological order (operands must exist before use), which both the
interpreter and the mapper rely on.

Side effects (stores) carry no result; their program order is preserved by
the creation order.  Live-in variables enter through ``INPUT`` nodes and
live-out variables are named bindings to node ids (held by the enclosing
:class:`~repro.ir.cfg.BasicBlock`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.ops import Opcode, OpClass, op_info

NodeId = int


@dataclass
class Node:
    """One operation in a DFG.

    Attributes:
        node_id: Dense integer id, unique within the DFG.
        opcode: The operation.
        operands: Ids of producer nodes, in positional order.
        array: For ``LOAD``/``STORE``, the scratchpad array name.
        value: For ``CONST``, the literal value.
        var: For ``INPUT``, the live-in variable name.
    """

    node_id: NodeId
    opcode: Opcode
    operands: Tuple[NodeId, ...] = ()
    array: Optional[str] = None
    value: Optional[float] = None
    var: Optional[str] = None

    @property
    def info(self):
        return op_info(self.opcode)

    @property
    def needs_fu(self) -> bool:
        return self.info.needs_fu

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = ""
        if self.array is not None:
            extra = f" @{self.array}"
        if self.value is not None:
            extra = f" ={self.value}"
        if self.var is not None:
            extra = f" %{self.var}"
        ops = ", ".join(f"n{i}" for i in self.operands)
        return f"n{self.node_id} = {self.opcode.value}({ops}){extra}"


class DFG:
    """A growable data flow graph embedded in one basic block."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self._const_cache: Dict[float, NodeId] = {}
        self._input_cache: Dict[str, NodeId] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        opcode: Opcode,
        operands: Sequence[NodeId] = (),
        *,
        array: Optional[str] = None,
        value: Optional[float] = None,
        var: Optional[str] = None,
    ) -> NodeId:
        """Append a node and return its id.

        Raises:
            IRError: on arity mismatch or dangling operand ids.
        """
        info = op_info(opcode)
        if len(operands) != info.arity:
            raise IRError(
                f"{opcode.value} expects {info.arity} operands, "
                f"got {len(operands)}"
            )
        for operand in operands:
            if not 0 <= operand < len(self.nodes):
                raise IRError(
                    f"operand n{operand} does not exist (DFG has "
                    f"{len(self.nodes)} nodes)"
                )
        if opcode in (Opcode.LOAD, Opcode.STORE) and not array:
            raise IRError(f"{opcode.value} requires an array name")
        node_id = len(self.nodes)
        self.nodes.append(
            Node(node_id, opcode, tuple(operands), array=array, value=value,
                 var=var)
        )
        return node_id

    def const(self, value: float) -> NodeId:
        """Return a (deduplicated) constant node."""
        key = value
        if key not in self._const_cache:
            self._const_cache[key] = self.add(Opcode.CONST, value=value)
        return self._const_cache[key]

    def input(self, var: str) -> NodeId:
        """Return a (deduplicated) live-in read of variable ``var``."""
        if var not in self._input_cache:
            self._input_cache[var] = self.add(Opcode.INPUT, var=var)
        return self._input_cache[var]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def node(self, node_id: NodeId) -> Node:
        return self.nodes[node_id]

    @property
    def fu_nodes(self) -> List[Node]:
        """Nodes that occupy a function unit when mapped (non-meta)."""
        return [n for n in self.nodes if n.needs_fu]

    @property
    def op_count(self) -> int:
        """Number of FU operations (the paper's "operators")."""
        return len(self.fu_nodes)

    @property
    def live_ins(self) -> List[str]:
        """Live-in variable names, in first-use order."""
        seen = []
        for node in self.nodes:
            if node.opcode is Opcode.INPUT and node.var not in seen:
                seen.append(node.var)
        return seen

    def consumers(self) -> Dict[NodeId, List[NodeId]]:
        """Map producer id -> list of consumer ids."""
        out: Dict[NodeId, List[NodeId]] = {n.node_id: [] for n in self.nodes}
        for node in self.nodes:
            for operand in node.operands:
                out[operand].append(node.node_id)
        return out

    def critical_path_length(self) -> int:
        """Longest latency chain through the DFG, in cycles.

        This is the drain time of a spatial pipeline executing the block: the
        longest accumulated FU latency over any dependence chain.
        """
        depth: Dict[NodeId, int] = {}
        for node in self.nodes:  # creation order is topological
            base = max((depth[o] for o in node.operands), default=0)
            depth[node.node_id] = base + node.info.latency
        return max(depth.values(), default=0)

    def depth_of(self, node_id: NodeId) -> int:
        """Accumulated latency from DFG inputs to the *output* of a node."""
        depth: Dict[NodeId, int] = {}
        for node in self.nodes:
            base = max((depth[o] for o in node.operands), default=0)
            depth[node.node_id] = base + node.info.latency
        return depth[node_id]

    def op_histogram(self) -> Dict[Opcode, int]:
        """Opcode -> static count, FU ops only."""
        hist: Dict[Opcode, int] = {}
        for node in self.fu_nodes:
            hist[node.opcode] = hist.get(node.opcode, 0) + 1
        return hist

    def nonlinear_op_count(self) -> int:
        return sum(
            1 for n in self.fu_nodes if n.info.op_class is OpClass.NONLINEAR
        )

    def memory_op_count(self) -> int:
        return sum(1 for n in self.fu_nodes if n.info.is_memory)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IRError` on violation.

        Invariants: operand ids precede their consumers (topological creation
        order), arities match, memory nodes carry array names.
        """
        for node in self.nodes:
            info = node.info
            if len(node.operands) != info.arity:
                raise IRError(f"node {node!r}: arity mismatch")
            for operand in node.operands:
                if operand >= node.node_id:
                    raise IRError(
                        f"node {node!r}: operand n{operand} does not precede it"
                    )
            if info.is_memory and not node.array:
                raise IRError(f"node {node!r}: memory op without array")
            if node.opcode is Opcode.CONST and node.value is None:
                raise IRError(f"node {node!r}: const without value")
            if node.opcode is Opcode.INPUT and not node.var:
                raise IRError(f"node {node!r}: input without variable name")
