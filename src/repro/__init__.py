"""Marionette: a spatial architecture with a decoupled control flow plane.

Reproduction of Deng et al., *Towards Efficient Control Flow Handling in
Spatial Architecture via Architecting the Control Flow Plane* (MICRO 2023).

Public API layers:

* :mod:`repro.ir` — the CDFG intermediate representation, KernelBuilder DSL,
  functional interpreter and analyses;
* :mod:`repro.arch` — hardware structure: parameters, PE grid, data mesh and
  the CS-Benes control network;
* :mod:`repro.isa` — the Marionette control-plane/data-plane ISA;
* :mod:`repro.sim` — micro-architectural cycle simulator of the PE array;
* :mod:`repro.compiler` — placement, routing, and the Agile PE Assignment
  scheduler;
* :mod:`repro.baselines` — execution-model simulators for Marionette and the
  comparison architectures (von Neumann / dataflow PE arrays, Softbrain,
  TIA, REVEL, RipTide);
* :mod:`repro.workloads` — the 13 evaluation kernels;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
