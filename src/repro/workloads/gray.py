"""Gray Processing: RGB-to-luma conversion (non-intensive control flow).

Integer weighted sum with a divide, one flat loop over pixels.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import NON_INTENSIVE, Workload


class GrayProcessing(Workload):
    short = "GP"
    name = "gray"
    group = NON_INTENSIVE
    paper_size = "16384"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 64}, "small": {"n": 2048},
                "paper": {"n": 16384}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        k = KernelBuilder(self.name)
        k.array("r")
        k.array("g")
        k.array("b")
        k.array("gray")
        with k.loop("i", 0, n) as i:
            luma = (
                k.load("r", i) * 299
                + k.load("g", i) * 587
                + k.load("b", i) * 114
            ) / 1000
            k.store("gray", i, luma)
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        memory = {
            "r": rng.integers(0, 256, n),
            "g": rng.integers(0, 256, n),
            "b": rng.integers(0, 256, n),
            "gray": np.zeros(n, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        r = np.asarray(memory["r"])
        g = np.asarray(memory["g"])
        b = np.asarray(memory["b"])
        return {"gray": (299 * r + 587 * g + 114 * b) // 1000}
