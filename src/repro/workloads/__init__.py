"""The 13 evaluation workloads (paper Table 5).

Ten control-intensive kernels (Merge Sort, FFT, Viterbi, NW, Hough
Transform, CRC, ADPCM, SC Decode, LDPC Decode, GEMM) and three streaming
kernels (Conv-1d, Sigmoid, Gray Processing).  Every workload carries an
independent reference implementation; `WorkloadInstance.check()` validates
the IR kernel against it on concrete random inputs.
"""

from repro.workloads.base import (
    INTENSIVE,
    NON_INTENSIVE,
    SCALES,
    Workload,
    WorkloadInstance,
)
from repro.workloads.suite import (
    ALL_WORKLOADS,
    INTENSIVE_WORKLOADS,
    NON_INTENSIVE_WORKLOADS,
    get_workload,
)

__all__ = [
    "INTENSIVE",
    "NON_INTENSIVE",
    "SCALES",
    "Workload",
    "WorkloadInstance",
    "ALL_WORKLOADS",
    "INTENSIVE_WORKLOADS",
    "NON_INTENSIVE_WORKLOADS",
    "get_workload",
]
