"""ADPCM Encode (MiBench, IMA ADPCM): serial branch chains.

Control structure (Table 1): serial branches — sign handling, three
quantisation decisions, predictor clamping and index clamping, all
data-dependent, all on the critical path of a single flat loop.  There is
almost no pipelinable loop nest here, which is why Agile PE Assignment
barely helps ADPCM while the control network does (Fig. 16, left group).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload

#: IMA ADPCM step-size table (89 entries) and index adjustment table.
STEP_TABLE: List[int] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]
INDEX_TABLE: List[int] = [-1, -1, -1, -1, 2, 4, 6, 8]


class AdpcmEncode(Workload):
    short = "ADPCM"
    name = "adpcm"
    group = INTENSIVE
    paper_size = "2000 bytes"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 32}, "small": {"n": 500},
                "paper": {"n": 2000}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        k = KernelBuilder(self.name)
        k.array("pcm")
        k.array("step_table")
        k.array("index_table")
        k.array("code_out")
        k.set("pred", 0)
        k.set("index", 0)
        with k.loop("i", 0, n) as i:
            step = k.load("step_table", k.get("index"))
            diff = k.load("pcm", i) - k.get("pred")
            with k.branch(diff < 0) as sign_br:
                k.set("sign", 8)
                k.set("diff", 0 - diff)
            with sign_br.orelse():
                k.set("sign", 0)
                k.set("diff", diff)
            # Quantise |diff| into 3 bits (serial branch chain).
            k.set("code", 0)
            k.set("diffq", step >> 3)
            with k.branch(k.get("diff") >= step) as q4:
                k.set("code", 4)
                k.set("diff", k.get("diff") - step)
                k.set("diffq", k.get("diffq") + step)
            half = step >> 1
            with k.branch(k.get("diff") >= half) as q2:
                k.set("code", k.get("code") | 2)
                k.set("diff", k.get("diff") - half)
                k.set("diffq", k.get("diffq") + half)
            quarter = step >> 2
            with k.branch(k.get("diff") >= quarter) as q1:
                k.set("code", k.get("code") | 1)
                k.set("diffq", k.get("diffq") + quarter)
            # Predictor update (sign branch + clamping branches).
            with k.branch(k.get("sign").eq(8)) as pb:
                k.set("pred", k.get("pred") - k.get("diffq"))
            with pb.orelse():
                k.set("pred", k.get("pred") + k.get("diffq"))
            with k.branch(k.get("pred") > 32767) as c1:
                k.set("pred", 32767)
            with k.branch(k.get("pred") < -32768) as c2:
                k.set("pred", -32768)
            # Index update with clamping.
            k.set("index",
                  k.get("index") + k.load("index_table", k.get("code")))
            with k.branch(k.get("index") < 0) as c3:
                k.set("index", 0)
            with k.branch(k.get("index") > 88) as c4:
                k.set("index", 88)
            k.store("code_out", i, k.get("code") | k.get("sign"))
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        # A smooth-ish signal keeps the predictor in realistic regimes.
        t = np.arange(n)
        signal = (
            6000 * np.sin(t / 9.0) + 2500 * np.sin(t / 2.3)
            + rng.integers(-500, 501, n)
        ).astype(np.int64)
        signal = np.clip(signal, -32768, 32767)
        memory = {
            "pcm": signal,
            "step_table": np.array(STEP_TABLE, dtype=np.int64),
            "index_table": np.array(INDEX_TABLE, dtype=np.int64),
            "code_out": np.zeros(n, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        pred, index = 0, 0
        codes = []
        for sample in np.asarray(memory["pcm"]):
            step = STEP_TABLE[index]
            diff = int(sample) - pred
            sign = 8 if diff < 0 else 0
            diff = -diff if diff < 0 else diff
            code = 0
            diffq = step >> 3
            if diff >= step:
                code = 4
                diff -= step
                diffq += step
            if diff >= step >> 1:
                code |= 2
                diff -= step >> 1
                diffq += step >> 1
            if diff >= step >> 2:
                code |= 1
                diffq += step >> 2
            pred = pred - diffq if sign else pred + diffq
            pred = max(-32768, min(32767, pred))
            index += INDEX_TABLE[code]
            index = max(0, min(88, index))
            codes.append(code | sign)
        return {"code_out": np.array(codes, dtype=np.int64)}
