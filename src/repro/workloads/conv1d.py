"""Conv-1d: single-layer 1-D convolution (non-intensive control flow).

One flat loop, taps unrolled in the body — the "simple single-layer loop"
comparison point of Section 6.2 used to show Marionette does not hurt
regular kernels (Fig. 17, right group).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import NON_INTENSIVE, Workload

#: filter width (unrolled into the loop body)
TAPS = 4


class Conv1d(Workload):
    short = "CO"
    name = "conv1d"
    group = NON_INTENSIVE
    paper_size = "16384"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 64}, "small": {"n": 2048},
                "paper": {"n": 16384}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        k = KernelBuilder(self.name)
        k.array("x")
        k.array("w")
        k.array("y")
        with k.loop("i", 0, n - TAPS + 1) as i:
            acc = k.load("x", i) * k.load("w", 0)
            for t in range(1, TAPS):
                acc = acc + k.load("x", i + t) * k.load("w", t)
            k.store("y", i, acc)
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        memory = {
            "x": rng.integers(-8, 9, n),
            "w": rng.integers(-3, 4, TAPS),
            "y": np.zeros(n, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        n = sizes["n"]
        x = np.asarray(memory["x"])
        w = np.asarray(memory["w"])
        out = np.zeros(n, dtype=np.int64)
        valid = n - TAPS + 1
        for t in range(TAPS):
            out[:valid] += x[t:t + valid] * w[t]
        return {"y": out}
