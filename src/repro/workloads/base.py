"""Workload framework: each benchmark provides a CDFG, inputs, a reference.

A :class:`Workload` subclass describes one of the paper's 13 benchmarks
(Table 5).  It can build itself at three scales:

* ``tiny`` — seconds-long unit-test sizes;
* ``small`` — default experiment sizes (minutes for the whole suite);
* ``paper`` — the exact Table 5 sizes.

``instance()`` returns a :class:`WorkloadInstance` binding the kernel to
concrete inputs plus an independently computed reference output, so the
functional interpreter (and, through it, every execution model's trace) is
checked against ground truth on every run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ir.cdfg import CDFG
from repro.ir.interp import ExecutionResult, Interpreter

SCALES = ("tiny", "small", "paper")

#: benchmark groups, matching Fig. 17's split
INTENSIVE = "intensive"
NON_INTENSIVE = "non_intensive"
#: user-supplied kernels ingested from on-disk packages (repro.kernels)
EXTERNAL = "external"


def outputs_match(actual: np.ndarray, expected: np.ndarray,
                  atol: float = 0.0) -> bool:
    """The suite's output-comparison rule, shared with external kernels.

    ``atol == 0`` demands exact equality (integer kernels); a positive
    tolerance compares floats with the same ``rtol`` every workload
    reference check uses.  Only ``len(expected)`` leading elements are
    compared, so a reference may cover a prefix of a larger region.
    """
    actual = np.asarray(actual)[: len(expected)]
    if atol == 0.0:
        return bool(np.array_equal(actual, expected))
    return bool(np.allclose(actual, expected, atol=atol, rtol=1e-6))


@dataclass
class WorkloadInstance:
    """A kernel bound to inputs and expected outputs."""

    workload: "Workload"
    cdfg: CDFG
    memory: Dict[str, np.ndarray]
    params: Dict[str, int]
    expected: Dict[str, np.ndarray]
    #: absolute tolerance for float outputs (0 = exact integer match)
    atol: float = 0.0
    _result: Optional[ExecutionResult] = None

    @property
    def name(self) -> str:
        return self.cdfg.name

    def run(self, *, engine: str = "compiled",
            max_steps: int = 50_000_000) -> ExecutionResult:
        """Interpret the kernel (cached)."""
        if self._result is None or engine != "compiled":
            result = Interpreter(self.cdfg, engine=engine).run(
                self.memory, self.params, max_steps=max_steps
            )
            if engine != "compiled":
                return result
            self._result = result
        return self._result

    def check(self) -> None:
        """Run and compare every expected output array against the
        reference; raises :class:`ReproError` on mismatch."""
        result = self.run()
        for name, expected in self.expected.items():
            actual = result.array(name)[: len(expected)]
            if not outputs_match(actual, expected, self.atol):
                bad = np.argwhere(
                    ~np.isclose(actual, expected, atol=max(self.atol, 1e-12))
                )
                raise ReproError(
                    f"{self.name}: output {name!r} mismatches reference "
                    f"(first bad index: {bad[0] if len(bad) else '?'})"
                )


class Workload(abc.ABC):
    """One benchmark of the evaluation suite."""

    #: short name used in figures ("MS", "FFT", ...)
    short = ""
    #: full name
    name = ""
    #: INTENSIVE or NON_INTENSIVE
    group = INTENSIVE
    #: Table 5 data-size note
    paper_size = ""

    @abc.abstractmethod
    def sizes(self, scale: str) -> Dict[str, int]:
        """Size parameters for a scale."""

    @abc.abstractmethod
    def build(self, sizes: Mapping[str, int]) -> CDFG:
        """Construct the kernel CDFG."""

    @abc.abstractmethod
    def inputs(self, sizes: Mapping[str, int],
               rng: np.random.Generator) -> Tuple[
                   Dict[str, np.ndarray], Dict[str, int]]:
        """Random inputs: (memory images, scalar parameters)."""

    @abc.abstractmethod
    def reference(self, sizes: Mapping[str, int],
                  memory: Mapping[str, np.ndarray],
                  params: Mapping[str, int]) -> Dict[str, np.ndarray]:
        """Independently computed expected outputs."""

    #: tolerance for float kernels
    atol = 0.0

    # ------------------------------------------------------------------
    def instance(self, scale: str = "small", *,
                 seed: int = 0) -> WorkloadInstance:
        if scale not in SCALES:
            raise ReproError(f"unknown scale {scale!r}; pick one of {SCALES}")
        sizes = self.sizes(scale)
        rng = np.random.default_rng(seed)
        cdfg = self.build(sizes)
        memory, params = self.inputs(sizes, rng)
        expected = self.reference(sizes, memory, params)
        return WorkloadInstance(
            workload=self, cdfg=cdfg, memory=memory, params=params,
            expected=expected, atol=self.atol,
        )
