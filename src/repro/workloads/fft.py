"""FFT (MachSuite): iterative radix-2 decimation-in-time.

Control structure (Table 1): innermost butterfly loop under imperfect
nested loops — the stage loop doubles the span (``while m <= n``), the
segment loop strides by a *data-dependent* step (``base += m``), and the
butterfly loop's bound is computed in an outer body (``half = m / 2``) —
the exact pattern that forces a von Neumann array through its CCU to
re-configure the inner loop generator.

Bit-reversal indices and twiddle factors are precomputed tables (the
standard MachSuite arrangement).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload


class Fft(Workload):
    short = "FFT"
    name = "fft"
    group = INTENSIVE
    paper_size = "1024 points"
    atol = 1e-6

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 16}, "small": {"n": 256},
                "paper": {"n": 1024}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        if n & (n - 1):
            raise ValueError("FFT size must be a power of two")
        k = KernelBuilder(self.name)
        k.array("re")     # input real
        k.array("im")     # input imag
        k.array("rev")    # bit-reversal permutation table
        k.array("twr")    # twiddle real, n/2 entries
        k.array("twi")    # twiddle imag, n/2 entries
        k.array("wr")     # working real
        k.array("wi")     # working imag
        # Bit-reversal gather.
        with k.loop("i", 0, n) as i:
            src = k.load("rev", i)
            k.store("wr", i, k.load("re", src))
            k.store("wi", i, k.load("im", src))
        # Stage loop: m = 2, 4, ..., n.
        k.set("m", 2)
        with k.while_(lambda: k.get("m") <= n, name="stage"):
            k.set("half", k.get("m") / 2)
            k.set("tstep", n / k.get("m"))
            k.set("base", 0)
            with k.while_(lambda: k.get("base") < n, name="segment"):
                with k.loop("j", 0, k.get("half")) as j:
                    idx1 = k.get("base") + j
                    idx2 = idx1 + k.get("half")
                    tw = j * k.get("tstep")
                    c = k.load("twr", tw)
                    s = k.load("twi", tw)
                    xr = k.load("wr", idx2)
                    xi = k.load("wi", idx2)
                    tr = xr * c - xi * s
                    ti = xr * s + xi * c
                    ur = k.load("wr", idx1)
                    ui = k.load("wi", idx1)
                    k.store("wr", idx1, ur + tr)
                    k.store("wi", idx1, ui + ti)
                    k.store("wr", idx2, ur - tr)
                    k.store("wi", idx2, ui - ti)
                k.set("base", k.get("base") + k.get("m"))
            k.set("m", k.get("m") * 2)
        return k.build()

    # ------------------------------------------------------------------
    @staticmethod
    def _tables(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        bits = n.bit_length() - 1
        rev = np.array(
            [int(format(i, f"0{bits}b")[::-1], 2) for i in range(n)]
        )
        angles = -2.0 * math.pi * np.arange(n // 2) / n
        return rev, np.cos(angles), np.sin(angles)

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        rev, twr, twi = self._tables(n)
        memory = {
            "re": rng.normal(0.0, 1.0, n),
            "im": rng.normal(0.0, 1.0, n),
            "rev": rev,
            "twr": twr,
            "twi": twi,
            "wr": np.zeros(n, dtype=np.float64),
            "wi": np.zeros(n, dtype=np.float64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        x = np.asarray(memory["re"]) + 1j * np.asarray(memory["im"])
        spectrum = np.fft.fft(x)
        return {"wr": spectrum.real, "wi": spectrum.imag}
