"""LDPC Decode: min-sum belief propagation on a regular code.

Control structure (Table 1): nested branches in the innermost loops (sign
extraction, running min1/min2 selection), imperfect nested loops (per-check
setup around per-edge loops) and serial loops (check pass, update pass,
decision pass per iteration).

The parity-check matrix is a random regular (row weight ``WC``) code built
from column permutations; messages are integer fixed-point LLRs, so the
whole decode is exact integer arithmetic and the reference matches
bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload

BIG = 1 << 20
#: edges per check row
WC = 6


class LdpcDecode(Workload):
    short = "LDPC"
    name = "ldpc"
    group = INTENSIVE
    paper_size = "20 iters; 128 code length"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {
            "tiny": {"n": 24, "iters": 2},
            "small": {"n": 96, "iters": 6},
            "paper": {"n": 128, "iters": 20},
        }[scale]

    # ------------------------------------------------------------------
    @staticmethod
    def _code(n: int, rng: np.random.Generator) -> np.ndarray:
        """Edge variable indices for n/2 checks of weight WC."""
        checks = n // 2
        edges = []
        for c in range(checks):
            vars_ = rng.choice(n, size=WC, replace=False)
            edges.extend(sorted(int(v) for v in vars_))
        return np.array(edges, dtype=np.int64)

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        iters = sizes["iters"]
        checks = n // 2
        k = KernelBuilder(self.name)
        k.array("edge_var")   # checks*WC edge -> variable index
        k.array("total")      # per-variable LLR accumulator
        k.array("c2v")        # check-to-variable messages per edge
        k.array("emag")       # per-edge |v2c| scratch
        k.array("esign")      # per-edge sign scratch
        k.array("hard")       # decoded bits
        with k.loop("it", 0, iters) as it:
            with k.loop("c", 0, checks) as c:
                k.set("ebase", c * WC)
                # Pass 1: signs, magnitudes, min1/min2.
                k.set("min1", BIG)
                k.set("min2", BIG)
                k.set("sgn", 0)
                with k.loop("e", 0, WC) as e:
                    k.set("eid", k.get("ebase") + e)
                    v2c = (
                        k.load("total", k.load("edge_var", k.get("eid")))
                        - k.load("c2v", k.get("eid"))
                    )
                    with k.branch(v2c < 0) as sb:
                        k.set("s", 1)
                        k.set("mag", 0 - v2c)
                    with sb.orelse():
                        k.set("s", 0)
                        k.set("mag", v2c)
                    k.set("sgn", k.get("sgn") ^ k.get("s"))
                    k.store("esign", k.get("eid"), k.get("s"))
                    k.store("emag", k.get("eid"), k.get("mag"))
                    with k.branch(k.get("mag") < k.get("min1")) as m1:
                        k.set("min2", k.get("min1"))
                        k.set("min1", k.get("mag"))
                    with m1.orelse():
                        with k.branch(k.get("mag") < k.get("min2")) as m2:
                            k.set("min2", k.get("mag"))
                # Pass 2: emit messages, update totals in place.
                with k.loop("e2", 0, WC) as e2:
                    k.set("eid", k.get("ebase") + e2)
                    with k.branch(
                        k.load("emag", k.get("eid")).eq(k.get("min1"))
                    ) as pick:
                        k.set("m", k.get("min2"))
                    with pick.orelse():
                        k.set("m", k.get("min1"))
                    s_out = k.get("sgn") ^ k.load("esign", k.get("eid"))
                    with k.branch(s_out.eq(1)) as neg:
                        k.set("newmsg", 0 - k.get("m"))
                    with neg.orelse():
                        k.set("newmsg", k.get("m"))
                    var = k.load("edge_var", k.get("eid"))
                    k.store(
                        "total", var,
                        k.load("total", var) + k.get("newmsg")
                        - k.load("c2v", k.get("eid")),
                    )
                    k.store("c2v", k.get("eid"), k.get("newmsg"))
            # Hard decisions each iteration.
            with k.loop("v", 0, n) as v:
                with k.branch(k.load("total", v) < 0) as hb:
                    k.store("hard", v, 1)
                with hb.orelse():
                    k.store("hard", v, 0)
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        checks = n // 2
        memory = {
            "edge_var": self._code(n, rng),
            "total": rng.integers(-15, 16, n),
            "c2v": np.zeros(checks * WC, dtype=np.int64),
            "emag": np.zeros(checks * WC, dtype=np.int64),
            "esign": np.zeros(checks * WC, dtype=np.int64),
            "hard": np.zeros(n, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        n = sizes["n"]
        iters = sizes["iters"]
        checks = n // 2
        edge_var = np.asarray(memory["edge_var"])
        total = [int(x) for x in memory["total"]]
        c2v = [0] * (checks * WC)
        hard = [0] * n
        for _ in range(iters):
            for c in range(checks):
                base = c * WC
                min1, min2, sgn = BIG, BIG, 0
                mags, signs = [], []
                for e in range(WC):
                    eid = base + e
                    v2c = total[edge_var[eid]] - c2v[eid]
                    s = 1 if v2c < 0 else 0
                    mag = -v2c if v2c < 0 else v2c
                    sgn ^= s
                    mags.append(mag)
                    signs.append(s)
                    if mag < min1:
                        min2, min1 = min1, mag
                    elif mag < min2:
                        min2 = mag
                for e in range(WC):
                    eid = base + e
                    m = min2 if mags[e] == min1 else min1
                    new = -m if (sgn ^ signs[e]) else m
                    var = edge_var[eid]
                    total[var] += new - c2v[eid]
                    c2v[eid] = new
            hard = [1 if t < 0 else 0 for t in total]
        return {
            "hard": np.array(hard, dtype=np.int64),
            "total": np.array(total, dtype=np.int64),
        }
