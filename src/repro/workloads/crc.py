"""CRC-32 (MiBench): bitwise polynomial division.

Control structure (Table 1): innermost branch on the low bit, imperfect
nested loops (the byte XOR happens in the outer body) and the classic
serial-loops shape.  Bursts are only 8 iterations long, so control-transfer
latency dominates — this is the kernel where the dedicated control network
helps most (Fig. 12: up to 1.36x).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload

POLY = 0xEDB88320


class Crc(Workload):
    short = "CRC"
    name = "crc"
    group = INTENSIVE
    paper_size = "64 bytes"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 8}, "small": {"n": 32},
                "paper": {"n": 64}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        k = KernelBuilder(self.name)
        k.array("data")
        k.array("out")
        k.set("crc", 0xFFFFFFFF)
        with k.loop("i", 0, n) as i:
            k.set("crc", k.get("crc") ^ k.load("data", i))
            with k.loop("bit", 0, 8):
                low = k.get("crc") & 1
                with k.branch(low.eq(1)) as br:
                    k.set("crc", (k.get("crc") >> 1) ^ POLY)
                with br.orelse():
                    k.set("crc", k.get("crc") >> 1)
        k.store("out", 0, k.get("crc") ^ 0xFFFFFFFF)
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        memory = {
            "data": rng.integers(0, 256, n),
            "out": np.zeros(1, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        crc = 0xFFFFFFFF
        for byte in np.asarray(memory["data"]):
            crc ^= int(byte)
            for _ in range(8):
                if crc & 1:
                    crc = (crc >> 1) ^ POLY
                else:
                    crc >>= 1
        return {"out": np.array([crc ^ 0xFFFFFFFF])}
