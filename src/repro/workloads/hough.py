"""Hough Transform (HosNa suite): line detection voting.

Control structure (Table 1): a *sub-inner* branch — only pixels above the
edge threshold enter the theta voting loop — inside imperfect nested loops.
The vote-bin computation uses fixed-point cos/sin tables so the kernel
stays integral end to end.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload

#: fixed-point scale for the trig tables
FP = 256
THRESHOLD = 128


class HoughTransform(Workload):
    short = "HT"
    name = "hough"
    group = INTENSIVE
    paper_size = "120 x 180"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {
            "tiny": {"h": 8, "w": 12, "thetas": 8},
            "small": {"h": 30, "w": 45, "thetas": 24},
            "paper": {"h": 120, "w": 180, "thetas": 48},
        }[scale]

    # ------------------------------------------------------------------
    @staticmethod
    def _tables(thetas: int) -> Tuple[np.ndarray, np.ndarray]:
        angles = np.arange(thetas) * math.pi / thetas
        cos_t = np.round(np.cos(angles) * FP).astype(np.int64)
        sin_t = np.round(np.sin(angles) * FP).astype(np.int64)
        return cos_t, sin_t

    @staticmethod
    def _rho_bins(h: int, w: int) -> int:
        return 2 * (h + w) + 1

    # ------------------------------------------------------------------
    def build(self, sizes: Mapping[str, int]) -> CDFG:
        h, w, thetas = sizes["h"], sizes["w"], sizes["thetas"]
        rho_bins = self._rho_bins(h, w)
        offset = h + w  # bias rho into non-negative bin indices
        k = KernelBuilder(self.name)
        k.array("image")
        k.array("cos_t")
        k.array("sin_t")
        k.array("acc")
        with k.loop("y", 0, h) as y:
            k.set("rowbase", y * w)
            with k.loop("x", 0, w) as x:
                pixel = k.load("image", k.get("rowbase") + x)
                with k.branch(pixel > THRESHOLD) as br:
                    with k.loop("t", 0, thetas) as t:
                        rho = (
                            x * k.load("cos_t", t) + y * k.load("sin_t", t)
                        ) / FP + offset
                        slot = t * rho_bins + rho
                        k.store("acc", slot, k.load("acc", slot) + 1)
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        h, w, thetas = sizes["h"], sizes["w"], sizes["thetas"]
        cos_t, sin_t = self._tables(thetas)
        # Sparse edge image: ~12% of pixels above threshold.
        image = rng.integers(0, 146, h * w)
        edges = rng.random(h * w) < 0.12
        image[edges] = rng.integers(THRESHOLD + 1, 256, edges.sum())
        memory = {
            "image": image,
            "cos_t": cos_t,
            "sin_t": sin_t,
            "acc": np.zeros(thetas * self._rho_bins(h, w), dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        h, w, thetas = sizes["h"], sizes["w"], sizes["thetas"]
        rho_bins = self._rho_bins(h, w)
        offset = h + w
        cos_t = np.asarray(memory["cos_t"])
        sin_t = np.asarray(memory["sin_t"])
        image = np.asarray(memory["image"]).reshape(h, w)
        acc = np.zeros(thetas * rho_bins, dtype=np.int64)
        ys, xs = np.nonzero(image > THRESHOLD)
        for y, x in zip(ys, xs):
            for t in range(thetas):
                # C-style truncating division, matching the IR's DIV.
                num = int(x) * int(cos_t[t]) + int(y) * int(sin_t[t])
                q = abs(num) // FP
                rho = (q if num >= 0 else -q) + offset
                acc[t * rho_bins + rho] += 1
        return {"acc": acc}
