"""SC Decode: successive-cancellation butterfly over polar LLRs.

Control structure (Table 1): innermost sign branches (the ``f`` min-sum
update), imperfect nested loops (level bookkeeping around the pair loops)
and serial loops (the ``f`` reduction pyramid, the per-level hard
decisions, then the ``g`` partial-sum pass).

Substitution note (see DESIGN.md): the full SC chain decoder interleaves
``f``/``g`` per decoded bit with a lazy schedule; this kernel keeps the
exact computational primitives and control flow forms — serial level loops
whose bounds halve, data-dependent sign branches in every butterfly, and a
``g`` pass conditioned on decided bits — in a single-sweep arrangement that
a cycle-level control-flow study exercises identically.  The reference
mirrors the same arithmetic independently in NumPy-free Python.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload


class ScDecode(Workload):
    short = "SCD"
    name = "sc_decode"
    group = INTENSIVE
    paper_size = "2048 channels"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 16}, "small": {"n": 512},
                "paper": {"n": 2048}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        if n & (n - 1):
            raise ValueError("SC decode size must be a power of two")
        k = KernelBuilder(self.name)
        k.array("llr")    # pyramid buffer, 2n-1 slots (level 0 = channel)
        k.array("bits")   # per-slot hard decisions
        k.array("gout")   # g-refined LLRs for the second half, n/2 slots
        # f-phase: reduce pairs level by level (serial loop, halving span).
        k.set("len", n)
        k.set("src", 0)
        k.set("dst", n)
        with k.while_(lambda: k.get("len") > 1, name="flevel"):
            k.set("half", k.get("len") / 2)
            with k.loop("p", 0, k.get("half")) as p:
                a = k.load("llr", k.get("src") + p * 2)
                b = k.load("llr", k.get("src") + p * 2 + 1)
                with k.branch(a < 0) as sa:
                    k.set("sa", 1)
                    k.set("ma", 0 - a)
                with sa.orelse():
                    k.set("sa", 0)
                    k.set("ma", a)
                with k.branch(b < 0) as sb:
                    k.set("sb", 1)
                    k.set("mb", 0 - b)
                with sb.orelse():
                    k.set("sb", 0)
                    k.set("mb", b)
                with k.branch(k.get("ma") < k.get("mb")) as mm:
                    k.set("mag", k.get("ma"))
                with mm.orelse():
                    k.set("mag", k.get("mb"))
                with k.branch((k.get("sa") ^ k.get("sb")).eq(1)) as sf:
                    k.set("f", 0 - k.get("mag"))
                with sf.orelse():
                    k.set("f", k.get("mag"))
                k.store("llr", k.get("dst") + p, k.get("f"))
            k.set("src", k.get("dst"))
            k.set("dst", k.get("dst") + k.get("half"))
            k.set("len", k.get("half"))
        # Decision phase: hard-decide every pyramid slot.
        total = 2 * n - 1
        with k.loop("d", 0, total) as d:
            with k.branch(k.load("llr", d) < 0) as hb:
                k.store("bits", d, 1)
            with hb.orelse():
                k.store("bits", d, 0)
        # g-phase: refine the second half of level 0 using level-1
        # decisions: g(a, b, u) = b + a when u = 0, b - a when u = 1.
        with k.loop("q", 0, n / 2) as q:
            a = k.load("llr", q * 2)
            b = k.load("llr", q * 2 + 1)
            u = k.load("bits", n + q)
            with k.branch(u.eq(1)) as gb:
                k.store("gout", q, b - a)
            with gb.orelse():
                k.store("gout", q, b + a)
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        llr = np.zeros(2 * n - 1, dtype=np.int64)
        llr[:n] = rng.integers(-31, 32, n)
        memory = {
            "llr": llr,
            "bits": np.zeros(2 * n - 1, dtype=np.int64),
            "gout": np.zeros(n // 2, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        n = sizes["n"]
        llr = [int(x) for x in memory["llr"]]
        length, src, dst = n, 0, n
        while length > 1:
            half = length // 2
            for p in range(half):
                a, b = llr[src + 2 * p], llr[src + 2 * p + 1]
                sign = -1 if (a < 0) != (b < 0) else 1
                llr[dst + p] = sign * min(abs(a), abs(b))
            src, dst, length = dst, dst + half, half
        bits = [1 if x < 0 else 0 for x in llr]
        gout = []
        for q in range(n // 2):
            a, b = llr[2 * q], llr[2 * q + 1]
            gout.append(b - a if bits[n + q] else b + a)
        return {
            "llr": np.array(llr, dtype=np.int64),
            "bits": np.array(bits, dtype=np.int64),
            "gout": np.array(gout, dtype=np.int64),
        }
