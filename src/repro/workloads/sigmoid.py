"""Sigmoid: element-wise ``1 / (1 + exp(-x))`` (non-intensive control flow).

Exercises the nonlinear-fitting PEs (Table 4: four of the sixteen PEs carry
transcendental units) in a single flat loop.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import NON_INTENSIVE, Workload


class Sigmoid(Workload):
    short = "SI"
    name = "sigmoid"
    group = NON_INTENSIVE
    paper_size = "2048"
    atol = 1e-9

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 64}, "small": {"n": 512},
                "paper": {"n": 2048}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        k = KernelBuilder(self.name)
        k.array("x")
        k.array("y")
        with k.loop("i", 0, n) as i:
            k.store("y", i, k.sigmoid(k.load("x", i)))
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        memory = {
            "x": rng.normal(0.0, 2.0, n),
            "y": np.zeros(n, dtype=np.float64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        x = np.asarray(memory["x"])
        return {"y": 1.0 / (1.0 + np.exp(-x))}
