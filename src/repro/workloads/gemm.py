"""GEMM (MachSuite): blocked dense matrix multiply.

Control structure (Table 1): imperfect nested loops — the accumulator is
initialised in the middle loop body and the result is stored there, so the
two outer levels carry real computation around the innermost MAC loop.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload


class Gemm(Workload):
    short = "GEMM"
    name = "gemm"
    group = INTENSIVE
    paper_size = "64 x 64"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 6}, "small": {"n": 20},
                "paper": {"n": 64}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        k = KernelBuilder(self.name)
        k.array("A")
        k.array("B")
        k.array("C")
        with k.loop("i", 0, n) as i:
            k.set("row", i * n)
            with k.loop("j", 0, n) as j:
                k.set("acc", 0)
                with k.loop("kk", 0, n) as kk:
                    a = k.load("A", k.get("row") + kk)
                    b = k.load("B", kk * n + j)
                    k.set("acc", k.get("acc") + a * b)
                k.store("C", k.get("row") + j, k.get("acc"))
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        memory = {
            "A": rng.integers(-4, 5, n * n),
            "B": rng.integers(-4, 5, n * n),
            "C": np.zeros(n * n, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        n = sizes["n"]
        a = np.asarray(memory["A"]).reshape(n, n)
        b = np.asarray(memory["B"]).reshape(n, n)
        return {"C": (a @ b).reshape(-1)}
