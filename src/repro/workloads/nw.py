"""NW — Needleman-Wunsch sequence alignment (MachSuite).

Control structure (Table 1): nested branches in the innermost DP cell
(match-vs-mismatch scoring plus the three-way max selection) inside nested
loops.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload

MATCH = 1
MISMATCH = -1
GAP = -1


class NeedlemanWunsch(Workload):
    short = "NW"
    name = "nw"
    group = INTENSIVE
    paper_size = "128 x 128"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 8}, "small": {"n": 48},
                "paper": {"n": 128}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        w = n + 1  # DP matrix row width
        k = KernelBuilder(self.name)
        k.array("seq_a")
        k.array("seq_b")
        k.array("score")
        # Boundary rows/columns.
        with k.loop("i0", 0, w) as i0:
            k.store("score", i0, i0 * GAP)
        with k.loop("j0", 1, w) as j0:
            k.store("score", j0 * w, j0 * GAP)
        # DP fill.
        with k.loop("i", 1, w) as i:
            k.set("row", i * w)
            k.set("prow", (i - 1) * w)
            with k.loop("j", 1, w) as j:
                a = k.load("seq_a", i - 1)
                b = k.load("seq_b", j - 1)
                with k.branch(a.eq(b)) as br:
                    k.set("sub", MATCH)
                with br.orelse():
                    k.set("sub", MISMATCH)
                diag = k.load("score", k.get("prow") + j - 1) + k.get("sub")
                up = k.load("score", k.get("prow") + j) + GAP
                left = k.load("score", k.get("row") + j - 1) + GAP
                # Three-way max as a nested branch chain.
                with k.branch(diag >= up) as m1:
                    k.set("best", diag)
                with m1.orelse():
                    k.set("best", up)
                with k.branch(left > k.get("best")) as m2:
                    k.set("best", left)
                k.store("score", k.get("row") + j, k.get("best"))
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        w = n + 1
        memory = {
            "seq_a": rng.integers(0, 4, n),
            "seq_b": rng.integers(0, 4, n),
            "score": np.zeros(w * w, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        n = sizes["n"]
        w = n + 1
        a = np.asarray(memory["seq_a"])
        b = np.asarray(memory["seq_b"])
        score = np.zeros((w, w), dtype=np.int64)
        score[0, :] = np.arange(w) * GAP
        score[:, 0] = np.arange(w) * GAP
        for i in range(1, w):
            for j in range(1, w):
                sub = MATCH if a[i - 1] == b[j - 1] else MISMATCH
                score[i, j] = max(
                    score[i - 1, j - 1] + sub,
                    score[i - 1, j] + GAP,
                    score[i, j - 1] + GAP,
                )
        return {"score": score.reshape(-1)}
