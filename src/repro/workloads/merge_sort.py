"""Merge Sort (MachSuite): bottom-up iterative merge.

Control structure (Table 1): nested branches, the innermost loop sits under
a branch, and the loop nest is imperfect — the merge cursor loops (`while
i1 < mid && i2 < hi`) have data-dependent trip counts and the per-segment
bookkeeping lives in outer bodies.  This is the kernel with the highest
share of operators under branch (Fig. 11's secondary axis) and the largest
Marionette-PE gain (1.45x over the von Neumann PE).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload


class MergeSort(Workload):
    short = "MS"
    name = "merge_sort"
    group = INTENSIVE
    paper_size = "1024"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {"tiny": {"n": 16}, "small": {"n": 256},
                "paper": {"n": 1024}}[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        n = sizes["n"]
        if n & (n - 1):
            raise ValueError("merge sort size must be a power of two")
        k = KernelBuilder(self.name)
        k.array("A")
        k.array("B")
        k.set("width", 1)
        with k.while_(lambda: k.get("width") < n, name="pass"):
            k.set("lo", 0)
            with k.while_(lambda: k.get("lo") < n, name="seg"):
                k.set("mid", k.get("lo") + k.get("width"))
                k.set("hi", k.get("mid") + k.get("width"))
                k.set("i1", k.get("lo"))
                k.set("i2", k.get("mid"))
                k.set("iout", k.get("lo"))
                with k.while_(
                    lambda: (k.get("i1") < k.get("mid"))
                    & (k.get("i2") < k.get("hi")),
                    name="merge",
                ):
                    a = k.load("A", k.get("i1"))
                    b = k.load("A", k.get("i2"))
                    with k.branch(a <= b) as br:
                        k.store("B", k.get("iout"), a)
                        k.set("i1", k.get("i1") + 1)
                    with br.orelse():
                        k.store("B", k.get("iout"), b)
                        k.set("i2", k.get("i2") + 1)
                    k.set("iout", k.get("iout") + 1)
                with k.while_(lambda: k.get("i1") < k.get("mid"),
                              name="rest1"):
                    k.store("B", k.get("iout"), k.load("A", k.get("i1")))
                    k.set("i1", k.get("i1") + 1)
                    k.set("iout", k.get("iout") + 1)
                with k.while_(lambda: k.get("i2") < k.get("hi"),
                              name="rest2"):
                    k.store("B", k.get("iout"), k.load("A", k.get("i2")))
                    k.set("i2", k.get("i2") + 1)
                    k.set("iout", k.get("iout") + 1)
                k.set("cp", k.get("lo"))
                with k.while_(lambda: k.get("cp") < k.get("hi"),
                              name="copyback"):
                    k.store("A", k.get("cp"), k.load("B", k.get("cp")))
                    k.set("cp", k.get("cp") + 1)
                k.set("lo", k.get("lo") + k.get("width") * 2)
            k.set("width", k.get("width") * 2)
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        n = sizes["n"]
        memory = {
            "A": rng.integers(0, 10_000, n),
            "B": np.zeros(n, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        return {"A": np.sort(np.asarray(memory["A"]))}
