"""Viterbi decoding (MachSuite): max-selection over predecessor states.

Control structure (Table 1): innermost branch (the running-max update is a
data-dependent branch per predecessor) inside imperfect nested loops (the
per-state emission add and the per-step buffer swap live in outer bodies).

Costs are integer negative-log-likelihoods (smaller is better), so the DP
is a min-plus recurrence; ties resolve to the earlier predecessor, matching
the reference exactly.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import CDFG
from repro.workloads.base import INTENSIVE, Workload

BIG = 1 << 20


class Viterbi(Workload):
    short = "VI"
    name = "viterbi"
    group = INTENSIVE
    paper_size = "64 states; 140 obs; 64 tokens"

    def sizes(self, scale: str) -> Dict[str, int]:
        return {
            "tiny": {"states": 6, "steps": 8, "symbols": 4},
            "small": {"states": 20, "steps": 40, "symbols": 16},
            "paper": {"states": 64, "steps": 140, "symbols": 64},
        }[scale]

    def build(self, sizes: Mapping[str, int]) -> CDFG:
        s = sizes["states"]
        t = sizes["steps"]
        k = KernelBuilder(self.name)
        k.array("init")       # initial costs, len s
        k.array("trans")      # transition costs, s*s (prev*s + cur)
        k.array("emit")       # emission costs, s*symbols
        k.array("obs")        # observations, len t
        k.array("cost")       # working cost buffer, len s
        k.array("cost_next")  # next-step buffer, len s
        k.array("out")        # final costs, len s
        with k.loop("si", 0, s) as si:
            k.store("cost", si, k.load("init", si))
        with k.loop("step", 1, t) as step:
            k.set("sym", k.load("obs", step))
            with k.loop("cur", 0, s) as cur:
                k.set("best", BIG)
                with k.loop("prev", 0, s) as prev:
                    cand = k.load("cost", prev) + k.load(
                        "trans", prev * s + cur
                    )
                    with k.branch(cand < k.get("best")) as br:
                        k.set("best", cand)
                k.store(
                    "cost_next", cur,
                    k.get("best") + k.load("emit", cur * sizes["symbols"]
                                           + k.get("sym")),
                )
            with k.loop("copy", 0, s) as copy:
                k.store("cost", copy, k.load("cost_next", copy))
        with k.loop("fin", 0, s) as fin:
            k.store("out", fin, k.load("cost", fin))
        return k.build()

    def inputs(self, sizes, rng) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        s, t, m = sizes["states"], sizes["steps"], sizes["symbols"]
        memory = {
            "init": rng.integers(0, 32, s),
            "trans": rng.integers(1, 64, s * s),
            "emit": rng.integers(0, 32, s * m),
            "obs": rng.integers(0, m, t),
            "cost": np.zeros(s, dtype=np.int64),
            "cost_next": np.zeros(s, dtype=np.int64),
            "out": np.zeros(s, dtype=np.int64),
        }
        return memory, {}

    def reference(self, sizes, memory, params) -> Dict[str, np.ndarray]:
        s, t, m = sizes["states"], sizes["steps"], sizes["symbols"]
        trans = np.asarray(memory["trans"]).reshape(s, s)
        emit = np.asarray(memory["emit"]).reshape(s, m)
        obs = np.asarray(memory["obs"])
        cost = np.asarray(memory["init"]).copy()
        for step in range(1, t):
            cost = (cost[:, None] + trans).min(axis=0) + emit[:, obs[step]]
        return {"out": cost}
