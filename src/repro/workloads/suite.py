"""The benchmark suite registry (paper Table 5)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.workloads.base import INTENSIVE, NON_INTENSIVE, Workload
from repro.workloads.merge_sort import MergeSort
from repro.workloads.fft import Fft
from repro.workloads.viterbi import Viterbi
from repro.workloads.nw import NeedlemanWunsch
from repro.workloads.hough import HoughTransform
from repro.workloads.crc import Crc
from repro.workloads.adpcm import AdpcmEncode
from repro.workloads.sc_decode import ScDecode
from repro.workloads.ldpc import LdpcDecode
from repro.workloads.gemm import Gemm
from repro.workloads.conv1d import Conv1d
from repro.workloads.sigmoid import Sigmoid
from repro.workloads.gray import GrayProcessing

#: Figure order of the intensive group (MS FFT VI NW HT CRC ADPCM SCD LDPC
#: GEMM), then the non-intensive group (CO SI GP).
ALL_WORKLOADS: List[Workload] = [
    MergeSort(),
    Fft(),
    Viterbi(),
    NeedlemanWunsch(),
    HoughTransform(),
    Crc(),
    AdpcmEncode(),
    ScDecode(),
    LdpcDecode(),
    Gemm(),
    Conv1d(),
    Sigmoid(),
    GrayProcessing(),
]

INTENSIVE_WORKLOADS: List[Workload] = [
    w for w in ALL_WORKLOADS if w.group == INTENSIVE
]
NON_INTENSIVE_WORKLOADS: List[Workload] = [
    w for w in ALL_WORKLOADS if w.group == NON_INTENSIVE
]

_BY_NAME: Dict[str, Workload] = {}
for _w in ALL_WORKLOADS:
    _BY_NAME[_w.name] = _w
    _BY_NAME[_w.short.lower()] = _w


def get_workload(name: str) -> Workload:
    """Look a workload up by full name or figure abbreviation.

    ``kernel:<name>@<fingerprint>`` tokens resolve to external kernel
    packages registered in this process (see :mod:`repro.kernels`) —
    the one extension point the engine needs to run user-supplied
    kernels through every cache/shard/dispatch path unchanged.

    Raises :class:`~repro.errors.ConfigurationError` naming every
    available workload when the lookup fails.
    """
    if name.startswith("kernel:"):
        # Lazy import: repro.kernels builds CDFGs through the same
        # workload framework this module anchors.
        from repro.kernels.registry import resolve_workload

        return resolve_workload(name)
    key = name.lower()
    if key not in _BY_NAME:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: "
            f"{sorted(w.name for w in ALL_WORKLOADS)}"
        )
    return _BY_NAME[key]
