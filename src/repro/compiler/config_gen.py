"""Configuration generation: CDFG -> ArrayProgram for the array simulator.

This is the "bitstream generation" step of the software stack (paper
Section 5).  It supports the class of kernels the micro-architectural
simulator is used to validate end to end: a single counted loop whose body
holds the computation (loads, computes, stores, optional register
accumulators).  Richer kernels are evaluated through the trace-driven
execution models (see DESIGN.md tier split); attempting to generate
configurations for them raises :class:`CompilationError` with a reason.

Mapping scheme:

* PE 0 runs the loop operator (LOOP mode, exit wired to the controller);
* each body FU op gets its own PE (spatial mapping, II = 1), operands wired
  producer->consumer through mesh ports;
* loop-carried variables become local-register self-edges on the producing
  PE (initial value from the entry block via the program's register-init
  table);
* values fanned out to more than four consumers are relayed through a
  spare PE (``x + 0`` forwarding instruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import CompilationError
from repro.arch.params import ArchParams
from repro.ir.cdfg import CDFG
from repro.ir.cfg import BasicBlock, BlockRole, Branch, Halt, Jump
from repro.ir.dfg import Node, NodeId
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective
from repro.isa.data import DataInstruction, DataKind
from repro.isa.operands import Dest, N_PORTS, Operand
from repro.isa.program import ArrayProgram, TriggerEntry

#: Instruction address used for every kernel entry (single-BB programs).
_ADDR = 1
#: Exit address announced to the controller.
_EXIT_ADDR = 9


@dataclass
class _Consumer:
    pe: int
    port: int


class _PortAllocator:
    def __init__(self) -> None:
        self._next: Dict[int, int] = {}

    def take(self, pe: int) -> int:
        port = self._next.get(pe, 0)
        if port >= N_PORTS:
            raise CompilationError(
                f"PE {pe} needs more than {N_PORTS} input ports"
            )
        self._next[pe] = port + 1
        return port


def _scalar_operand(cdfg: CDFG, entry: BasicBlock, node: Node,
                    param_values: Mapping[str, int]) -> int:
    """Resolve a compile-time scalar (const or bound parameter)."""
    if node.opcode is Opcode.CONST:
        return int(node.value)
    if node.opcode is Opcode.INPUT:
        if node.var in param_values:
            return int(param_values[node.var])
        raise CompilationError(
            f"{cdfg.name}: loop bound variable {node.var!r} is not a bound "
            "parameter"
        )
    raise CompilationError(
        f"{cdfg.name}: loop bound must be constant or parameter, got "
        f"{node.opcode.value}"
    )


def generate_program(
    cdfg: CDFG,
    arch: ArchParams,
    param_values: Optional[Mapping[str, int]] = None,
    array_lengths: Optional[Mapping[str, int]] = None,
) -> ArrayProgram:
    """Generate an :class:`ArrayProgram` for a single-loop kernel.

    Args:
        cdfg: The kernel (must be a single counted loop; see module doc).
        arch: Target array parameters.
        param_values: Bindings for the kernel's scalar parameters
            (compiled into immediates, as the paper's bitstreams do).
        array_lengths: Length of each scratchpad array; defaults to
            inferring nothing and failing, so pass them.

    Raises:
        CompilationError: when the kernel is outside the supported class
            or exceeds the array's resources.
    """
    param_values = dict(param_values or {})
    array_lengths = dict(array_lengths or {})

    entry_blk, header, body, after = _match_structure(cdfg)
    loop_var = header.loop_var
    if loop_var is None:
        raise CompilationError(f"{cdfg.name}: loop header lost its variable")

    term = header.terminator
    assert isinstance(term, Branch)
    cond = header.dfg.node(term.cond)
    if cond.opcode is not Opcode.LT:
        raise CompilationError(
            f"{cdfg.name}: only ascending counted loops are supported"
        )
    hi_node = header.dfg.node(cond.operands[1])
    hi = _scalar_operand(cdfg, entry_blk, hi_node, param_values)
    if loop_var not in entry_blk.outputs:
        raise CompilationError(
            f"{cdfg.name}: loop variable not initialised in the entry block"
        )
    lo_node = entry_blk.dfg.node(entry_blk.outputs[loop_var])
    lo = _scalar_operand(cdfg, entry_blk, lo_node, param_values)

    program = ArrayProgram(arch.n_pes)
    base = 0
    array_ids: Dict[str, int] = {}
    for index, name in enumerate(cdfg.arrays):
        if name not in array_lengths:
            raise CompilationError(
                f"{cdfg.name}: missing length for array {name!r}"
            )
        length = int(array_lengths[name])
        program.declare_array(index, name, base, length)
        array_ids[name] = index
        base += length

    builder = _BodyBuilder(
        cdfg, body, entry_blk, program, arch, array_ids, param_values,
        loop_var,
    )
    builder.build(lo, hi)
    program.validate()
    return program


def _match_structure(
    cdfg: CDFG,
) -> Tuple[BasicBlock, BasicBlock, BasicBlock, BasicBlock]:
    """Require entry -> header -> body -> (back) / after -> halt."""
    nests = cdfg.loop_nests()
    if len(nests) != 1:
        raise CompilationError(
            f"{cdfg.name}: config generation supports exactly one loop "
            f"(found {len(nests)})"
        )
    nest = next(iter(nests.values()))
    header = cdfg.block(nest.header)
    body_ids = sorted(nest.blocks - {nest.header})
    if len(body_ids) != 1:
        raise CompilationError(
            f"{cdfg.name}: loop body must be a single basic block "
            f"(found {len(body_ids)})"
        )
    body = cdfg.block(body_ids[0])
    entry_blk = cdfg.block(cdfg.entry)
    term = header.terminator
    assert isinstance(term, Branch)
    after = cdfg.block(term.if_false)
    if after.op_count > 0:
        raise CompilationError(
            f"{cdfg.name}: computation after the loop is not supported"
        )
    return entry_blk, header, body, after


class _BodyBuilder:
    """Wires the body DFG onto PEs 1..n with PE 0 as the loop operator."""

    def __init__(self, cdfg: CDFG, body: BasicBlock, entry_blk: BasicBlock,
                 program: ArrayProgram, arch: ArchParams,
                 array_ids: Dict[str, int],
                 param_values: Mapping[str, int], loop_var: str) -> None:
        self.cdfg = cdfg
        self.body = body
        self.entry_blk = entry_blk
        self.program = program
        self.arch = arch
        self.array_ids = array_ids
        self.param_values = param_values
        self.loop_var = loop_var
        self.ports = _PortAllocator()
        self.pe_of: Dict[NodeId, int] = {}
        self.consumers: Dict[NodeId, List[_Consumer]] = {}
        self.loop_consumers: List[_Consumer] = []
        #: accumulator node -> register index on its PE
        self.acc_reg: Dict[NodeId, int] = {}
        self.reg_init: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    def build(self, lo: int, hi: int) -> None:
        fu_nodes = self.body.dfg.fu_nodes
        if len(fu_nodes) > self.arch.n_pes - 1:
            raise CompilationError(
                f"{self.cdfg.name}: {len(fu_nodes)} ops exceed "
                f"{self.arch.n_pes - 1} available PEs"
            )
        for offset, node in enumerate(fu_nodes):
            self.pe_of[node.node_id] = offset + 1

        accumulators = self._find_accumulators()
        for node_id, reg in accumulators.items():
            self.acc_reg[node_id] = reg

        instructions = {
            node.node_id: self._build_instruction(node) for node in fu_nodes
        }
        # Attach destinations now that consumers are known.
        for node in fu_nodes:
            dests = self._dests_for(node)
            inst = instructions[node.node_id]
            instructions[node.node_id] = DataInstruction(
                kind=inst.kind, opcode=inst.opcode, srcs=inst.srcs,
                dests=dests, array_id=inst.array_id,
                loop_bounds=inst.loop_bounds,
            )

        for node in fu_nodes:
            pe = self.pe_of[node.node_id]
            self.program.program_for(pe).add(
                TriggerEntry(_ADDR, instructions[node.node_id])
            )
            self.program.set_initial(pe, _ADDR)

        loop_inst = DataInstruction.loop(
            Operand.imm(lo), Operand.imm(hi), Operand.imm(1),
            tuple(
                Dest.pe_port(c.pe, c.port) for c in self.loop_consumers
            ),
        )
        if len(self.loop_consumers) > 4:
            raise CompilationError(
                f"{self.cdfg.name}: loop variable fans out to "
                f"{len(self.loop_consumers)} ports (> 4); add a relay"
            )
        self.program.program_for(0).add(
            TriggerEntry(
                _ADDR, loop_inst,
                ControlDirective.loop(
                    exit_addr=_EXIT_ADDR,
                    exit_targets=(self.arch.n_pes,),
                ),
            )
        )
        self.program.set_initial(0, _ADDR)
        for pe, regs in self.reg_init.items():
            for reg, value in regs.items():
                self.program.set_reg_init(pe, reg, value)

    # ------------------------------------------------------------------
    def _find_accumulators(self) -> Dict[NodeId, int]:
        """Variables read and re-assigned in the body: register self-edges."""
        out: Dict[NodeId, int] = {}
        for var, node_id in self.body.outputs.items():
            if var.startswith("."):
                continue
            if var == self.loop_var:
                continue
            reads = [
                n for n in self.body.dfg
                if n.opcode is Opcode.INPUT and n.var == var
            ]
            if not reads:
                continue
            out[node_id] = 0  # register 0 of the producing PE
            init = 0.0
            if var in self.entry_blk.outputs:
                init_node = self.entry_blk.dfg.node(
                    self.entry_blk.outputs[var]
                )
                if init_node.opcode is Opcode.CONST:
                    init = init_node.value
                else:
                    raise CompilationError(
                        f"{self.cdfg.name}: accumulator {var!r} must be "
                        "initialised to a constant"
                    )
            pe = self.pe_of[node_id]
            self.reg_init.setdefault(pe, {})[0] = init
        return out

    # ------------------------------------------------------------------
    def _operand_for(self, consumer: Node, producer_id: NodeId) -> Operand:
        producer = self.body.dfg.node(producer_id)
        consumer_pe = self.pe_of[consumer.node_id]
        if producer.opcode is Opcode.CONST:
            # The datapath computes in floats; truncating a fractional
            # constant (1.5 -> 1) would silently change the kernel.
            # Integral values stay ints so existing configs are
            # unchanged.
            value = producer.value
            return Operand.imm(
                int(value) if float(value).is_integer() else float(value)
            )
        if producer.opcode is Opcode.INPUT:
            assert producer.var is not None
            if producer.var == self.loop_var:
                port = self.ports.take(consumer_pe)
                self.loop_consumers.append(_Consumer(consumer_pe, port))
                return Operand.port(port)
            if producer.var in self.param_values:
                return Operand.imm(int(self.param_values[producer.var]))
            acc_node = self.body.outputs.get(producer.var)
            if acc_node is not None and acc_node in self.acc_reg:
                producer_pe = self.pe_of[acc_node]
                if producer_pe == consumer_pe:
                    return Operand.reg(self.acc_reg[acc_node])
                raise CompilationError(
                    f"{self.cdfg.name}: accumulator {producer.var!r} "
                    "consumed on a different PE than it is produced"
                )
            raise CompilationError(
                f"{self.cdfg.name}: live-in {producer.var!r} is neither "
                "loop variable, parameter, nor accumulator"
            )
        # Ordinary dataflow edge.
        port = self.ports.take(consumer_pe)
        self.consumers.setdefault(producer_id, []).append(
            _Consumer(consumer_pe, port)
        )
        return Operand.port(port)

    def _build_instruction(self, node: Node) -> DataInstruction:
        if node.opcode is Opcode.LOAD:
            addr = self._operand_for(node, node.operands[0])
            return DataInstruction(
                kind=DataKind.LOAD,
                srcs=(addr,), array_id=self.array_ids[node.array],
            )
        if node.opcode is Opcode.STORE:
            addr = self._operand_for(node, node.operands[0])
            value = self._operand_for(node, node.operands[1])
            return DataInstruction(
                kind=DataKind.STORE,
                srcs=(addr, value), array_id=self.array_ids[node.array],
            )
        srcs = tuple(self._operand_for(node, o) for o in node.operands)
        return DataInstruction(
            kind=DataKind.COMPUTE, opcode=node.opcode, srcs=srcs,
        )

    def _dests_for(self, node: Node) -> Tuple[Dest, ...]:
        dests: List[Dest] = []
        if node.node_id in self.acc_reg:
            dests.append(Dest.reg(self.acc_reg[node.node_id]))
        for consumer in self.consumers.get(node.node_id, ()):
            dests.append(Dest.pe_port(consumer.pe, consumer.port))
        if len(dests) > 4:
            raise CompilationError(
                f"{self.cdfg.name}: node n{node.node_id} fans out to "
                f"{len(dests)} destinations (> 4)"
            )
        return tuple(dests)
