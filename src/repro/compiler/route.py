"""Routing of a placed basic block onto the data mesh.

Thin layer over :class:`~repro.arch.network.mesh.DataMesh` used by tests,
the examples' visualisations, and anything that needs the routed paths of a
:class:`~repro.compiler.mapping.BBPlacement` (placement itself only needs
the aggregate latency/congestion numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.network.mesh import DataMesh, RoutedEdge
from repro.arch.params import ArchParams
from repro.arch.topology import Grid
from repro.ir.cfg import BasicBlock
from repro.ir.dfg import NodeId
from repro.compiler.mapping import BBPlacement


@dataclass
class RoutingResult:
    """All routed data edges of one placement."""

    edges: List[Tuple[NodeId, NodeId, RoutedEdge]]
    congestion_ii: int
    max_transfer_latency: int
    total_hops: int


def route_placement(block: BasicBlock, placement: BBPlacement,
                    params: ArchParams) -> RoutingResult:
    """Route every producer->consumer edge of ``placement`` with XY routing."""
    grid = Grid(params.rows, params.cols)
    mesh = DataMesh(grid, hop_latency=params.mesh_hop_latency)
    mapped = set(placement.assignment)
    edges: List[Tuple[NodeId, NodeId, RoutedEdge]] = []
    max_latency = 0
    total_hops = 0
    for node in block.dfg.fu_nodes:
        if node.node_id not in mapped:
            continue
        for operand in node.operands:
            if operand not in mapped:
                continue
            src = placement.assignment[operand]
            dst = placement.assignment[node.node_id]
            if src == dst:
                continue
            routed = mesh.route(src, dst)
            edges.append((operand, node.node_id, routed))
            max_latency = max(max_latency, mesh.latency(routed))
            total_hops += routed.hops
    return RoutingResult(
        edges=edges,
        congestion_ii=mesh.congestion_ii(),
        max_transfer_latency=max_latency,
        total_hops=total_hops,
    )
