"""Time-extend reshaping and the PE-waste objective (paper Fig. 8).

Time-extended mapping folds a spatial mapping into the temporal domain:
fewer PEs execute the same DFG by multiplexing several operators per PE,
multiplying the initiation interval.  The scheduler uses it in two
directions:

* **shrink** an inner-loop mapping so the freed PEs can host outer-loop
  BBs (Agile PE Assignment);
* **unroll** a small mapping across spare PEs so several iterations start
  per II (the dense GEMM pipelines of Fig. 15).

``PE_waste = PE_remapping x II - PE x Unroll`` is the paper's objective:
the PE-cycles a reshape burns beyond the ideal spatial mapping.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import CompilationError
from repro.arch.topology import Coord
from repro.ir.dfg import NodeId
from repro.compiler.mapping import BBPlacement


def pe_waste(placement: BBPlacement, original: BBPlacement) -> int:
    """The paper's objective for one reshape candidate.

    ``PE_waste = PE_remapping x II - PE x Unroll`` — PE-cycles consumed per
    initiation by the reshaped mapping minus the useful work it performs
    (``Unroll`` iterations of the original ``PE``-wide DFG).
    """
    return (
        placement.n_pes * placement.ii
        - original.n_pes * placement.unroll
    )


def reshape_placement(
    original: BBPlacement,
    target_pes: Sequence[Coord],
) -> BBPlacement:
    """Fold ``original`` onto ``target_pes`` (time-extend).

    The ops are redistributed round-robin over the target PEs; the II grows
    by the fold factor ``ceil(n_ops / len(target_pes))`` relative to ops-
    per-PE of 1.  Raises :class:`CompilationError` on an empty target.
    """
    targets = list(target_pes)
    if not targets:
        raise CompilationError("reshape target region is empty")
    ops: List[NodeId] = sorted(original.assignment)
    if not ops:
        return BBPlacement(
            original.block, {}, ii=1, depth_cycles=original.depth_cycles,
            time_extended=True,
        )
    assignment: Dict[NodeId, Coord] = {}
    per_pe: Dict[Coord, int] = {c: 0 for c in targets}
    for index, node_id in enumerate(ops):
        coord = targets[index % len(targets)]
        assignment[node_id] = coord
        per_pe[coord] += 1
    fold = max(per_pe.values())
    ii = max(original.ii, fold)
    return BBPlacement(
        original.block, assignment, ii=ii,
        depth_cycles=original.depth_cycles, time_extended=True,
        unroll=original.unroll,
    )


def unroll_placement(
    original: BBPlacement,
    spare_pes: Sequence[Coord],
) -> Optional[BBPlacement]:
    """Replicate a mapping over spare PEs so several iterations start per
    II.  Returns ``None`` when not even one extra copy fits."""
    spare = list(spare_pes)
    if original.op_count == 0:
        return None
    copies = len(spare) // original.op_count
    if copies < 1:
        return None
    assignment = dict(original.assignment)
    cursor = 0
    offset = max(original.assignment) + 1
    for copy in range(copies):
        for node_id in sorted(original.assignment):
            # Clone ids live above the original DFG id space; they matter
            # only for PE accounting, never dereferenced into the DFG.
            assignment[offset + copy * original.op_count + node_id] = (
                spare[cursor]
            )
            cursor += 1
    return BBPlacement(
        original.block, assignment, ii=original.ii,
        depth_cycles=original.depth_cycles,
        time_extended=original.time_extended,
        unroll=original.unroll + copies,
    )
