"""The Marionette mapping toolchain.

Pipeline: CDFG -> per-BB placement onto the PE grid (:mod:`place`), mesh
routing (:mod:`route` via :class:`~repro.arch.network.mesh.DataMesh`),
time-extend reshaping (:mod:`reshape`), the Agile PE Assignment scheduler
(:mod:`schedule`, paper Fig. 8), and configuration generation for the
micro-architectural simulator (:mod:`config_gen`).
"""

from repro.compiler.mapping import BBPlacement, LevelSchedule, Schedule
from repro.compiler.place import place_block
from repro.compiler.reshape import reshape_placement, pe_waste
from repro.compiler.schedule import MarionetteScheduler
from repro.compiler.config_gen import generate_program

__all__ = [
    "BBPlacement",
    "LevelSchedule",
    "Schedule",
    "place_block",
    "reshape_placement",
    "pe_waste",
    "MarionetteScheduler",
    "generate_program",
]
