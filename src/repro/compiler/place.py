"""DFG placement onto the PE grid.

Greedy producer-proximity placement with a local-search improvement pass:

1. Nodes are visited in topological (creation) order; each is assigned to
   the free PE minimising the Manhattan distance to its producers' PEs
   (falling back to round-robin sharing once PEs run out — resource
   time-multiplexing raises the II).
2. A bounded pairwise-swap pass reduces total wirelength.
3. The placed edges are routed on the mesh (XY); the initiation interval is
   ``max(ops-per-PE, link congestion)`` and the drain is the DFG critical
   path plus the longest routed transfer.

Nonlinear operators (LOG/EXP/...) must land on nonlinear-capable PEs — the
prototype has four (Table 4); placement reserves the last PEs of the region
for them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.arch.network.mesh import DataMesh
from repro.arch.params import ArchParams
from repro.arch.topology import Coord, Grid
from repro.ir.cfg import BasicBlock
from repro.ir.dfg import NodeId
from repro.ir.ops import OpClass
from repro.compiler.mapping import BBPlacement

#: Cap on the pairwise-swap improvement pass.
_SWAP_ROUNDS = 2


def _nonlinear_capable(grid: Grid, params: ArchParams) -> List[Coord]:
    """The nonlinear-fitting PEs: the tail of the row-major order."""
    coords = list(grid)
    return coords[len(coords) - params.nonlinear_pes:]


def place_block(
    block: BasicBlock,
    params: ArchParams,
    region: Optional[Sequence[Coord]] = None,
) -> BBPlacement:
    """Place one block's DFG onto ``region`` (default: the whole array).

    Returns a :class:`BBPlacement` whose II reflects FU sharing and mesh
    congestion.  Raises :class:`PlacementError` when the region is empty or
    nonlinear ops cannot be honoured.
    """
    grid = Grid(params.rows, params.cols)
    region_list = list(region) if region is not None else list(grid)
    if not region_list:
        raise PlacementError(f"block {block.name!r}: empty placement region")

    fu_nodes = block.dfg.fu_nodes
    if not fu_nodes:
        return BBPlacement(block.block_id, {}, ii=1, depth_cycles=0)

    nonlinear_pool = [
        c for c in _nonlinear_capable(grid, params) if c in set(region_list)
    ]
    needs_nonlinear = [
        n for n in fu_nodes if n.info.op_class is OpClass.NONLINEAR
    ]
    if needs_nonlinear and not nonlinear_pool:
        raise PlacementError(
            f"block {block.name!r}: {len(needs_nonlinear)} nonlinear ops "
            "but no nonlinear-capable PE in region"
        )

    load: Dict[Coord, int] = {c: 0 for c in region_list}
    assignment: Dict[NodeId, Coord] = {}

    def candidates_for(node) -> List[Coord]:
        if node.info.op_class is OpClass.NONLINEAR:
            return nonlinear_pool
        return region_list

    def proximity_cost(coord: Coord, node) -> Tuple[int, int]:
        dist = 0
        for operand in node.operands:
            producer = assignment.get(operand)
            if producer is not None:
                dist += coord.manhattan(producer)
        return (load[coord], dist)

    for node in fu_nodes:
        pool = candidates_for(node)
        best = min(pool, key=lambda c: proximity_cost(c, node))
        assignment[node.node_id] = best
        load[best] += 1

    _improve(assignment, block, grid, params)

    mesh = DataMesh(grid, hop_latency=params.mesh_hop_latency)
    longest_transfer = 0
    op_ids = set(assignment)
    for node in fu_nodes:
        for operand in node.operands:
            if operand not in op_ids:
                continue
            src, dst = assignment[operand], assignment[node.node_id]
            if src == dst:
                continue
            edge = mesh.route(src, dst)
            longest_transfer = max(longest_transfer, mesh.latency(edge))

    resource_ii = max(load.values()) if load else 1
    ii = max(1, resource_ii, mesh.congestion_ii())
    depth = block.dfg.critical_path_length() + longest_transfer
    return BBPlacement(
        block.block_id, assignment, ii=ii, depth_cycles=depth,
    )


def _improve(assignment: Dict[NodeId, Coord], block: BasicBlock,
             grid: Grid, params: ArchParams) -> None:
    """Bounded pairwise swap pass minimising (link congestion, wirelength).

    Congestion is the binding term: a link shared by k routed edges forces
    the initiation interval to k, so trading wirelength for a lower maximum
    link load is always worth it.
    """
    edges: List[Tuple[NodeId, NodeId]] = []
    mapped = set(assignment)
    for node in block.dfg.fu_nodes:
        for operand in node.operands:
            if operand in mapped:
                edges.append((operand, node.node_id))
    if not edges:
        return

    def objective() -> Tuple[int, int]:
        mesh = DataMesh(grid, hop_latency=params.mesh_hop_latency)
        wire = 0
        for a, b in edges:
            src, dst = assignment[a], assignment[b]
            if src == dst:
                continue
            mesh.route(src, dst)
            wire += src.manhattan(dst)
        return (mesh.congestion_ii(), wire)

    nodes = list(assignment)
    current = objective()
    for _ in range(_SWAP_ROUNDS):
        improved = False
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if assignment[a] == assignment[b]:
                    continue
                if _swap_illegal(block, a, b):
                    continue
                assignment[a], assignment[b] = assignment[b], assignment[a]
                candidate = objective()
                if candidate < current:
                    current = candidate
                    improved = True
                else:
                    assignment[a], assignment[b] = (
                        assignment[b], assignment[a]
                    )
        if not improved:
            break


def _swap_illegal(block: BasicBlock, a: NodeId, b: NodeId) -> bool:
    """Nonlinear ops may not leave the nonlinear pool via swapping."""
    node_a = block.dfg.node(a)
    node_b = block.dfg.node(b)
    a_nl = node_a.info.op_class is OpClass.NONLINEAR
    b_nl = node_b.info.op_class is OpClass.NONLINEAR
    return a_nl != b_nl
