"""Mapping data structures shared by the placement and scheduling passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompilationError
from repro.arch.topology import Coord
from repro.ir.cfg import BlockId
from repro.ir.dfg import NodeId


@dataclass
class BBPlacement:
    """One basic block mapped onto a set of PEs.

    Attributes:
        block: The block being mapped.
        assignment: DFG node -> PE coordinate.
        ii: Initiation interval the mapping sustains (resource sharing and
            routing congestion included).
        depth_cycles: Pipeline drain: critical DFG path plus routing delay.
        time_extended: Whether the mapping was folded into the time domain
            (fewer PEs, higher II) by :func:`~repro.compiler.reshape`.
        unroll: Spatial unroll factor (>=1; unrolled mappings replicate the
            DFG to start several iterations per II).
    """

    block: BlockId
    assignment: Dict[NodeId, Coord]
    ii: int
    depth_cycles: int
    time_extended: bool = False
    unroll: int = 1

    @property
    def pes(self) -> List[Coord]:
        """Distinct PEs used, in first-use order."""
        seen: List[Coord] = []
        for coord in self.assignment.values():
            if coord not in seen:
                seen.append(coord)
        return seen

    @property
    def n_pes(self) -> int:
        return len(self.pes)

    @property
    def op_count(self) -> int:
        return len(self.assignment)

    def validate(self, op_ids: List[NodeId]) -> None:
        """Every FU op mapped exactly once; II/depth sane."""
        mapped = sorted(self.assignment)
        if mapped != sorted(op_ids):
            raise CompilationError(
                f"block {self.block}: mapped ops {mapped} != DFG ops "
                f"{sorted(op_ids)}"
            )
        if self.ii < 1:
            raise CompilationError(f"block {self.block}: II {self.ii} < 1")
        if self.depth_cycles < 0:
            raise CompilationError(
                f"block {self.block}: negative depth {self.depth_cycles}"
            )
        if self.unroll < 1:
            raise CompilationError(
                f"block {self.block}: unroll {self.unroll} < 1"
            )


@dataclass
class LevelSchedule:
    """The array mapping active while one loop level executes (paper
    Fig. 8: "Mapping 1", "Mapping 2", ...)."""

    depth: int
    placements: Dict[BlockId, BBPlacement] = field(default_factory=dict)
    #: PE-cycles wasted by the chosen reshape (the scheduler's objective)
    waste: int = 0

    @property
    def pes_used(self) -> int:
        used = set()
        for placement in self.placements.values():
            used.update(placement.pes)
        return len(used)


@dataclass
class Schedule:
    """Complete Agile PE Assignment result for one kernel."""

    kernel: str
    #: innermost level first, matching the scheduling order
    levels: List[LevelSchedule] = field(default_factory=list)
    #: blocks outside any loop (entry/exit straight-line code)
    flat: Dict[BlockId, BBPlacement] = field(default_factory=dict)

    def placement_of(self, block: BlockId) -> Optional[BBPlacement]:
        """The placement used when ``block`` executes (deepest level wins,
        matching the Control Flow Scheduler's priority arbitration)."""
        for level in self.levels:
            if block in level.placements:
                return level.placements[block]
        return self.flat.get(block)

    def all_placements(self) -> List[BBPlacement]:
        out = [p for level in self.levels for p in level.placements.values()]
        out.extend(self.flat.values())
        return out
