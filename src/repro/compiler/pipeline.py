"""Pipeline arithmetic shared by the execution models.

A basic-block pipeline run of ``n`` iterations with initiation interval
``II`` costs ``startup + (n - 1) * II + drain`` cycles: the first iteration
enters after ``startup`` (control transfer + any visible configuration), the
last initiates ``(n-1) * II`` later, and its results drain through the
spatial pipeline for ``drain`` cycles.  Spatial unrolling starts ``unroll``
iterations per initiation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CompilationError


def pipeline_cycles(iterations: int, ii: int, startup: int, drain: int,
                    unroll: int = 1) -> int:
    """Cycles for one pipelined burst of ``iterations`` iterations."""
    if iterations < 0:
        raise CompilationError("iterations must be non-negative")
    if ii < 1 or unroll < 1:
        raise CompilationError("II and unroll must be >= 1")
    if startup < 0 or drain < 0:
        raise CompilationError("startup/drain must be non-negative")
    if iterations == 0:
        return startup
    initiations = math.ceil(iterations / unroll)
    return startup + (initiations - 1) * ii + drain


def serial_cycles(iterations: int, depth: int, gap: int) -> int:
    """Cycles when iterations execute back-to-back without pipelining
    (each pays the full datapath depth plus a repeat gap)."""
    if iterations < 0:
        raise CompilationError("iterations must be non-negative")
    if iterations == 0:
        return 0
    return iterations * depth + (iterations - 1) * gap


@dataclass(frozen=True)
class PipelineShape:
    """Summary of a block's pipeline behaviour under one mapping."""

    ii: int
    startup: int
    drain: int
    unroll: int = 1

    def cycles(self, iterations: int) -> int:
        return pipeline_cycles(
            iterations, self.ii, self.startup, self.drain, self.unroll
        )
