"""The Marionette scheduling algorithm — Agile PE Assignment (paper Fig. 8).

Scheduling walks loop nests **innermost to outermost**.  For each nest it
builds the array mapping active while that nest's level executes:

1. map the nest's own basic blocks onto free PEs (``Map`` / ``assign``);
   sibling branch arms are merged onto one PE lane
   (``checkBranchDivergence`` — arms never execute simultaneously);
2. record the pipeline II each placement sustains
   (``setPipelineIteration``);
3. if PEs remain unassigned, reshape (time-extend) or unroll the mappings of
   control-dependence-satisfying BBs — the current level's and the already
   scheduled inner levels' — onto the spare PEs; push each candidate's
   ``PE_waste`` and expand the mapping with the cheapest one.

The result is one mapping per loop level (paper Fig. 8: "Mapping 1..3");
the execution models resolve a block's active placement through
:meth:`~repro.compiler.mapping.Schedule.placement_of`, which prefers the
deepest level — the same priority the Control Flow Scheduler's arbiter
applies between nested pipelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CompilationError, PlacementError
from repro.arch.params import ArchParams
from repro.arch.topology import Coord, Grid
from repro.ir.cdfg import CDFG, LoopNest
from repro.ir.cfg import BasicBlock, BlockId, BlockRole, Branch
from repro.compiler.mapping import BBPlacement, LevelSchedule, Schedule
from repro.compiler.place import place_block
from repro.compiler.reshape import pe_waste, reshape_placement, unroll_placement


class MarionetteScheduler:
    """Agile PE Assignment over one kernel."""

    def __init__(self, params: ArchParams, *, enable_agile: bool = True) -> None:
        self.params = params
        self.grid = Grid(params.rows, params.cols)
        #: reshape/unroll of spare PEs on/off (the Fig. 14 ablation)
        self.enable_agile = enable_agile

    # ------------------------------------------------------------------
    def schedule(self, cdfg: CDFG) -> Schedule:
        """Produce the per-loop-level mappings for ``cdfg``."""
        result = Schedule(cdfg.name)
        nests = cdfg.loop_nests()
        ordered = sorted(
            nests.values(), key=lambda n: (-n.depth, n.header)
        )
        for nest in ordered:
            result.levels.append(self._schedule_nest(cdfg, nest, result))

        loop_blocks: Set[BlockId] = set()
        for nest in nests.values():
            loop_blocks |= nest.blocks
        for block in cdfg.blocks:
            if block.block_id in loop_blocks or block.op_count == 0:
                continue
            result.flat[block.block_id] = place_block(block, self.params)
        return result

    # ------------------------------------------------------------------
    def _schedule_nest(self, cdfg: CDFG, nest: LoopNest,
                       partial: Schedule) -> LevelSchedule:
        level = LevelSchedule(depth=nest.depth)
        own = sorted(nest.own_blocks(cdfg.loop_nests()))
        free: List[Coord] = list(self.grid)

        merged_arms = self._merge_groups(cdfg, own)
        placed_ids: Set[BlockId] = set()
        order = sorted(
            own, key=lambda b: -cdfg.block(b).op_count
        )
        for block_id in order:
            if block_id in placed_ids:
                continue
            block = cdfg.block(block_id)
            if block.op_count == 0:
                placed_ids.add(block_id)
                continue
            group = merged_arms.get(block_id, [block_id])
            placement = self._place_with_fallback(block, free)
            level.placements[block_id] = placement
            placed_ids.add(block_id)
            # Merged branch arms share the leader's PE lane (they are
            # control-exclusive): place them within its coordinates.
            lane = placement.pes
            for sibling in group:
                if sibling == block_id or sibling in placed_ids:
                    continue
                sibling_block = cdfg.block(sibling)
                if sibling_block.op_count == 0:
                    placed_ids.add(sibling)
                    continue
                level.placements[sibling] = self._place_with_fallback(
                    sibling_block, lane
                )
                placed_ids.add(sibling)
            used = set(placement.pes)
            free = [c for c in free if c not in used]

        if self.enable_agile and free:
            self._expand(cdfg, nest, level, partial, free)
        return level

    # ------------------------------------------------------------------
    def _place_with_fallback(self, block: BasicBlock,
                             region: Sequence[Coord]) -> BBPlacement:
        """Place within ``region``; nonlinear ops may reach outside it to
        the nonlinear-capable pool (those PEs are shared, like the paper's
        four nonlinear-fitting PEs serving the whole array)."""
        region_list = list(region)
        if not region_list:
            region_list = list(self.grid)
        try:
            return place_block(block, self.params, region_list)
        except PlacementError:
            coords = list(self.grid)
            pool = coords[len(coords) - self.params.nonlinear_pes:]
            widened = region_list + [c for c in pool if c not in region_list]
            return place_block(block, self.params, widened)

    def _merge_groups(self, cdfg: CDFG,
                      own: Sequence[BlockId]) -> Dict[BlockId, List[BlockId]]:
        """Sibling branch arms inside the level: leader -> group."""
        own_set = set(own)
        groups: Dict[BlockId, List[BlockId]] = {}
        for block_id in own:
            term = cdfg.block(block_id).terminator
            if not isinstance(term, Branch) or term.is_loop_branch:
                continue
            arms = [t for t in (term.if_true, term.if_false)
                    if t in own_set and cdfg.block(t).role is BlockRole.BRANCH_ARM]
            if len(arms) == 2:
                leader = max(arms, key=lambda b: cdfg.block(b).op_count)
                other = arms[0] if arms[1] == leader else arms[1]
                groups[leader] = [leader, other]
                groups[other] = [leader, other]
        return groups

    # ------------------------------------------------------------------
    def _expand(self, cdfg: CDFG, nest: LoopNest, level: LevelSchedule,
                partial: Schedule, spare: List[Coord]) -> None:
        """Fill unassigned PEs: reshape/unroll the cheapest dependence-
        satisfying BB mapping onto them (``Expand`` in the paper)."""
        candidates: List[Tuple[int, BBPlacement]] = []
        for block_id in sorted(nest.blocks):
            if cdfg.block(block_id).role is BlockRole.LOOP_HEADER:
                # A header is the loop operator; it unrolls with its body,
                # never on its own.
                continue
            same_level = block_id in level.placements
            original = level.placements.get(block_id)
            if original is None:
                original = partial.placement_of(block_id)
            if original is None or original.op_count == 0:
                continue
            unrolled = unroll_placement(original, spare)
            if unrolled is not None:
                candidates.append((pe_waste(unrolled, original), unrolled))
            if not same_level and original.op_count > len(spare):
                # Fold an *inner-level* mapping onto the spare PEs so it
                # co-resides with this level (time-extend).  A same-level
                # block already owns its spatial mapping — folding it onto
                # the leftovers would discard PEs it already has.
                folded = reshape_placement(original, spare)
                candidates.append((pe_waste(folded, original), folded))
        if not candidates:
            return
        waste, chosen = min(candidates, key=lambda c: (c[0], c[1].block))
        level.waste = waste
        level.placements[chosen.block] = chosen
