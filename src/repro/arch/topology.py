"""PE grid topology: coordinates, neighbourhoods, and Manhattan geometry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class Coord:
    """A PE position on the array (row-major)."""

    row: int
    col: int

    def manhattan(self, other: "Coord") -> int:
        return abs(self.row - other.row) + abs(self.col - other.col)


class Grid:
    """A ``rows x cols`` PE grid with 4-neighbour (mesh) connectivity."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def contains(self, coord: Coord) -> bool:
        return 0 <= coord.row < self.rows and 0 <= coord.col < self.cols

    def index(self, coord: Coord) -> int:
        """Row-major PE index of a coordinate."""
        if not self.contains(coord):
            raise ConfigurationError(f"{coord} outside {self.rows}x{self.cols}")
        return coord.row * self.cols + coord.col

    def coord(self, index: int) -> Coord:
        """Coordinate of a row-major PE index."""
        if not 0 <= index < self.size:
            raise ConfigurationError(f"PE index {index} out of range")
        return Coord(index // self.cols, index % self.cols)

    def __iter__(self) -> Iterator[Coord]:
        for row in range(self.rows):
            for col in range(self.cols):
                yield Coord(row, col)

    def neighbours(self, coord: Coord) -> List[Coord]:
        """North/south/east/west neighbours that exist."""
        candidates = (
            Coord(coord.row - 1, coord.col),
            Coord(coord.row + 1, coord.col),
            Coord(coord.row, coord.col - 1),
            Coord(coord.row, coord.col + 1),
        )
        return [c for c in candidates if self.contains(c)]

    def xy_path(self, src: Coord, dst: Coord) -> List[Coord]:
        """Dimension-ordered (X then Y) route from ``src`` to ``dst``,
        inclusive of both endpoints."""
        if not (self.contains(src) and self.contains(dst)):
            raise ConfigurationError("route endpoints outside the grid")
        path = [src]
        cur = src
        step = 1 if dst.col > src.col else -1
        while cur.col != dst.col:
            cur = Coord(cur.row, cur.col + step)
            path.append(cur)
        step = 1 if dst.row > src.row else -1
        while cur.row != dst.row:
            cur = Coord(cur.row + step, cur.col)
            path.append(cur)
        return path

    def mean_distance(self) -> float:
        """Average Manhattan distance between distinct PEs (for latency
        estimates)."""
        coords = list(self)
        total = 0
        pairs = 0
        for i, a in enumerate(coords):
            for b in coords[i + 1:]:
                total += a.manhattan(b)
                pairs += 1
        return total / pairs if pairs else 0.0
