"""Hardware structure: parameters, PE grid topology, and networks."""

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.arch.topology import Coord, Grid

__all__ = ["ArchParams", "DEFAULT_PARAMS", "Coord", "Grid"]
