"""Hardware structure: parameters, descriptions, PE grid, and networks."""

from repro.arch.params import (
    ArchParams,
    CONTROL_TOPOLOGIES,
    DEFAULT_PARAMS,
)
from repro.arch.spec import (
    ARCH_SCHEMA_VERSION,
    ArchDescription,
    DEFAULT_ARCH,
    dump_arch,
    load_arch,
    load_arch_sweep,
    loads_arch,
    save_arch,
)
from repro.arch.topology import Coord, Grid

__all__ = [
    "ArchParams",
    "CONTROL_TOPOLOGIES",
    "DEFAULT_PARAMS",
    "ARCH_SCHEMA_VERSION",
    "ArchDescription",
    "DEFAULT_ARCH",
    "dump_arch",
    "load_arch",
    "load_arch_sweep",
    "loads_arch",
    "save_arch",
    "Coord",
    "Grid",
]
