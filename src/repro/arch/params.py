"""Architecture parameters.

One :class:`ArchParams` instance describes a Marionette configuration and is
shared by the compiler, the micro-architectural simulator, and the
trace-driven execution models — mirroring the paper's "parameterizable design
yields an architectural description shared with the software stack and
simulator" (Section 5).

Timing defaults follow the paper's relative-cost assumptions:

* configuring a PE takes 1 cycle, executing an instruction takes 2 cycles
  (Section 2.3);
* a transfer through the data mesh costs ~6 cycles, through the dedicated
  control network 1 cycle (Figure 4(d));
* a centralized-control-unit round trip (branch PE -> CCU -> branch-target
  reconfiguration) therefore costs two mesh traversals plus the decision and
  the configuration write.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ArchParams:
    """A Marionette hardware configuration."""

    rows: int = 4
    cols: int = 4

    # Relative timing (cycles).
    t_config: int = 1
    t_execute: int = 2
    data_net_latency: int = 6
    ctrl_net_latency: int = 1
    mesh_hop_latency: int = 1

    # Memory system.
    sram_banks: int = 4
    sram_kb: int = 16
    inst_scratchpad_kb: int = 2
    control_fifo_depth: int = 8

    # PE mix (Table 4: 12 ordinary + 4 nonlinear-fitting PEs).
    nonlinear_pes: int = 4

    # Physical.
    frequency_mhz: int = 500
    technology_nm: int = 28
    data_width_bits: int = 32

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("array dimensions must be positive")
        if self.nonlinear_pes > self.rows * self.cols:
            raise ConfigurationError(
                "more nonlinear PEs than PEs in the array"
            )
        for name in ("t_config", "t_execute", "data_net_latency",
                     "ctrl_net_latency", "mesh_hop_latency"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def n_pes(self) -> int:
        return self.rows * self.cols

    @property
    def ccu_round_trip(self) -> int:
        """Cost of indirecting control through the centralized control unit.

        Branch result travels to the CCU over the data/config network, the
        CCU decides, then re-configures the target PEs — two traversals plus
        decision plus configuration write (paper Section 3.2, Fig. 3(c)).
        """
        return 2 * self.data_net_latency + 1 + self.t_config

    def scaled(self, rows: int, cols: int) -> "ArchParams":
        """A copy with a different array size (for scalability studies)."""
        nonlinear = min(self.nonlinear_pes, rows * cols)
        return replace(self, rows=rows, cols=cols, nonlinear_pes=nonlinear)


#: The prototype configuration evaluated in the paper (4x4 PEs, 28 nm,
#: 500 MHz, 16 KB data scratchpad, 2 KB instruction scratchpad).
DEFAULT_PARAMS = ArchParams()
