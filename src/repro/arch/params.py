"""Architecture parameters.

One :class:`ArchParams` instance describes a Marionette configuration and is
shared by the compiler, the micro-architectural simulator, and the
trace-driven execution models — mirroring the paper's "parameterizable design
yields an architectural description shared with the software stack and
simulator" (Section 5).

Timing defaults follow the paper's relative-cost assumptions:

* configuring a PE takes 1 cycle, executing an instruction takes 2 cycles
  (Section 2.3);
* a transfer through the data mesh costs ~6 cycles, through the dedicated
  control network 1 cycle (Figure 4(d));
* a centralized-control-unit round trip (branch PE -> CCU -> branch-target
  reconfiguration) therefore costs two mesh traversals plus the decision and
  the configuration write.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigurationError

#: Control-network topology choices (paper Section 4 / Fig. 6).  The full
#: design pairs copy-and-spread (CS) stages for multicast with a Benes
#: permutation network; the ablated variants keep one half, and ``mesh``
#: drops the dedicated network entirely, sending control over the data
#: mesh.
CONTROL_TOPOLOGIES = ("mesh", "cs", "benes", "cs_benes")

#: Effective control-transfer cost per topology, as a multiple of
#: ``ctrl_net_latency``.  A CS-only network must serialize conflicting
#: peer-to-peer transfers (it can only spread, not permute); a
#: Benes-only network must serialize multicasts (it can only permute,
#: not spread).  Both are approximated as doubling the effective
#: transfer latency — the combined CS-Benes network is the calibrated
#: 1x baseline.  ``mesh`` is handled separately (data-mesh latency).
_TOPOLOGY_LATENCY_FACTOR = {"cs_benes": 1, "cs": 2, "benes": 2}


@dataclass(frozen=True)
class ArchParams:
    """A Marionette hardware configuration."""

    rows: int = 4
    cols: int = 4

    # Relative timing (cycles).
    t_config: int = 1
    t_execute: int = 2
    data_net_latency: int = 6
    ctrl_net_latency: int = 1
    mesh_hop_latency: int = 1

    # Memory system.
    sram_banks: int = 4
    sram_kb: int = 16
    inst_scratchpad_kb: int = 2
    control_fifo_depth: int = 8

    # PE mix (Table 4: 12 ordinary + 4 nonlinear-fitting PEs).
    nonlinear_pes: int = 4

    # Physical.
    frequency_mhz: int = 500
    technology_nm: int = 28
    data_width_bits: int = 32

    # Control-network topology (one of :data:`CONTROL_TOPOLOGIES`).
    control_topology: str = "cs_benes"

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("array dimensions must be positive")
        if self.nonlinear_pes > self.rows * self.cols:
            raise ConfigurationError(
                "more nonlinear PEs than PEs in the array"
            )
        if self.nonlinear_pes < 0:
            raise ConfigurationError("nonlinear_pes must be non-negative")
        for name in ("t_config", "t_execute", "data_net_latency",
                     "ctrl_net_latency", "mesh_hop_latency",
                     "sram_banks", "sram_kb", "inst_scratchpad_kb",
                     "control_fifo_depth", "frequency_mhz",
                     "technology_nm", "data_width_bits"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.control_topology not in CONTROL_TOPOLOGIES:
            raise ConfigurationError(
                f"control_topology {self.control_topology!r} unknown; "
                f"pick one of {CONTROL_TOPOLOGIES}"
            )

    @property
    def n_pes(self) -> int:
        return self.rows * self.cols

    @property
    def control_transfer_latency(self) -> int:
        """Cycles for one control transfer under the selected topology.

        ``cs_benes`` is the calibrated baseline (``ctrl_net_latency``);
        the single-half networks pay the serialization factor documented
        at :data:`_TOPOLOGY_LATENCY_FACTOR`; ``mesh`` has no dedicated
        control network at all, so control rides the data mesh.
        """
        if self.control_topology == "mesh":
            return self.data_net_latency
        return (self.ctrl_net_latency
                * _TOPOLOGY_LATENCY_FACTOR[self.control_topology])

    @property
    def ccu_round_trip(self) -> int:
        """Cost of indirecting control through the centralized control unit.

        Branch result travels to the CCU over the data/config network, the
        CCU decides, then re-configures the target PEs — two traversals plus
        decision plus configuration write (paper Section 3.2, Fig. 3(c)).
        """
        return 2 * self.data_net_latency + 1 + self.t_config

    def scaled(self, rows: int, cols: int) -> "ArchParams":
        """A copy with a different array size (for scalability studies)."""
        nonlinear = min(self.nonlinear_pes, rows * cols)
        return replace(self, rows=rows, cols=cols, nonlinear_pes=nonlinear)


#: The prototype configuration evaluated in the paper (4x4 PEs, 28 nm,
#: 500 MHz, 16 KB data scratchpad, 2 KB instruction scratchpad).
DEFAULT_PARAMS = ArchParams()
