"""Area and delay models for the networks (Table 6, Fig. 13).

The paper's absolute numbers come from Synopsys DC synthesis at 28 nm; this
module replaces synthesis with analytic models **calibrated to the published
component areas** (Table 4) so that relative comparisons — the network area
ratio of Table 6 and the delay-vs-stages scaling of Fig. 13 — are computed
from structure (switch counts, stage counts), not hardcoded per experiment.

Calibration anchors (28 nm, 32-bit data / 12-bit control):

* Marionette control network (two 16x16 CS + one 64x64 Benes, 416 two-by-two
  switches) = 0.0022 mm^2  ->  control switch area;
* Marionette data mesh (16 routers) = 0.0063 mm^2  ->  router area;
* memory access interconnect = 0.0030 mm^2 (fixed block).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.arch.network.benes import BenesNetwork
from repro.arch.network.cs import CSNetwork
from repro.arch.network.cs_benes import ControlNetwork


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def benes_switch_count(n: int) -> int:
    """2x2 switches in an ``n x n`` Benes network."""
    return BenesNetwork(_next_power_of_two(max(2, n))).switch_count


def cs_switch_count(n: int) -> int:
    """2x2 switches in an ``n x n`` consecutive-spreading network."""
    return CSNetwork(_next_power_of_two(max(2, n))).switch_count


def crossbar_crosspoint_count(n: int) -> int:
    """Crosspoints in an ``n x n`` crossbar (the structure Benes avoids)."""
    return n * n


# ----------------------------------------------------------------------
# Calibration constants (28 nm)
# ----------------------------------------------------------------------
#: Table 4: control network of the 4x4 prototype = 0.0022 mm^2 over the
#: 416 switches of its CS-Benes fabric.
_PROTO_CTRL_SWITCHES = (
    ControlNetwork(16).switch_count
)
CTRL_SWITCH_AREA_MM2 = 0.0022 / _PROTO_CTRL_SWITCHES

#: Table 4: data mesh of the 4x4 prototype = 0.0063 mm^2 over 16 routers.
DATA_ROUTER_AREA_MM2 = 0.0063 / 16

#: Table 4: memory access interconnect (fixed block for 4 banks).
MEMORY_INTERCONNECT_AREA_MM2 = 0.0030

#: Nominal 28 nm switch traversal delay (ns) and per-stage wire delay used
#: by the Fig. 13 delay model; calibrated so the 19-stage prototype fabric
#: closes timing in a single 500 MHz cycle (paper Fig. 4(d)).
SWITCH_DELAY_NS = 0.07
WIRE_DELAY_PER_STAGE_NS = 0.025
#: Fraction of traversal delay recoverable by synthesis under a tight clock
#: constraint (faster cells, more buffering).
SYNTHESIS_SPEEDUP_MAX = 0.35


@dataclass(frozen=True)
class NetworkAreaModel:
    """Computes network areas for a Marionette instance."""

    n_pes: int = 16
    data_width_bits: int = 32
    ctrl_width_bits: int = 12

    def control_network_area(self) -> float:
        """Area (mm^2) of the CS-Benes control network for ``n_pes``."""
        switches = ControlNetwork(self.n_pes).switch_count
        width_scale = self.ctrl_width_bits / 12
        return switches * CTRL_SWITCH_AREA_MM2 * width_scale

    def data_network_area(self) -> float:
        """Area (mm^2) of the data mesh (one router per PE)."""
        width_scale = self.data_width_bits / 32
        return self.n_pes * DATA_ROUTER_AREA_MM2 * width_scale

    def memory_interconnect_area(self) -> float:
        return MEMORY_INTERCONNECT_AREA_MM2 * (self.n_pes / 16)

    def total_network_area(self) -> float:
        """Total network area as counted by Table 6 (data + memory +
        control)."""
        return (
            self.data_network_area()
            + self.memory_interconnect_area()
            + self.control_network_area()
        )

    def crossbar_equivalent_area(self) -> float:
        """What a full crossbar control fabric would cost instead (the
        design alternative rejected in Section 4.1).

        Sized at the CS-Benes terminal count (4x the PEA width: PEA ports
        plus controller/FIFO ports on both sides, Fig. 6(c)).
        """
        ports = 4 * self.n_pes
        per_crosspoint = CTRL_SWITCH_AREA_MM2 / 4  # a 2x2 switch ~ 4 xpoints
        return crossbar_crosspoint_count(ports) * per_crosspoint


# ----------------------------------------------------------------------
# Fig. 13: delay vs stages vs synthesis frequency
# ----------------------------------------------------------------------
def delay_model(stages: int, frequency_ghz: float) -> Dict[str, float]:
    """Control-network delay for a given stage count and clock target.

    Models DC synthesis behaviour: under a tighter clock the tools buy back
    up to ``SYNTHESIS_SPEEDUP_MAX`` of the per-switch delay; wire delay per
    stage is constant.  Returns the raw network delay, the clock period, and
    the resulting latency in cycles (the quantity Fig. 13 argues stays low).
    """
    if stages <= 0:
        raise ConfigurationError("stage count must be positive")
    if frequency_ghz <= 0:
        raise ConfigurationError("frequency must be positive")
    period_ns = 1.0 / frequency_ghz
    # Normalised synthesis pressure: 0 at 0.5 GHz (relaxed), 1 at 2 GHz.
    pressure = min(1.0, max(0.0, (frequency_ghz - 0.5) / 1.5))
    switch_delay = SWITCH_DELAY_NS * (1 - SYNTHESIS_SPEEDUP_MAX * pressure)
    network_delay = stages * (switch_delay + WIRE_DELAY_PER_STAGE_NS)
    cycles = max(1, math.ceil(network_delay / period_ns))
    return {
        "stages": stages,
        "frequency_ghz": frequency_ghz,
        "network_delay_ns": network_delay,
        "clock_period_ns": period_ns,
        "latency_cycles": cycles,
        "meets_single_cycle": network_delay <= period_ns,
    }


def scaling_series(
    stage_range: Sequence[int] = (3, 5, 7, 9, 11, 13),
    frequencies_ghz: Sequence[float] = (0.5, 1.0, 2.0),
) -> List[Dict[str, float]]:
    """The Fig. 13 sweep: every (stages, frequency) point."""
    return [
        delay_model(stages, freq)
        for freq in frequencies_ghz
        for stages in stage_range
    ]


def stages_for_array(n_pes: int) -> int:
    """Control-network stage count for an ``n_pes`` array (CS + Benes +
    CS along the critical path)."""
    cs = CSNetwork(_next_power_of_two(max(2, n_pes))).stages
    benes = BenesNetwork(_next_power_of_two(max(2, 4 * n_pes))).stages
    return 2 * cs + benes
