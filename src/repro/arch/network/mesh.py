"""Data mesh network: XY routing, link occupancy, transfer latency.

The data flow plane connects PEs with a conventional mesh (paper Fig. 4(d):
"Data Mesh Network", ~6-cycle transfers vs the control network's 1 cycle).
The compiler uses :class:`DataMesh` to route placed DFG edges and derive the
initiation-interval pressure caused by link sharing; the execution models
use its latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.arch.topology import Coord, Grid

#: A directed mesh link between neighbouring PE coordinates.
Link = Tuple[Coord, Coord]


@dataclass
class RoutedEdge:
    """One routed producer->consumer data edge."""

    src: Coord
    dst: Coord
    path: List[Coord]

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    @property
    def links(self) -> List[Link]:
        return list(zip(self.path, self.path[1:]))


class DataMesh:
    """A mesh interconnect over a PE grid with per-link occupancy."""

    def __init__(self, grid: Grid, *, hop_latency: int = 1,
                 injection_latency: int = 1) -> None:
        self.grid = grid
        self.hop_latency = hop_latency
        self.injection_latency = injection_latency
        self.link_load: Dict[Link, int] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.link_load.clear()

    def route(self, src: Coord, dst: Coord) -> RoutedEdge:
        """Route with dimension-ordered (XY) routing, recording link load."""
        path = self.grid.xy_path(src, dst)
        edge = RoutedEdge(src, dst, path)
        for link in edge.links:
            self.link_load[link] = self.link_load.get(link, 0) + 1
        return edge

    def latency(self, edge: RoutedEdge) -> int:
        """Transfer latency: injection + per-hop traversal (+ejection)."""
        if edge.hops == 0:
            return 0  # same PE, register forwarding
        return self.injection_latency + edge.hops * self.hop_latency + 1

    def mean_transfer_latency(self) -> float:
        """Average transfer latency between distinct PEs.

        For the 4x4 prototype this evaluates to ~6 cycles, matching the
        paper's data network annotation in Fig. 4(d).
        """
        return (
            self.injection_latency
            + self.grid.mean_distance() * self.hop_latency
            + 1
        )

    def max_link_load(self) -> int:
        """Worst per-link sharing; each shared link adds II pressure because
        a link carries one element per cycle."""
        if not self.link_load:
            return 0
        return max(self.link_load.values())

    def congestion_ii(self) -> int:
        """The initiation interval the routed edge set can sustain."""
        return max(1, self.max_link_load())
