"""The composed CS-Benes control network (paper Fig. 6(c)).

Structure for a 16-PE array: the 16 PEA control outputs plus 16
controller/FIFO ports feed a 16x16 CS broadcast stage, a 64x64 Benes
permutation stage, and a second 16x16 CS stage back to the 32 PEA/controller
control inputs.  The composition gives *configurable output with fixed
connection and no arbitration*: each path contributes one element of
throughput every cycle.

:class:`ControlNetwork` exposes the cycle-level contract the rest of the
system relies on:

* any set of control messages whose destination sets are disjoint is
  delivered in ``ctrl_net_latency`` cycles (peer-to-peer, single cycle at
  the prototype's 500 MHz);
* two messages addressing the same destination in the same cycle conflict —
  the caller (the Control Flow Scheduler's arbiter) must serialise them;
* multicast to arbitrary destination sets is realised by the Benes
  permutation aligning sources onto consecutive intermediate terminals and
  the CS stages spreading them (checked structurally via switch capacity,
  not re-routed per message).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.arch.network.benes import BenesNetwork
from repro.arch.network.cs import CSNetwork


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


@dataclass(frozen=True)
class ControlMessage:
    """A control flow transfer: new instruction address to a set of PEs.

    ``payload`` is opaque to the network (the simulator sends instruction
    addresses, matching "the control flow is represented by instruction
    addresses", Section 4.1).
    """

    src: int
    dests: FrozenSet[int]
    payload: object = None

    @staticmethod
    def to(src: int, dests: Iterable[int], payload: object = None
           ) -> "ControlMessage":
        return ControlMessage(src, frozenset(dests), payload)


@dataclass
class DeliveryReport:
    """Result of offering one cycle's messages to the network."""

    delivered: List[ControlMessage]
    rejected: List[ControlMessage]
    latency: int


class ControlNetwork:
    """Cycle-level model of the CS-Benes control network."""

    def __init__(self, n_pes: int, *, extra_ports: Optional[int] = None,
                 latency: int = 1) -> None:
        if n_pes <= 0:
            raise NetworkError("control network needs at least one PE port")
        self.n_pes = n_pes
        # Controller + control FIFO ports mirror the PEA port count
        # (Fig. 6(c): x16 PEA + x16 controller/FIFO on each side).
        self.extra_ports = n_pes if extra_ports is None else extra_ports
        self.latency = latency
        terminals = _next_power_of_two(2 * (self.n_pes + self.extra_ports))
        # Fig. 6(c): CS stages at PEA width, Benes at the full port count
        # (16x16 CS + 64x64 Benes for the 4x4 prototype).
        self.ingress_cs = CSNetwork(_next_power_of_two(self.n_pes))
        self.egress_cs = CSNetwork(_next_power_of_two(self.n_pes))
        self.benes = BenesNetwork(terminals)
        # Telemetry.
        self.cycles = 0
        self.messages_delivered = 0
        self.conflicts = 0

    # ------------------------------------------------------------------
    @property
    def switch_count(self) -> int:
        return (
            self.ingress_cs.switch_count
            + self.egress_cs.switch_count
            + self.benes.switch_count
        )

    # ------------------------------------------------------------------
    def offer(self, messages: Sequence[ControlMessage]) -> DeliveryReport:
        """Offer one cycle's control messages.

        Messages with pairwise-disjoint destination sets are delivered with
        ``latency`` cycles; destination conflicts reject the later message
        (callers re-offer next cycle).  Source ports can issue one message
        per cycle.
        """
        delivered: List[ControlMessage] = []
        rejected: List[ControlMessage] = []
        used_dests: set = set()
        used_srcs: set = set()
        for msg in messages:
            if not 0 <= msg.src < self.n_pes + self.extra_ports:
                raise NetworkError(f"source port {msg.src} out of range")
            bad = [d for d in msg.dests if not 0 <= d < self.n_pes + self.extra_ports]
            if bad:
                raise NetworkError(f"destination ports {bad} out of range")
            if msg.src in used_srcs or used_dests & msg.dests:
                rejected.append(msg)
                continue
            used_srcs.add(msg.src)
            used_dests |= msg.dests
            delivered.append(msg)
        self.cycles += 1
        self.messages_delivered += len(delivered)
        self.conflicts += len(rejected)
        return DeliveryReport(delivered, rejected, self.latency)

    # ------------------------------------------------------------------
    def realise(self, messages: Sequence[ControlMessage]) -> Dict[int, object]:
        """Functionally deliver an accepted message set: dest -> payload.

        Used by tests to confirm the behavioural contract matches what the
        switch fabric can realise: sources are aligned by the Benes stage
        (verified by routing an actual permutation) and spread by the CS
        stages.
        """
        report = self.offer(messages)
        if report.rejected:
            raise NetworkError(
                f"{len(report.rejected)} conflicting messages in realise()"
            )
        # Build a permutation placing each source at the first terminal of
        # a consecutive destination group, padding with identity.
        n = self.benes.n
        perm: List[Optional[int]] = [None] * n
        cursor = 0
        for msg in report.delivered:
            perm[msg.src] = cursor
            cursor += len(msg.dests)
        unused_outputs = [o for o in range(n) if o not in set(
            p for p in perm if p is not None
        )]
        it = iter(unused_outputs)
        for i in range(n):
            if perm[i] is None:
                perm[i] = next(it)
        self.benes.route([p for p in perm if p is not None])  # must not raise

        out: Dict[int, object] = {}
        for msg in report.delivered:
            for dest in msg.dests:
                out[dest] = msg.payload
        return out
