"""Consecutive Spreading (CS) broadcast network — behavioural model.

The Benes network is rearrangeable non-blocking but cannot replicate a
value; Marionette composes it with CS networks (Lea, 1988) that broadcast an
input to a *consecutive* range of outputs with far fewer switches than
cascaded full-size networks (paper Section 4.1, Fig. 6(b)).

This module models the CS network at the behavioural level:

* structure — ``log2(n)`` stages of ``n/2`` two-by-two switches whose
  crosspoints can replicate an input to both outputs (switch count used by
  the area model);
* capability — a single cycle can realise any set of broadcasts whose output
  ranges are pairwise disjoint and *order-preserving* with respect to the
  sources (the consecutive-spreading property: signal order is maintained,
  ranges cannot cross);
* function — :meth:`CSNetwork.apply` computes the output vector and rejects
  configurations outside the capability.

The switch-level routing bits of the 1988 design are not reproduced; the
area, delay and admissible-traffic behaviour — all the evaluation depends
on — are.  (Documented as a substitution in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import NetworkError


def _is_power_of_two(n: int) -> bool:
    return n >= 2 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class Broadcast:
    """One broadcast request: input ``src`` to outputs ``lo..hi`` inclusive."""

    src: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise NetworkError(f"empty broadcast range {self.lo}..{self.hi}")

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


class CSNetwork:
    """An ``n x n`` consecutive-spreading broadcast network."""

    def __init__(self, n: int) -> None:
        if not _is_power_of_two(n):
            raise NetworkError(f"CS size must be a power of two, got {n}")
        self.n = n

    @property
    def stages(self) -> int:
        """Switch stages: ``log2(n)``."""
        return self.n.bit_length() - 1

    @property
    def switch_count(self) -> int:
        """Total 2x2 spreading switches: ``stages * n/2``."""
        return self.stages * self.n // 2

    # ------------------------------------------------------------------
    def admissible(self, broadcasts: Sequence[Broadcast]) -> bool:
        """Whether the set of broadcasts can be realised in one pass.

        Requires: terminals in range, pairwise disjoint output ranges,
        distinct sources, and source order matching range order (the
        *consecutive spreading* non-crossing property).
        """
        try:
            self._check(broadcasts)
        except NetworkError:
            return False
        return True

    def _check(self, broadcasts: Sequence[Broadcast]) -> None:
        for b in broadcasts:
            if not 0 <= b.src < self.n:
                raise NetworkError(f"source {b.src} out of range")
            if not (0 <= b.lo and b.hi < self.n):
                raise NetworkError(f"range {b.lo}..{b.hi} out of range")
        by_range = sorted(broadcasts, key=lambda b: b.lo)
        for a, b in zip(by_range, by_range[1:]):
            if b.lo <= a.hi:
                raise NetworkError(
                    f"broadcast ranges overlap: {a.lo}..{a.hi} and "
                    f"{b.lo}..{b.hi}"
                )
            if b.src <= a.src:
                raise NetworkError(
                    "consecutive spreading requires source order to match "
                    f"range order (sources {a.src}, {b.src})"
                )

    def apply(self, broadcasts: Sequence[Broadcast],
              inputs: Sequence) -> List[Optional[object]]:
        """Compute the output vector for an admissible broadcast set.

        Outputs not covered by any range are ``None``.

        Raises:
            NetworkError: if the broadcast set is not admissible.
        """
        if len(inputs) != self.n:
            raise NetworkError(f"expected {self.n} inputs, got {len(inputs)}")
        self._check(broadcasts)
        outputs: List[Optional[object]] = [None] * self.n
        for b in broadcasts:
            for out in range(b.lo, b.hi + 1):
                outputs[out] = inputs[b.src]
        return outputs
