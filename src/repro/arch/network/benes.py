"""Benes network: construction, permutation routing, functional simulation.

A Benes network on ``n = 2^k`` terminals is the rearrangeable non-blocking
butterfly-shaped structure the paper uses as the starting point of the
control network (Section 4.1, Fig. 6(a)): ``2*log2(n) - 1`` stages of
``n/2`` two-by-two switches, far cheaper than an ``n x n`` crossbar.

Routing uses the classic looping algorithm: inputs sharing a first-stage
switch must enter different half-size subnetworks, outputs sharing a
last-stage switch must leave from different subnetworks; walking these
constraints two-colours every terminal, then the two half permutations are
routed recursively.  :meth:`BenesNetwork.simulate` pushes values through the
configured switches to prove the configuration realises the permutation —
tests exercise this on every permutation of small networks and random
permutations of large ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError


def _is_power_of_two(n: int) -> bool:
    return n >= 2 and (n & (n - 1)) == 0


@dataclass
class RouteConfig:
    """Switch settings realising one permutation.

    ``first`` / ``last`` hold per-switch *cross* flags for the entry and exit
    stages (``False`` = straight).  For the base two-terminal network only
    ``first`` is populated.
    """

    n: int
    first: List[bool] = field(default_factory=list)
    last: List[bool] = field(default_factory=list)
    upper: Optional["RouteConfig"] = None
    lower: Optional["RouteConfig"] = None

    def switch_settings_count(self) -> int:
        """Total number of configured switches (for area cross-checks)."""
        count = len(self.first) + len(self.last)
        if self.upper is not None:
            count += self.upper.switch_settings_count()
        if self.lower is not None:
            count += self.lower.switch_settings_count()
        return count


class BenesNetwork:
    """An ``n x n`` Benes network (``n`` must be a power of two, >= 2)."""

    def __init__(self, n: int) -> None:
        if not _is_power_of_two(n):
            raise NetworkError(f"Benes size must be a power of two, got {n}")
        self.n = n

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------
    @property
    def stages(self) -> int:
        """Number of switch stages: ``2*log2(n) - 1``."""
        return 2 * (self.n.bit_length() - 1) - 1

    @property
    def switch_count(self) -> int:
        """Total 2x2 switches: ``stages * n/2``."""
        return self.stages * self.n // 2

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, permutation: Sequence[int]) -> RouteConfig:
        """Compute switch settings realising ``permutation``.

        Args:
            permutation: ``permutation[i]`` is the output terminal for input
                ``i``; must be a permutation of ``range(n)``.

        Raises:
            NetworkError: if the argument is not a valid permutation.
        """
        perm = list(permutation)
        if sorted(perm) != list(range(self.n)):
            raise NetworkError(
                f"not a permutation of range({self.n}): {permutation!r}"
            )
        return self._route(perm)

    def _route(self, perm: List[int]) -> RouteConfig:
        n = len(perm)
        if n == 2:
            return RouteConfig(n=2, first=[perm[0] == 1])

        inverse = [0] * n
        for i, o in enumerate(perm):
            inverse[o] = i

        # Two-colour terminals: subnet[i] == 0 routes input i via the upper
        # half network, 1 via the lower.
        subnet: List[Optional[int]] = [None] * n
        for start in range(n):
            if subnet[start] is not None:
                continue
            i, colour = start, 0
            while subnet[i] is None:
                subnet[i] = colour
                partner_in = i ^ 1              # shares the first-stage switch
                if subnet[partner_in] is None:
                    subnet[partner_in] = colour ^ 1
                partner_out = perm[partner_in] ^ 1  # shares last-stage switch
                i = inverse[partner_out]
                colour = subnet[partner_in] ^ 1

        first = [subnet[2 * s] == 1 for s in range(n // 2)]
        upper_perm: List[int] = [0] * (n // 2)
        lower_perm: List[int] = [0] * (n // 2)
        for i in range(n):
            sub_in = i // 2
            sub_out = perm[i] // 2
            if subnet[i] == 0:
                upper_perm[sub_in] = sub_out
            else:
                lower_perm[sub_in] = sub_out
        # Last-stage switch t is crossed when the upper subnetwork's output t
        # feeds terminal 2t+1 instead of 2t.
        last = [False] * (n // 2)
        for i in range(n):
            if subnet[i] == 0:
                last[perm[i] // 2] = perm[i] % 2 == 1

        return RouteConfig(
            n=n,
            first=first,
            last=last,
            upper=self._route(upper_perm),
            lower=self._route(lower_perm),
        )

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def simulate(self, config: RouteConfig, inputs: Sequence) -> List:
        """Push ``inputs`` through the configured switches.

        Returns the output vector; with a config from :meth:`route` this
        satisfies ``outputs[perm[i]] == inputs[i]``.
        """
        if len(inputs) != self.n:
            raise NetworkError(
                f"expected {self.n} inputs, got {len(inputs)}"
            )
        if config.n != self.n:
            raise NetworkError("config size does not match network size")
        return self._simulate(config, list(inputs))

    def _simulate(self, config: RouteConfig, inputs: List) -> List:
        n = len(inputs)
        if n == 2:
            cross = config.first[0]
            return [inputs[1], inputs[0]] if cross else list(inputs)

        upper_in = [None] * (n // 2)
        lower_in = [None] * (n // 2)
        for s in range(n // 2):
            a, b = inputs[2 * s], inputs[2 * s + 1]
            if config.first[s]:
                a, b = b, a
            upper_in[s] = a
            lower_in[s] = b

        assert config.upper is not None and config.lower is not None
        upper_out = self._simulate(config.upper, upper_in)
        lower_out = self._simulate(config.lower, lower_in)

        outputs = [None] * n
        for t in range(n // 2):
            a, b = upper_out[t], lower_out[t]
            if config.last[t]:
                a, b = b, a
            outputs[2 * t] = a
            outputs[2 * t + 1] = b
        return outputs

    def verify(self, permutation: Sequence[int]) -> bool:
        """Route then simulate; ``True`` iff the permutation is realised."""
        config = self.route(permutation)
        outputs = self.simulate(config, list(range(self.n)))
        return all(outputs[permutation[i]] == i for i in range(self.n))
