"""On-chip networks: the data mesh and the CS-Benes control network."""

from repro.arch.network.benes import BenesNetwork, RouteConfig
from repro.arch.network.cs import CSNetwork, Broadcast
from repro.arch.network.cs_benes import ControlNetwork, ControlMessage
from repro.arch.network.mesh import DataMesh
from repro.arch.network.area import (
    NetworkAreaModel,
    benes_switch_count,
    crossbar_crosspoint_count,
    cs_switch_count,
    delay_model,
)

__all__ = [
    "BenesNetwork",
    "RouteConfig",
    "CSNetwork",
    "Broadcast",
    "ControlNetwork",
    "ControlMessage",
    "DataMesh",
    "NetworkAreaModel",
    "benes_switch_count",
    "crossbar_crosspoint_count",
    "cs_switch_count",
    "delay_model",
]
