"""On-disk architecture descriptions: one JSON file defines a CGRA variant.

The paper's central claim is that a *parameterizable* design yields one
architectural description shared by the software stack and the simulator
(Section 5).  This module is that description's file format: a small,
versioned, schema-checked JSON document that fully constructs an
:class:`~repro.arch.params.ArchParams` — array geometry, relative
timings, memory system, PE mix, physical parameters — plus the control
network topology choice (``mesh`` / ``cs`` / ``benes`` / ``cs_benes``).
The compiler pipeline, every execution model, and the
micro-architectural simulator consume the resulting ``ArchParams``
unchanged, so a spec file is all it takes to evaluate a new variant:

    {
      "schema": "repro-arch",
      "version": 1,
      "name": "marionette-default",
      "description": "paper prototype: 4x4, 28 nm, 500 MHz",
      "network": "cs_benes",
      "params": {"rows": 4, "cols": 4, ...}
    }

Laws the format keeps (locked by ``tests/test_arch_spec.py``):

* **round trip** — ``loads_arch(dump_arch(desc)) == desc``;
* **unknown keys are errors** — a typo'd parameter fails loudly instead
  of silently evaluating the default architecture;
* **version skew is an error** — a document written for another schema
  version is rejected with both versions named;
* **torn files are diagnostics** — invalid/truncated JSON is a one-line
  :class:`~repro.errors.ConfigurationError` naming the file, never a
  traceback;
* **identity** — :meth:`ArchDescription.fingerprint` is the SHA-256 of
  the canonical document, so two variants can never collide and a sweep
  can key per-variant results.

``ArchParams`` validation (positivity, topology membership, PE-mix
bounds) runs during construction, so every load is fully checked.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.arch.params import ArchParams, CONTROL_TOPOLOGIES
from repro.errors import ConfigurationError

#: Format marker carried by every arch description document.
ARCH_SCHEMA = "repro-arch"

#: Bump when the document shape changes incompatibly.
ARCH_SCHEMA_VERSION = 1

#: ``params`` keys a document may set: every ``ArchParams`` field except
#: the topology, which has its own top-level ``network`` key (one source
#: of truth, not two).
_PARAM_FIELDS = tuple(
    f.name for f in dataclasses.fields(ArchParams)
    if f.name != "control_topology"
)

_REQUIRED_KEYS = ("schema", "version", "name", "network", "params")
_OPTIONAL_KEYS = ("description",)


@dataclass(frozen=True)
class ArchDescription:
    """One named architecture variant: an ``ArchParams`` plus metadata.

    ``params.control_topology`` carries the network choice, so the
    description is consumed exactly like a hand-built ``ArchParams`` —
    ``RunSpec`` fingerprints, wire payloads, and the cache key all see
    the full architecture identity with zero extra plumbing.
    """

    name: str
    params: ArchParams
    description: str = ""

    @property
    def network(self) -> str:
        return self.params.control_topology

    def to_document(self) -> Dict[str, object]:
        """The canonical JSON-safe document (every field explicit)."""
        params = {
            name: getattr(self.params, name) for name in _PARAM_FIELDS
        }
        document: Dict[str, object] = {
            "schema": ARCH_SCHEMA,
            "version": ARCH_SCHEMA_VERSION,
            "name": self.name,
            "network": self.network,
            "params": params,
        }
        if self.description:
            document["description"] = self.description
        return document

    def fingerprint(self) -> str:
        """SHA-256 content address of the canonical document."""
        canonical = json.dumps(self.to_document(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _check(condition: bool, source: str, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"{source}: {message}")


def validate_document(document: object,
                      source: str = "<arch spec>") -> Dict[str, object]:
    """Schema-check one parsed document; returns it on success.

    Every diagnostic is one line and names ``source`` (the file path,
    for :func:`load_arch`) plus the offending key, so a typo in a sweep
    directory is findable without a debugger.
    """
    _check(isinstance(document, dict), source,
           "arch description must be a JSON object")
    _check(document.get("schema") == ARCH_SCHEMA, source,
           f"not an arch description (schema "
           f"{document.get('schema')!r}, expected {ARCH_SCHEMA!r})")
    version = document.get("version")
    _check(version == ARCH_SCHEMA_VERSION, source,
           f"schema version {version!r} not supported "
           f"(this build reads version {ARCH_SCHEMA_VERSION})")
    known = set(_REQUIRED_KEYS) | set(_OPTIONAL_KEYS)
    unknown = sorted(set(document) - known)
    _check(not unknown, source,
           f"unknown key(s) {unknown} (known: {sorted(known)})")
    missing = sorted(set(_REQUIRED_KEYS) - set(document))
    _check(not missing, source, f"missing required key(s) {missing}")
    name = document["name"]
    _check(isinstance(name, str) and name.strip() != "", source,
           "name must be a non-empty string")
    _check(isinstance(document.get("description", ""), str), source,
           "description must be a string")
    network = document["network"]
    _check(network in CONTROL_TOPOLOGIES, source,
           f"network {network!r} unknown; "
           f"pick one of {CONTROL_TOPOLOGIES}")
    params = document["params"]
    _check(isinstance(params, dict), source,
           "params must be a JSON object of ArchParams fields")
    if "control_topology" in params:
        raise ConfigurationError(
            f"{source}: set the topology with the top-level 'network' "
            f"key, not params.control_topology"
        )
    bad = sorted(set(params) - set(_PARAM_FIELDS))
    _check(not bad, source,
           f"unknown params key(s) {bad} "
           f"(known: {sorted(_PARAM_FIELDS)})")
    for key, value in params.items():
        # bools are ints to isinstance(); reject them explicitly so
        # "rows": true cannot construct a 1-row array.
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigurationError(
                f"{source}: params.{key} must be an integer, "
                f"got {value!r}"
            )
    return document


def from_document(document: object,
                  source: str = "<arch spec>") -> ArchDescription:
    """Build a validated :class:`ArchDescription` from a parsed document."""
    document = validate_document(document, source)
    try:
        params = ArchParams(control_topology=document["network"],
                            **document["params"])
    except ConfigurationError as error:
        raise ConfigurationError(f"{source}: {error}") from error
    return ArchDescription(
        name=document["name"].strip(),
        params=params,
        description=document.get("description", ""),
    )


def loads_arch(text: str, source: str = "<arch spec>") -> ArchDescription:
    """Parse + validate an arch description from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"{source}: invalid arch description JSON ({error})"
        ) from error
    return from_document(document, source)


def load_arch(path) -> ArchDescription:
    """Load one arch description file (the ``--arch FILE`` entry point)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigurationError(
            f"cannot read arch description {path}: {error}"
        ) from error
    return loads_arch(text, source=str(path))


def dump_arch(desc: ArchDescription) -> str:
    """The canonical serialized form (stable across dumps)."""
    return json.dumps(desc.to_document(), indent=2, sort_keys=True) + "\n"


def save_arch(desc: ArchDescription, path) -> None:
    Path(path).write_text(dump_arch(desc), encoding="utf-8")


def load_arch_sweep(directory) -> List[Tuple[Path, ArchDescription]]:
    """Every ``*.json`` arch description in ``directory``, by filename.

    The deterministic filename order is the sweep's section order, so
    two machines sweeping one directory emit sections identically.
    Duplicate variant names are rejected — sections must be
    distinguishable — and an empty directory is an error, not an empty
    report.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(
            f"arch sweep directory {directory} does not exist"
        )
    paths = sorted(p for p in directory.iterdir()
                   if p.suffix == ".json" and p.is_file())
    if not paths:
        raise ConfigurationError(
            f"arch sweep directory {directory} holds no .json "
            f"arch descriptions"
        )
    entries = [(path, load_arch(path)) for path in paths]
    seen: Dict[str, Path] = {}
    for path, desc in entries:
        if desc.name in seen:
            raise ConfigurationError(
                f"arch sweep: {path} and {seen[desc.name]} both name "
                f"the variant {desc.name!r} — variant names must be "
                f"unique within a sweep"
            )
        seen[desc.name] = path
    return entries


#: The paper's prototype, as a description (what the default spec file
#: under ``examples/arch/`` serializes).
DEFAULT_ARCH = ArchDescription(
    name="marionette-default",
    params=ArchParams(),
    description="paper prototype: 4x4 PEs, CS-Benes control network, "
                "28 nm, 500 MHz",
)
