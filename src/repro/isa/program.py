"""Programs: per-PE instruction buffers and the whole-array configuration."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import EncodingError
from repro.isa.control import ControlDirective, NO_ADDR
from repro.isa.data import DataInstruction

#: Instruction buffer capacity per PE (addresses 0..MAX_ADDR-1).
MAX_ADDR = 64


@dataclass(frozen=True)
class TriggerEntry:
    """One instruction-buffer entry: data instruction + sender directive."""

    addr: int
    data: DataInstruction
    control: ControlDirective = field(default_factory=ControlDirective.none)

    def __post_init__(self) -> None:
        if not 0 <= self.addr < MAX_ADDR:
            raise EncodingError(f"instruction address {self.addr} out of range")


class PEProgram:
    """The instruction buffer contents of one PE."""

    def __init__(self) -> None:
        self.entries: Dict[int, TriggerEntry] = {}

    def add(self, entry: TriggerEntry) -> None:
        if entry.addr in self.entries:
            raise EncodingError(
                f"duplicate instruction address {entry.addr}"
            )
        self.entries[entry.addr] = entry

    def get(self, addr: int) -> Optional[TriggerEntry]:
        return self.entries.get(addr)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(sorted(self.entries.values(), key=lambda e: e.addr))


class ArrayProgram:
    """A full array configuration: one program per PE plus metadata."""

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        self.pe_programs: Dict[int, PEProgram] = {}
        #: PE -> instruction address activated at kernel start.
        self.initial_addrs: Dict[int, int] = {}
        #: array_id -> (name, base address, length) in the data scratchpad.
        self.array_table: Dict[int, Tuple[str, int, int]] = {}
        #: (pe, reg) -> initial value (loop-carried accumulator seeds).
        self.reg_init: Dict[Tuple[int, int], float] = {}
        self._array_index: Optional[Dict[str, Tuple[int, int]]] = None

    def program_for(self, pe: int) -> PEProgram:
        if not 0 <= pe < self.n_pes:
            raise EncodingError(f"PE index {pe} out of range")
        if pe not in self.pe_programs:
            self.pe_programs[pe] = PEProgram()
        return self.pe_programs[pe]

    def set_initial(self, pe: int, addr: int) -> None:
        if not 0 <= pe < self.n_pes:
            raise EncodingError(f"PE index {pe} out of range")
        self.initial_addrs[pe] = addr

    def set_reg_init(self, pe: int, reg: int, value: float) -> None:
        if not 0 <= pe < self.n_pes:
            raise EncodingError(f"PE index {pe} out of range")
        self.reg_init[(pe, reg)] = value

    def declare_array(self, array_id: int, name: str, base: int,
                      length: int) -> None:
        if array_id in self.array_table:
            raise EncodingError(f"array id {array_id} declared twice")
        for other_id, (oname, obase, olen) in self.array_table.items():
            if oname == name:
                # By-name lookups (load_array / array_out) would be
                # ambiguous; reject instead of silently picking one.
                raise EncodingError(
                    f"array name {name!r} declared twice "
                    f"(ids {other_id} and {array_id})"
                )
            if base < obase + olen and obase < base + length:
                raise EncodingError(
                    f"array {name!r} overlaps array id {other_id}"
                )
        self.array_table[array_id] = (name, base, length)
        self._array_index = None

    def array_index(self) -> Dict[str, Tuple[int, int]]:
        """Name -> (base, length) lookup over the array table.

        Built once and invalidated by :meth:`declare_array`, so the
        simulator's by-name paths (`load_array` / `array_out`) are a
        dict probe instead of a table scan.
        """
        if self._array_index is None:
            self._array_index = {
                name: (base, length)
                for name, base, length in self.array_table.values()
            }
        return self._array_index

    def total_entries(self) -> int:
        return sum(len(p) for p in self.pe_programs.values())

    def fingerprint(self) -> str:
        """Content hash of the full array configuration.

        Every structural component (TriggerEntry, DataInstruction,
        ControlDirective, Operand, Dest) is a frozen dataclass whose
        repr deterministically covers all fields, so hashing a sorted
        canonical rendering identifies the program exactly.  Used to
        key shared schedule tapes across cohorts (sim/batch.py).
        """
        parts: List[str] = [f"n_pes={self.n_pes}"]
        for pe in sorted(self.pe_programs):
            for entry in self.pe_programs[pe]:
                parts.append(f"pe{pe}:{entry!r}")
        parts.append(f"initial={sorted(self.initial_addrs.items())!r}")
        parts.append(f"arrays={sorted(self.array_table.items())!r}")
        parts.append(f"reg_init={sorted(self.reg_init.items())!r}")
        blob = "\n".join(parts).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def validate(self) -> None:
        """Cross-reference checks: initial addresses exist; sender targets
        in range; referenced arrays declared."""
        for pe, addr in self.initial_addrs.items():
            program = self.pe_programs.get(pe)
            if program is None or program.get(addr) is None:
                raise EncodingError(
                    f"PE {pe} initial address {addr} has no entry"
                )
        for pe, program in self.pe_programs.items():
            for entry in program:
                directive = entry.control
                for target in directive.targets + directive.exit_targets:
                    if not 0 <= target <= self.n_pes:  # n_pes = controller
                        raise EncodingError(
                            f"PE {pe} addr {entry.addr}: control target "
                            f"{target} out of range"
                        )
                data = entry.data
                if data.kind.value in ("load", "store"):
                    if data.array_id not in self.array_table:
                        raise EncodingError(
                            f"PE {pe} addr {entry.addr}: array id "
                            f"{data.array_id} not declared"
                        )
