"""Instruction operands and destinations.

Sources name where the data flow part reads a value: an input **port**
(token FIFO fed by the mesh), a **local register**, or an **immediate**.
Destinations name where a result goes: an input port of another PE (the
mesh routes it), one of this PE's local registers, or the control plane
(branch results feed the Control Flow Sender).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import EncodingError

#: Number of token input ports per PE (mesh in + scratchpad response).
N_PORTS = 4
#: Local register file size.
N_REGS = 8
#: Immediate field width (signed).
IMM_BITS = 20


class OperandKind(enum.Enum):
    PORT = "port"
    REG = "reg"
    IMM = "imm"


@dataclass(frozen=True)
class Operand:
    """A source operand."""

    kind: OperandKind
    value: int

    def __post_init__(self) -> None:
        if self.kind is OperandKind.PORT and not 0 <= self.value < N_PORTS:
            raise EncodingError(f"port {self.value} out of range")
        if self.kind is OperandKind.REG and not 0 <= self.value < N_REGS:
            raise EncodingError(f"register {self.value} out of range")
        if self.kind is OperandKind.IMM:
            lim = 1 << (IMM_BITS - 1)
            if not -lim <= self.value < lim:
                raise EncodingError(f"immediate {self.value} out of range")

    @staticmethod
    def port(index: int) -> "Operand":
        return Operand(OperandKind.PORT, index)

    @staticmethod
    def reg(index: int) -> "Operand":
        return Operand(OperandKind.REG, index)

    @staticmethod
    def imm(value: int) -> "Operand":
        return Operand(OperandKind.IMM, value)


class DestKind(enum.Enum):
    PE_PORT = "pe_port"   # input port of a (possibly different) PE
    REG = "reg"           # local register
    CONTROL = "control"   # this PE's control flow part (branch results)
    MEMORY = "memory"     # scratchpad write port (used by STORE internally)


@dataclass(frozen=True)
class Dest:
    """A result destination."""

    kind: DestKind
    pe: int = 0
    port: int = 0

    @staticmethod
    def pe_port(pe: int, port: int) -> "Dest":
        if not 0 <= port < N_PORTS:
            raise EncodingError(f"port {port} out of range")
        return Dest(DestKind.PE_PORT, pe=pe, port=port)

    @staticmethod
    def reg(index: int) -> "Dest":
        if not 0 <= index < N_REGS:
            raise EncodingError(f"register {index} out of range")
        return Dest(DestKind.REG, port=index)

    @staticmethod
    def control() -> "Dest":
        return Dest(DestKind.CONTROL)
