"""Control-plane instructions: the Control Flow Sender directive.

Each instruction address carries one directive telling the Control Flow
Sender how to propagate control (paper Fig. 7(a)):

* ``DFG`` — current and successor PEs share a basic block: *proactively*
  forward ``next_addr`` to ``targets`` as soon as this PE is configured
  (Proactive Emit, Fig. 7(b)); configuration of downstream PEs overlaps
  this PE's computation;
* ``BRANCH`` — successors are in different basic blocks: wait for the data
  path's branch result, then send ``true_addr`` or ``false_addr`` to
  ``targets`` (no proactive transfer is possible);
* ``LOOP`` — the loop operator: retain this configuration while iterating
  (rejecting reconfiguration), and on loop exit send ``exit_addr`` to
  ``exit_targets`` (Proactive Config / Remain Loop Config, Fig. 7(c));
* ``NONE`` — leaf PE; no control propagation.

``priority`` orders configurations in the Control Flow Scheduler's arbiter
(deeper loop levels win, Section 4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import EncodingError

#: Sentinel instruction address meaning "no address".
NO_ADDR = 0xFF


class SenderMode(enum.Enum):
    NONE = "none"
    DFG = "dfg"
    BRANCH = "branch"
    LOOP = "loop"


@dataclass(frozen=True)
class ControlDirective:
    """Control Flow Sender configuration for one instruction address."""

    mode: SenderMode = SenderMode.NONE
    #: DFG mode: the address to forward proactively.
    next_addr: int = NO_ADDR
    #: BRANCH mode: addresses selected by the branch result.
    true_addr: int = NO_ADDR
    false_addr: int = NO_ADDR
    #: PEs receiving the selected/forwarded address (``n_pes`` addresses the
    #: controller port).
    targets: Tuple[int, ...] = ()
    #: LOOP mode: where control goes when the loop drains.
    exit_addr: int = NO_ADDR
    exit_targets: Tuple[int, ...] = ()
    #: Arbitration priority (higher wins; use the loop depth).
    priority: int = 0

    def __post_init__(self) -> None:
        if self.mode is SenderMode.DFG and self.next_addr == NO_ADDR:
            raise EncodingError("DFG directive requires next_addr")
        if self.mode is SenderMode.BRANCH:
            if NO_ADDR in (self.true_addr, self.false_addr):
                raise EncodingError(
                    "BRANCH directive requires both true_addr and false_addr"
                )
        if self.mode is SenderMode.LOOP and self.exit_addr == NO_ADDR:
            raise EncodingError("LOOP directive requires exit_addr")

    @staticmethod
    def none() -> "ControlDirective":
        return ControlDirective()

    @staticmethod
    def dfg(next_addr: int, targets: Tuple[int, ...],
            priority: int = 0) -> "ControlDirective":
        return ControlDirective(SenderMode.DFG, next_addr=next_addr,
                                targets=targets, priority=priority)

    @staticmethod
    def branch(true_addr: int, false_addr: int, targets: Tuple[int, ...],
               priority: int = 0) -> "ControlDirective":
        return ControlDirective(SenderMode.BRANCH, true_addr=true_addr,
                                false_addr=false_addr, targets=targets,
                                priority=priority)

    @staticmethod
    def loop(exit_addr: int, exit_targets: Tuple[int, ...],
             priority: int = 0) -> "ControlDirective":
        return ControlDirective(SenderMode.LOOP, exit_addr=exit_addr,
                                exit_targets=exit_targets, priority=priority)
