"""Data-plane instructions.

The data flow part of a Marionette PE executes one of:

* ``COMPUTE`` — an FU operation over source operands, results fanned out to
  destinations;
* ``LOAD`` / ``STORE`` — scratchpad access (address from an operand);
* ``LOOP`` — the loop operator: a counter stream ``lo, lo+step, ...`` until
  ``hi`` (exclusive), one token per initiation; signals loop exit to the
  control flow part on completion (paper Fig. 7(c));
* ``NOP`` — the PE's data path idles at this instruction address.

Instructions are *standing* configurations: while the instruction address is
live, the instruction fires once per arriving token set (producer/consumer
pipelining), unlike a dataflow PE whose instruction is "solely responsible
for a single calculation" (paper Section 4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import EncodingError
from repro.ir.ops import Opcode, op_info
from repro.isa.operands import Dest, Operand


class DataKind(enum.Enum):
    COMPUTE = "compute"
    LOAD = "load"
    STORE = "store"
    LOOP = "loop"
    NOP = "nop"


@dataclass(frozen=True)
class DataInstruction:
    """One data-plane instruction."""

    kind: DataKind
    opcode: Optional[Opcode] = None
    srcs: Tuple[Operand, ...] = ()
    dests: Tuple[Dest, ...] = ()
    array_id: int = 0
    #: LOOP: bound operands are (lo, hi, step)
    loop_bounds: Tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is DataKind.COMPUTE:
            if self.opcode is None:
                raise EncodingError("COMPUTE requires an opcode")
            info = op_info(self.opcode)
            if not info.needs_fu or info.is_memory:
                raise EncodingError(
                    f"{self.opcode.value} is not a COMPUTE opcode"
                )
            if len(self.srcs) != info.arity:
                raise EncodingError(
                    f"{self.opcode.value} needs {info.arity} sources, "
                    f"got {len(self.srcs)}"
                )
        elif self.kind is DataKind.LOAD:
            if len(self.srcs) != 1:
                raise EncodingError("LOAD takes exactly one address source")
        elif self.kind is DataKind.STORE:
            if len(self.srcs) != 2:
                raise EncodingError("STORE takes (address, value) sources")
        elif self.kind is DataKind.LOOP:
            if len(self.loop_bounds) != 3:
                raise EncodingError("LOOP requires (lo, hi, step) bounds")
        elif self.kind is DataKind.NOP:
            if self.srcs or self.dests:
                raise EncodingError("NOP takes no operands")

    # Convenience constructors -----------------------------------------
    @staticmethod
    def compute(opcode: Opcode, srcs: Tuple[Operand, ...],
                dests: Tuple[Dest, ...]) -> "DataInstruction":
        return DataInstruction(DataKind.COMPUTE, opcode=opcode, srcs=srcs,
                               dests=dests)

    @staticmethod
    def load(array_id: int, addr: Operand,
             dests: Tuple[Dest, ...]) -> "DataInstruction":
        return DataInstruction(DataKind.LOAD, srcs=(addr,), dests=dests,
                               array_id=array_id)

    @staticmethod
    def store(array_id: int, addr: Operand,
              value: Operand) -> "DataInstruction":
        return DataInstruction(DataKind.STORE, srcs=(addr, value),
                               array_id=array_id)

    @staticmethod
    def loop(lo: Operand, hi: Operand, step: Operand,
             dests: Tuple[Dest, ...]) -> "DataInstruction":
        return DataInstruction(DataKind.LOOP, dests=dests,
                               loop_bounds=(lo, hi, step))

    @staticmethod
    def nop() -> "DataInstruction":
        return DataInstruction(DataKind.NOP)

    @property
    def port_sources(self) -> Tuple[int, ...]:
        """Input-port indices this instruction consumes per firing."""
        ops = self.srcs if self.kind is not DataKind.LOOP else self.loop_bounds
        from repro.isa.operands import OperandKind

        return tuple(
            o.value for o in ops if o.kind is OperandKind.PORT
        )
