"""Binary encoding of Marionette configurations (the "bitstream").

The compiler's final step converts CFG+DFG mappings into configuration
bitstreams (paper Section 5, "Software Stack").  The exact field layout of
the RTL is not published; this encoding defines a concrete, documented
layout and is exercised by exhaustive round-trip tests — the property that
matters for a bitstream (decode(encode(x)) == x) is enforced, the widths are
honest relative to the architecture parameters (64-entry buffers, 20-bit
immediates, 8-bit PE ids).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import EncodingError
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective, NO_ADDR, SenderMode
from repro.isa.data import DataInstruction, DataKind
from repro.isa.operands import Dest, DestKind, Operand, OperandKind
from repro.isa.program import ArrayProgram, PEProgram, TriggerEntry

_OPCODES: List[Opcode] = list(Opcode)
_DATA_KINDS: List[DataKind] = list(DataKind)
_OPERAND_KINDS: List[OperandKind] = list(OperandKind)
_DEST_KINDS: List[DestKind] = list(DestKind)
_SENDER_MODES: List[SenderMode] = list(SenderMode)

_IMM_BIAS = 1 << 19  # store 20-bit immediates biased to non-negative


class _BitWriter:
    def __init__(self) -> None:
        self.value = 0
        self.width = 0

    def put(self, field: int, bits: int) -> None:
        if not 0 <= field < (1 << bits):
            raise EncodingError(
                f"field {field} does not fit in {bits} bits"
            )
        self.value |= field << self.width
        self.width += bits


class _BitReader:
    def __init__(self, value: int) -> None:
        self.value = value
        self.offset = 0

    def take(self, bits: int) -> int:
        field = (self.value >> self.offset) & ((1 << bits) - 1)
        self.offset += bits
        return field


# ----------------------------------------------------------------------
# Operand / dest fields
# ----------------------------------------------------------------------
def _put_operand(w: _BitWriter, operand: Operand) -> None:
    w.put(_OPERAND_KINDS.index(operand.kind), 2)
    if operand.kind is OperandKind.IMM:
        w.put(operand.value + _IMM_BIAS, 20)
    else:
        w.put(operand.value, 20)


def _take_operand(r: _BitReader) -> Operand:
    kind = _OPERAND_KINDS[r.take(2)]
    raw = r.take(20)
    value = raw - _IMM_BIAS if kind is OperandKind.IMM else raw
    return Operand(kind, value)


def _put_dest(w: _BitWriter, dest: Dest) -> None:
    w.put(_DEST_KINDS.index(dest.kind), 2)
    w.put(dest.pe, 8)
    w.put(dest.port, 4)


def _take_dest(r: _BitReader) -> Dest:
    kind = _DEST_KINDS[r.take(2)]
    pe = r.take(8)
    port = r.take(4)
    return Dest(kind, pe=pe, port=port)


def _put_targets(w: _BitWriter, targets: Tuple[int, ...]) -> None:
    if len(targets) > 8:
        raise EncodingError("directives support at most 8 targets")
    w.put(len(targets), 4)
    for target in targets:
        w.put(target, 8)


def _take_targets(r: _BitReader) -> Tuple[int, ...]:
    count = r.take(4)
    return tuple(r.take(8) for _ in range(count))


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
def encode_entry(entry: TriggerEntry) -> int:
    """Pack one instruction-buffer entry into an integer bitstream word."""
    w = _BitWriter()
    w.put(entry.addr, 8)

    data = entry.data
    w.put(_DATA_KINDS.index(data.kind), 3)
    w.put(_OPCODES.index(data.opcode) if data.opcode else 0, 6)
    w.put(data.array_id, 6)
    operands = data.srcs if data.kind is not DataKind.LOOP else data.loop_bounds
    if len(operands) > 3:
        raise EncodingError("instructions support at most 3 sources")
    w.put(len(operands), 2)
    for operand in operands:
        _put_operand(w, operand)
    if len(data.dests) > 4:
        raise EncodingError("instructions support at most 4 destinations")
    w.put(len(data.dests), 3)
    for dest in data.dests:
        _put_dest(w, dest)

    ctrl = entry.control
    w.put(_SENDER_MODES.index(ctrl.mode), 2)
    w.put(ctrl.next_addr, 8)
    w.put(ctrl.true_addr, 8)
    w.put(ctrl.false_addr, 8)
    w.put(ctrl.exit_addr, 8)
    w.put(ctrl.priority, 4)
    _put_targets(w, ctrl.targets)
    _put_targets(w, ctrl.exit_targets)
    return w.value


def decode_entry(word: int) -> TriggerEntry:
    """Inverse of :func:`encode_entry`."""
    r = _BitReader(word)
    addr = r.take(8)

    kind = _DATA_KINDS[r.take(3)]
    opcode_idx = r.take(6)
    array_id = r.take(6)
    n_src = r.take(2)
    operands = tuple(_take_operand(r) for _ in range(n_src))
    n_dst = r.take(3)
    dests = tuple(_take_dest(r) for _ in range(n_dst))
    if kind is DataKind.LOOP:
        data = DataInstruction(kind, dests=dests, loop_bounds=operands)
    elif kind is DataKind.COMPUTE:
        data = DataInstruction(kind, opcode=_OPCODES[opcode_idx],
                               srcs=operands, dests=dests)
    elif kind is DataKind.NOP:
        data = DataInstruction(kind)
    else:
        data = DataInstruction(kind, srcs=operands, dests=dests,
                               array_id=array_id)

    mode = _SENDER_MODES[r.take(2)]
    next_addr = r.take(8)
    true_addr = r.take(8)
    false_addr = r.take(8)
    exit_addr = r.take(8)
    priority = r.take(4)
    targets = _take_targets(r)
    exit_targets = _take_targets(r)
    ctrl = ControlDirective(
        mode=mode, next_addr=next_addr, true_addr=true_addr,
        false_addr=false_addr, targets=targets, exit_addr=exit_addr,
        exit_targets=exit_targets, priority=priority,
    )
    return TriggerEntry(addr, data, ctrl)


# ----------------------------------------------------------------------
# Whole programs
# ----------------------------------------------------------------------
def encode_program(program: ArrayProgram) -> Dict[str, object]:
    """Serialise an :class:`ArrayProgram` to a plain-dict bitstream image."""
    return {
        "n_pes": program.n_pes,
        "initial": dict(program.initial_addrs),
        "arrays": {
            aid: list(meta) for aid, meta in program.array_table.items()
        },
        "pes": {
            pe: [encode_entry(entry) for entry in pe_program]
            for pe, pe_program in program.pe_programs.items()
        },
    }


def decode_program(image: Dict[str, object]) -> ArrayProgram:
    """Inverse of :func:`encode_program`."""
    program = ArrayProgram(int(image["n_pes"]))
    for aid, (name, base, length) in dict(image["arrays"]).items():
        program.declare_array(int(aid), name, int(base), int(length))
    for pe, words in dict(image["pes"]).items():
        target = program.program_for(int(pe))
        for word in words:
            target.add(decode_entry(int(word)))
    for pe, addr in dict(image["initial"]).items():
        program.set_initial(int(pe), int(addr))
    return program
