"""The Marionette ISA: decoupled control-plane and data-plane instructions.

A PE's instruction buffer holds :class:`~repro.isa.program.TriggerEntry`
records addressed by *instruction address* — the unit of control flow in
Marionette ("the control flow is represented by instruction addresses",
paper Section 4.1).  Each entry pairs one data-plane instruction (what the
FU does while this address is live) with one control-plane directive (what
the Control Flow Sender does about other PEs' addresses).
"""

from repro.isa.operands import Operand, OperandKind, Dest
from repro.isa.data import DataInstruction, DataKind
from repro.isa.control import ControlDirective, SenderMode
from repro.isa.program import TriggerEntry, PEProgram, ArrayProgram
from repro.isa.encoding import (
    decode_entry,
    encode_entry,
    decode_program,
    encode_program,
)

__all__ = [
    "Operand",
    "OperandKind",
    "Dest",
    "DataInstruction",
    "DataKind",
    "ControlDirective",
    "SenderMode",
    "TriggerEntry",
    "PEProgram",
    "ArrayProgram",
    "encode_entry",
    "decode_entry",
    "encode_program",
    "decode_program",
]
