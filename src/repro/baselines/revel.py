"""REVEL-like hybrid systolic-dataflow model (Weng et al., HPCA'20).

REVEL splits the fabric: a systolic array pipelines the inductive inner
loops (spatial unrolling, clean IIs), while a small set of tagged-dataflow
PEs execute the outer, irregular work.  Outer BBs do pipeline — REVEL is
the closest baseline to Agile PE Assignment (paper: geomean gap only
1.55×) — but they are *restricted to the few dataflow PEs* (the paper's
comparison uses 15 systolic + 1 tagged-dataflow PE), so outer initiation
intervals inflate once the outer DFG exceeds those resources.
"""

from __future__ import annotations

import math

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, KernelInstance, ModelConfig
from repro.ir.cdfg import LoopNest


class RevelModel(ArchModel):
    """Hybrid systolic/dataflow with resource-limited outer pipelines."""

    #: tagged-dataflow PEs available to outer-loop BBs (paper Section 6.1)
    OUTER_PES = 1

    def __init__(self, params: ArchParams) -> None:
        super().__init__(params, ModelConfig(
            name="REVEL",
            arms_share_pes=True,
            static_whole_kernel=False,
            per_token_config=0,
            ctrl_latency=params.data_net_latency,
            uses_ccu=False,
            config_visible=False,
            outer_pipelined=True,          # outer BBs pipeline, but...
            outer_pe_limit=self.OUTER_PES,
            unroll_spare=True,
        ))

    def body_ii(self, kernel: KernelInstance, nest: LoopNest) -> int:
        ii = super().body_ii(kernel, nest)
        if nest.children:
            # Outer BBs share the single tagged-dataflow PE: the outer
            # pipeline II is the op count serialised on it, plus the tag
            # stage.
            ops = kernel.ops_of_blocks(
                kernel.own_blocks(nest), merge_arms=True
            )
            ii = max(ii, ops * self.params.t_execute // max(1, self.OUTER_PES))
            ii += self.params.t_config
        return ii
