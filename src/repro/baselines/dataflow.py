"""Dataflow PE array model (paper Section 3.3, Fig. 2(b)/3(e)/(f)).

Mechanisms: tags let branch arms share PEs and reconfigure autonomously,
but control and data are coupled in the token — every initiation pays the
tag-match/configure stage (longer pipeline II), and control information can
only travel the data path (no dedicated control network, serial outer-BB
execution inflated by per-op token handling).
"""

from __future__ import annotations

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, ModelConfig


class DataflowModel(ArchModel):
    """The tagged dataflow PE array of Fig. 2(b)."""

    def __init__(self, params: ArchParams) -> None:
        super().__init__(params, ModelConfig(
            name="dataflow PE",
            arms_share_pes=True,            # tags select the configuration
            static_whole_kernel=False,      # configs fetched by token
            # Fig. 2(b): the configuration stage is a consequent operation
            # of data entry — config then execute, unoverlapped, per token.
            per_token_config=params.t_config + 1,
            ctrl_latency=params.data_net_latency,  # control rides data path
            uses_ccu=False,
            config_visible=False,           # folded into per-token config
            outer_pipelined=False,
            outer_serial_factor=1.5,        # token handling on outer BBs
            unroll_spare=False,             # single token stream per graph
        ))
