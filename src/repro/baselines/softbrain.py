"""Softbrain-like stream-dataflow model (Nowatzki et al., ISCA'17).

Softbrain couples a coarse-grained fabric to a control core that fetches
instructions and drives stream engines.  Streams make it excellent on
regular inner loops (spatial unrolling when the fabric has room), but all
control flow — branch outcomes, data-dependent loop bounds, pipeline
re-steering — detours through the host core: a CCU in this taxonomy
(paper Table 2 lists Softbrain under "processor fetches instruction from
memory"), with an extra dispatch cost per pipeline startup.
"""

from __future__ import annotations

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, ModelConfig


class SoftbrainModel(ArchModel):
    """Stream-dataflow: fast streams, host-mediated control."""

    def __init__(self, params: ArchParams) -> None:
        super().__init__(params, ModelConfig(
            name="Softbrain",
            arms_share_pes=False,      # predication in the fabric
            static_whole_kernel=False,  # streams reconfigure regions
            per_token_config=0,
            ctrl_latency=params.data_net_latency,
            uses_ccu=True,             # the host core mediates control
            ccu_every_entry=True,      # every stream launch is host-issued
            config_visible=True,
            outer_pipelined=False,
            startup_extra=4,           # stream dispatch from the core
            unroll_spare=True,
        ))
