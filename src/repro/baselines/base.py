"""The shared execution-model engine.

Cost model (DESIGN.md Section 4).  A kernel's dynamic behaviour is reduced
to per-loop statistics (entries, iterations) plus flat-block execution
counts; the engine walks the loop-nest tree bottom-up and prices, per loop:

``entries * startup + ceil(iterations/unroll) * II + entries * drain``

plus, for non-innermost loops, the per-iteration cost of the outer basic
blocks — either serialised between the inner-loop bursts (conventional
architectures) or pipelined and overlapped with them (Agile PE Assignment;
the two concurrent streams cost ``max`` instead of ``sum``).

The knobs in :class:`ModelConfig` are the paper's mechanisms:

=====================  =====================================================
knob                   paper mechanism
=====================  =====================================================
arms_share_pes         steering/tags let branch arms share PEs; otherwise
                       Predication maps both arms spatially (Fig. 3(c))
static_whole_kernel    a von Neumann PE array must keep every BB resident
                       (no cheap dynamic reconfiguration), so the whole
                       kernel competes for PEs
per_token_config       dataflow PEs re-configure per token (Fig. 2(b));
                       adds cycles to every II
ctrl_latency           peer control transfer: data path (~6) vs the
                       dedicated control network (1)
uses_ccu               control handed to a Centralized Control Unit: loop
                       generators with data-dependent bounds and capacity
                       overflows pay a CCU round trip (Fig. 3(c)/(d))
config_visible         configuration not overlapped with computation
                       (no Proactive PE Configuration): each pipeline
                       startup exposes t_config
outer_pipelined        Agile PE Assignment pipelines outer BBs and overlaps
                       them with inner bursts via Control FIFOs (Fig. 8)
=====================  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import CompilationError
from repro.arch.params import ArchParams
from repro.ir.analysis import LoopDynamics, loop_dynamics
from repro.ir.cdfg import CDFG, LoopNest
from repro.ir.cfg import BlockId, BlockRole, Branch
from repro.ir.ops import Opcode
from repro.ir.trace import DynamicTrace


# ----------------------------------------------------------------------
# Kernel instance: CDFG + trace + derived statistics
# ----------------------------------------------------------------------
class KernelInstance:
    """A kernel bound to one dynamic execution, with cached analyses."""

    def __init__(self, cdfg: CDFG, trace: DynamicTrace) -> None:
        self.cdfg = cdfg
        self.trace = trace
        self.dynamics: Dict[BlockId, LoopDynamics] = loop_dynamics(cdfg, trace)
        self.nests = cdfg.loop_nests()
        self._arm_groups = self._find_arm_groups()
        self._placement_ii: Dict[Tuple[BlockId, int, int], int] = {}
        self._recurrence: Dict[BlockId, int] = {}
        self._threaded: Dict[BlockId, int] = {}
        self._serial_sibling: Dict[BlockId, bool] = {}

    def recurrence_of(self, nest: LoopNest) -> int:
        """Cached :meth:`recurrence_chain`."""
        if nest.header not in self._recurrence:
            self._recurrence[nest.header] = self.recurrence_chain(nest)
        return self._recurrence[nest.header]

    def threaded_recurrence(self, nest: LoopNest) -> int:
        """Recurrence chain of the *full* loop body (own + nested blocks).

        When a value carried across this loop's iterations flows through a
        nested loop (CRC's running remainder through the bit loop), the
        child bursts of consecutive iterations serialise: no outer/inner
        overlap, no armed-pipeline reuse, whatever the scheduler does.
        """
        if nest.header not in self._threaded:
            self._threaded[nest.header] = self._recurrence_over(
                nest.header, set(nest.blocks)
            )
        return self._threaded[nest.header]

    def _recurrence_over(self, header_id: BlockId,
                         blocks: Set[BlockId]) -> int:
        """Carried control/address chain over an explicit block set.

        Two passes over one iteration (block-id order = program order):

        1. find *carried reads* — reads of a non-generator variable that no
           earlier write in the same iteration dominates (they observe the
           previous iteration's value);
        2. propagate a latency-annotated taint forward from those reads,
           across blocks via variable bindings, until it reaches a control
           or address sink (branch condition / memory operation).

        The longest taint at a sink is the recurrence chain.
        """
        own = sorted(blocks)
        counter_vars: Set[str] = set()
        for bid in own:
            block = self.cdfg.block(bid)
            if block.loop_var is not None:
                counter_vars.add(block.loop_var)
        all_writes: Dict[str, List[Tuple[int, BlockId, int]]] = {}
        for pos, bid in enumerate(own):
            for var, node_id in self.cdfg.block(bid).outputs.items():
                if var.startswith(".") or var in counter_vars:
                    continue
                all_writes.setdefault(var, []).append((pos, bid, node_id))
        for var, writes_of_var in all_writes.items():
            if self._is_generator_var(writes_of_var):
                counter_vars.add(var)
        earliest_write: Dict[str, Tuple[int, int]] = {
            var: (w[0][0], w[0][2])
            for var, w in (
                (v, sorted(ws)) for v, ws in all_writes.items()
            )
            if var not in counter_vars
        }

        under_branch = self.cdfg.under_branch_blocks()
        taint: Dict[str, int] = {}   # variable -> taint depth (cycles)
        chain = 0
        for pos, bid in enumerate(own):
            block = self.cdfg.block(bid)
            dfg = block.dfg
            depth: Dict[int, Optional[int]] = {}
            for node in dfg.nodes:
                if node.opcode is Opcode.INPUT:
                    seed: Optional[int] = None
                    var = node.var
                    if var in taint:
                        seed = taint[var]
                    if var in earliest_write:
                        wpos, wnode = earliest_write[var]
                        if (pos, node.node_id) <= (wpos, wnode):
                            seed = max(seed or 0, 0)  # carried read
                    depth[node.node_id] = seed
                    continue
                reach = [
                    depth[o] for o in node.operands
                    if depth.get(o) is not None
                ]
                if reach:
                    depth[node.node_id] = max(reach) + node.info.latency
                else:
                    depth[node.node_id] = None
            # Sinks within this block.
            term = block.terminator
            if isinstance(term, Branch) and depth.get(term.cond) is not None:
                chain = max(chain, depth[term.cond])
            for node in dfg.nodes:
                if node.info.is_memory and depth.get(node.node_id) is not None:
                    chain = max(chain, depth[node.node_id])
            # Variable bindings update the taint map (conditional writes
            # merge, unconditional ones replace).
            for var, node_id in block.outputs.items():
                new_taint = depth.get(node_id)
                if bid in under_branch:
                    if new_taint is not None:
                        taint[var] = max(taint.get(var, 0), new_taint)
                else:
                    if new_taint is None:
                        taint.pop(var, None)
                    else:
                        taint[var] = new_taint
        return chain

    _AFFINE_OPS = frozenset({
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
        Opcode.SHL, Opcode.SHR,
    })

    def _is_generator_var(
        self, writes_of_var: List[Tuple[int, BlockId, int]]
    ) -> bool:
        """Whether a variable is an affine control counter.

        Such variables (FFT's ``m *= 2``, SC Decode's ``len /= 2``,
        ``base += m``) are produced by hardware loop generators: every
        update is unconditional and built only from constants and variable
        reads through affine ops — no loads, compares, or selections.  They
        do not constrain the pipeline II.
        """
        under_branch = self.cdfg.under_branch_blocks()
        for _pos, bid, node_id in writes_of_var:
            if bid in under_branch:
                return False
            block = self.cdfg.block(bid)
            stack = [node_id]
            while stack:
                node = block.dfg.node(stack.pop())
                if node.opcode in (Opcode.CONST, Opcode.INPUT):
                    continue
                if node.opcode in self._AFFINE_OPS:
                    stack.extend(node.operands)
                    continue
                return False
        return True

    def serial_sibling(self, nest: LoopNest) -> bool:
        """Whether this loop exchanges scalars with a sibling loop inside
        the same parent iteration (LDPC's min pass feeding its update pass,
        Merge Sort's cursor hand-off between merge and tail loops).  Such
        siblings re-synchronise every parent iteration, so Control FIFOs
        cannot keep their pipelines armed across entries — the paper's
        "limitations of data dependencies between loops (LDPC)"."""
        if nest.parent is None:
            return False
        if nest.header not in self._serial_sibling:
            parent = self.nests[nest.parent]
            self._serial_sibling[nest.header] = self._computes_serial(
                nest, parent
            )
        return self._serial_sibling[nest.header]

    def _computes_serial(self, nest: LoopNest, parent: LoopNest) -> bool:
        def vars_written(blocks: Set[BlockId]) -> Set[str]:
            out: Set[str] = set()
            for bid in blocks:
                out.update(
                    v for v in self.cdfg.block(bid).outputs
                    if not v.startswith(".")
                )
            return out

        def vars_read(blocks: Set[BlockId]) -> Set[str]:
            out: Set[str] = set()
            for bid in blocks:
                for node in self.cdfg.block(bid).dfg:
                    if node.opcode is Opcode.INPUT and node.var and (
                            not node.var.startswith(".")):
                        out.add(node.var)
            return out

        mine_w = vars_written(nest.blocks)
        mine_r = vars_read(nest.blocks)
        for sibling_header in parent.children:
            if sibling_header == nest.header:
                continue
            sib = self.nests[sibling_header]
            if mine_w & vars_read(sib.blocks):
                return True
            if vars_written(sib.blocks) & mine_r:
                return True
        return False

    def share_placements(self, pool: Dict[Tuple[BlockId, int, int],
                                          int]) -> None:
        """Adopt a placement memo shared across batch-compatible kernels.

        Placement quality depends only on a block's DFG and the grid
        geometry — exactly the ``(block, rows, cols)`` key below — so
        every :class:`KernelInstance` built from the same (workload,
        scale) CDFG may share one memo: a seed sweep prices its
        placements once instead of once per seed (the engine's batch
        grouping law, :mod:`repro.engine.batching`).  Entries computed
        before adoption are folded into the pool.
        """
        if self._placement_ii:
            pool.update(self._placement_ii)
        self._placement_ii = pool

    def placement_ii(self, block_id: BlockId, params: ArchParams) -> int:
        """II one block's DFG sustains when spatially mapped on the grid
        (FU sharing + mesh congestion), shared by every execution model so
        that mapping quality does not skew the architecture comparison."""
        key = (block_id, params.rows, params.cols)
        if key not in self._placement_ii:
            from repro.compiler.place import place_block

            placement = place_block(self.cdfg.block(block_id), params)
            self._placement_ii[key] = placement.ii
        return self._placement_ii[key]

    # -- loop-carried recurrences -----------------------------------------
    def recurrence_chain(self, nest: LoopNest) -> int:
        """Latency of the longest loop-carried control/address dependence.

        A variable assigned in the loop and read *earlier in iteration
        order* (or by the header condition) carries a value between
        iterations.  If that value feeds a branch condition or a memory
        address, the next iteration cannot issue until the chain resolves —
        the paper's "data-dependent pipeline II" (Section 7.3: FFT and
        Viterbi are limited to II = 2; CRC/ADPCM/Merge Sort are "only
        partially pipelined").  Pure arithmetic accumulators (GEMM's
        ``acc``) do not constrain the II: they reduce in place on one PE.

        Returns the chain latency in cycles (0 when no such recurrence).
        """
        return self._recurrence_over(
            nest.header, nest.own_blocks(self.nests)
        )

    @staticmethod
    def _control_chain(block, input_id: int) -> int:
        """Longest latency path from ``input_id`` to a control/address sink
        (branch condition or memory op) within the block; 0 if none."""
        dfg = block.dfg
        dist: Dict[int, int] = {input_id: 0}
        for node in dfg.nodes:
            if node.node_id == input_id:
                continue
            reach = [dist[o] for o in node.operands if o in dist]
            if reach:
                dist[node.node_id] = max(reach) + node.info.latency
        sinks = []
        term = block.terminator
        if isinstance(term, Branch) and term.cond in dist:
            sinks.append(dist[term.cond])
        for node in dfg.nodes:
            if node.info.is_memory and node.node_id in dist:
                sinks.append(dist[node.node_id])
        return max(sinks, default=0)

    @property
    def name(self) -> str:
        return self.cdfg.name

    # -- static structure ------------------------------------------------
    def _find_arm_groups(self) -> List[Tuple[BlockId, BlockId]]:
        groups = []
        for block in self.cdfg.blocks:
            term = block.terminator
            if isinstance(term, Branch) and not term.is_loop_branch:
                t, f = term.if_true, term.if_false
                if (self.cdfg.block(t).role is BlockRole.BRANCH_ARM
                        and self.cdfg.block(f).role is BlockRole.BRANCH_ARM):
                    groups.append((t, f))
        return groups

    def ops_of_blocks(self, blocks: Set[BlockId], *,
                      merge_arms: bool) -> int:
        """Static FU ops over ``blocks``; merged arms count once (max)."""
        total = 0
        in_arms: Set[BlockId] = set()
        if merge_arms:
            for t, f in self._arm_groups:
                if t in blocks and f in blocks:
                    total += max(self.cdfg.block(t).op_count,
                                 self.cdfg.block(f).op_count)
                    in_arms |= {t, f}
        for bid in blocks:
            if bid not in in_arms:
                total += self.cdfg.block(bid).op_count
        return total

    def own_blocks(self, nest: LoopNest) -> Set[BlockId]:
        return nest.own_blocks(self.nests)

    def iteration_depth(self, blocks: Set[BlockId],
                        transfer: int) -> int:
        """Critical path of one iteration through ``blocks``: chained block
        critical paths plus inter-block transfers."""
        active = [b for b in blocks if self.cdfg.block(b).op_count > 0]
        if not active:
            return 0
        depth = sum(
            self.cdfg.block(b).dfg.critical_path_length() for b in active
        )
        return depth + transfer * max(0, len(active) - 1)

    def dynamic_bounds(self, nest: LoopNest) -> bool:
        """Whether the loop's trip count is produced by other blocks at run
        time (the SPMV pattern of Fig. 3: BB3 configures BB5's generator)."""
        header = self.cdfg.block(nest.header)
        term = header.terminator
        if not isinstance(term, Branch):
            return False
        cond = header.dfg.node(term.cond)
        for operand_id in cond.operands:
            node = header.dfg.node(operand_id)
            if node.opcode is Opcode.CONST:
                continue
            if node.opcode is Opcode.INPUT:
                if node.var == header.loop_var:
                    continue
                if node.var in self.cdfg.params:
                    continue
                return True
            return True  # computed in the header itself
        return False

    def flat_blocks(self) -> List[BlockId]:
        """Blocks outside every loop with real work."""
        in_loops: Set[BlockId] = set()
        for nest in self.nests.values():
            in_loops |= nest.blocks
        return [
            b.block_id for b in self.cdfg.blocks
            if b.block_id not in in_loops and b.op_count > 0
        ]

    def root_nests(self) -> List[LoopNest]:
        return [n for n in self.nests.values() if n.parent is None]

    def total_static_ops(self) -> int:
        return self.cdfg.total_op_count


# ----------------------------------------------------------------------
# Model configuration and results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelConfig:
    """Mechanism toggles for one architecture."""

    name: str
    arms_share_pes: bool = True
    static_whole_kernel: bool = False
    per_token_config: int = 0
    ctrl_latency: int = 6          # via data path by default
    uses_ccu: bool = False
    config_visible: bool = False
    outer_pipelined: bool = False
    #: scaling of serial outer-BB execution (dataflow tag overhead > 1)
    outer_serial_factor: float = 1.0
    #: PEs usable for outer-BB work when serialised (REVEL's few dataflow
    #: PEs); None = whole array
    outer_pe_limit: Optional[int] = None
    #: spatial unrolling of innermost pipelines across spare PEs
    unroll_spare: bool = False
    #: extra fixed cycles per pipeline startup (host-driven dispatch)
    startup_extra: int = 0
    #: every pipeline entry is configured by the CCU/host, not only
    #: data-dependent ones (Softbrain's "processor fetches instruction")
    ccu_every_entry: bool = False
    #: Control FIFOs keep inner loop operators armed across entries
    #: ("Remain Loop Config"): startup/drain paid once per outer burst
    loop_fifo: bool = False


@dataclass
class LoopBreakdown:
    """Engine accounting for one loop (consumed by Fig. 15/16 analyses)."""

    header: BlockId
    depth: int
    innermost: bool
    entries: int
    iterations: int
    ii: int
    unroll: int
    startup: int
    drain: int
    own_cycles: int          # cycles attributed to this loop's own blocks
    child_cycles: int        # cycles of nested loops
    overlapped: bool         # outer stream overlapped with inner bursts

    @property
    def total_cycles(self) -> int:
        return self.own_cycles + self.child_cycles

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe image (the engine's on-disk result cache)."""
        return {
            "header": self.header, "depth": self.depth,
            "innermost": self.innermost, "entries": self.entries,
            "iterations": self.iterations, "ii": self.ii,
            "unroll": self.unroll, "startup": self.startup,
            "drain": self.drain, "own_cycles": self.own_cycles,
            "child_cycles": self.child_cycles,
            "overlapped": self.overlapped,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "LoopBreakdown":
        return cls(
            header=int(payload["header"]), depth=int(payload["depth"]),
            innermost=bool(payload["innermost"]),
            entries=int(payload["entries"]),
            iterations=int(payload["iterations"]), ii=int(payload["ii"]),
            unroll=int(payload["unroll"]), startup=int(payload["startup"]),
            drain=int(payload["drain"]),
            own_cycles=int(payload["own_cycles"]),
            child_cycles=int(payload["child_cycles"]),
            overlapped=bool(payload["overlapped"]),
        )


@dataclass
class CycleResult:
    """Outcome of one execution-model run."""

    arch: str
    kernel: str
    cycles: int
    busy_pe_cycles: int
    n_pes: int
    breakdowns: List[LoopBreakdown] = field(default_factory=list)
    flat_cycles: int = 0

    @property
    def utilization(self) -> float:
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.busy_pe_cycles / (self.cycles * self.n_pes))

    def speedup_over(self, other: "CycleResult") -> float:
        if self.cycles == 0:
            raise CompilationError("zero-cycle result")
        return other.cycles / self.cycles

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe image (the engine's on-disk result cache)."""
        return {
            "arch": self.arch, "kernel": self.kernel,
            "cycles": self.cycles, "busy_pe_cycles": self.busy_pe_cycles,
            "n_pes": self.n_pes, "flat_cycles": self.flat_cycles,
            "breakdowns": [b.to_payload() for b in self.breakdowns],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "CycleResult":
        return cls(
            arch=str(payload["arch"]), kernel=str(payload["kernel"]),
            cycles=int(payload["cycles"]),
            busy_pe_cycles=int(payload["busy_pe_cycles"]),
            n_pes=int(payload["n_pes"]),
            flat_cycles=int(payload["flat_cycles"]),
            breakdowns=[
                LoopBreakdown.from_payload(b) for b in payload["breakdowns"]
            ],
        )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ArchModel:
    """Trace-driven execution model parameterised by :class:`ModelConfig`."""

    def __init__(self, params: ArchParams, config: ModelConfig) -> None:
        self.params = params
        self.config = config

    # -- hooks subclasses may refine -------------------------------------
    def body_ii(self, kernel: KernelInstance, nest: LoopNest) -> int:
        """Initiation interval of one iteration of ``nest``'s own blocks:
        resource sharing over the resident op set, plus mapping congestion
        (shared across models), plus any token-coupled configuration."""
        cfg = self.config
        if cfg.static_whole_kernel:
            resident = kernel.total_static_ops()
        else:
            resident = kernel.ops_of_blocks(
                kernel.own_blocks(nest), merge_arms=cfg.arms_share_pes
            )
        ii = max(1, math.ceil(resident / self.params.n_pes))
        for bid in kernel.own_blocks(nest):
            if kernel.cdfg.block(bid).op_count > 1:
                ii = max(ii, kernel.placement_ii(bid, self.params))
        ii = max(ii, self.recurrence_ii(kernel, nest))
        return ii + cfg.per_token_config

    def recurrence_ii(self, kernel: KernelInstance, nest: LoopNest) -> int:
        """II floor imposed by loop-carried control/address dependences.

        The carried value crosses PEs once per iteration: over the control
        network when present, otherwise by neighbour forwarding in the data
        plane (predication's select path) — whichever is faster.
        """
        chain = kernel.recurrence_of(nest)
        if chain == 0:
            return 1
        if chain <= self.params.t_execute:
            # A single-op recurrence (e.g. Viterbi's running-min compare)
            # colocates on one PE: no inter-PE transfer on the cycle.  This
            # is the paper's "data-dependent pipeline II" of 2.
            return chain
        forward = min(self.config.ctrl_latency,
                      2 * self.params.mesh_hop_latency + 1)
        return chain + forward

    def unroll_of(self, kernel: KernelInstance, nest: LoopNest,
                  ii: int) -> int:
        """Spatial unroll factor for an innermost pipeline."""
        if not self.config.unroll_spare:
            return 1
        if kernel.recurrence_of(nest) > 0:
            # Iterations are serially dependent: replicating the DFG cannot
            # start several of them together.
            return 1
        if self.config.static_whole_kernel:
            # The whole kernel competes for PEs; spare room is what is left
            # after every block is resident.
            ops = kernel.total_static_ops()
        else:
            ops = kernel.ops_of_blocks(
                kernel.own_blocks(nest),
                merge_arms=self.config.arms_share_pes,
            )
        if ops == 0:
            return 1
        return max(1, self.params.n_pes // max(1, ops))

    def startup_of(self, kernel: KernelInstance, nest: LoopNest) -> int:
        """Cycles before the first iteration of a burst can issue."""
        cfg = self.config
        startup = cfg.ctrl_latency + cfg.startup_extra
        if cfg.config_visible:
            startup += self.params.t_config
        if cfg.ccu_every_entry or (cfg.uses_ccu and (
            kernel.dynamic_bounds(nest) or self._overflows(kernel)
        )):
            startup += self.params.ccu_round_trip
        return startup

    # -- internals --------------------------------------------------------
    def _overflows(self, kernel: KernelInstance) -> bool:
        return (
            self.config.static_whole_kernel
            and kernel.total_static_ops() > self.params.n_pes
        )

    def _drain_of(self, kernel: KernelInstance, nest: LoopNest) -> int:
        return kernel.iteration_depth(
            kernel.own_blocks(nest), self.params.data_net_latency
        )

    def _outer_iter_cost(self, kernel: KernelInstance,
                         nest: LoopNest) -> int:
        """Serial per-iteration cost of a non-innermost loop's own work."""
        cfg = self.config
        own = kernel.own_blocks(nest)
        ops = kernel.ops_of_blocks(own, merge_arms=cfg.arms_share_pes)
        depth = kernel.iteration_depth(own, self.params.data_net_latency)
        if cfg.outer_pe_limit is not None and ops > cfg.outer_pe_limit:
            # Too few PEs for the outer DFG: ops serialise on them.
            depth = max(
                depth,
                math.ceil(ops / cfg.outer_pe_limit) * self.params.t_execute,
            )
        cost = math.ceil(depth * cfg.outer_serial_factor)
        cost += cfg.ctrl_latency  # hand control down to the inner loop
        if cfg.config_visible:
            cost += self.params.t_config
        if cfg.uses_ccu and any(
            kernel.dynamic_bounds(kernel.nests[c]) for c in nest.children
        ):
            cost += self.params.ccu_round_trip
        return cost

    # -- main recursion ----------------------------------------------------
    def simulate(self, kernel: KernelInstance) -> CycleResult:
        """Price the whole kernel execution."""
        breakdowns: List[LoopBreakdown] = []
        total = 0
        for nest in kernel.root_nests():
            breakdown = self._loop_cycles(
                kernel, nest, breakdowns, parent_entries=None
            )
            total += breakdown.total_cycles

        flat = 0
        cfg = self.config
        for bid in kernel.flat_blocks():
            block = kernel.cdfg.block(bid)
            execs = kernel.trace.execs_of(bid)
            per_exec = (
                block.dfg.critical_path_length() + cfg.ctrl_latency
                + (self.params.t_config if cfg.config_visible else 0)
            )
            if cfg.uses_ccu and self._overflows(kernel):
                per_exec += self.params.ccu_round_trip
            flat += execs * per_exec
        total += flat

        busy = kernel.trace.dynamic_op_count(kernel.cdfg) * self.params.t_execute
        return CycleResult(
            arch=cfg.name, kernel=kernel.name, cycles=max(1, total),
            busy_pe_cycles=busy, n_pes=self.params.n_pes,
            breakdowns=breakdowns, flat_cycles=flat,
        )

    def _loop_cycles(self, kernel: KernelInstance, nest: LoopNest,
                     breakdowns: List[LoopBreakdown],
                     parent_entries: Optional[int]) -> LoopBreakdown:
        cfg = self.config
        dyn = kernel.dynamics.get(nest.header)
        entries = dyn.entries if dyn else 0
        iters = dyn.total_iterations if dyn else 0

        # With Agile PE Assignment (and REVEL-style outer pipelines), the
        # Control FIFOs keep the inner loop operator configured across
        # entries ("Remain Loop Config"): startup/drain are paid once per
        # *parent* burst, not once per entry.
        if (cfg.loop_fifo and parent_entries is not None
                and not kernel.serial_sibling(nest)):
            overhead_entries = min(entries, parent_entries)
        else:
            overhead_entries = entries

        # A recurrence threading through nested loops (CRC's remainder)
        # serialises consecutive child bursts: no overlap, no armed reuse.
        threaded = (
            bool(nest.children) and kernel.threaded_recurrence(nest) > 0
        )

        child_cycles = 0
        for child in nest.children:
            child_breakdown = self._loop_cycles(
                kernel, kernel.nests[child], breakdowns,
                parent_entries=None if threaded else overhead_entries,
            )
            child_cycles += child_breakdown.total_cycles

        ii = self.body_ii(kernel, nest)
        startup = self.startup_of(kernel, nest)
        drain = self._drain_of(kernel, nest)
        innermost = not nest.children

        if entries == 0:
            breakdown = LoopBreakdown(
                header=nest.header, depth=nest.depth, innermost=innermost,
                entries=0, iterations=0, ii=ii, unroll=1, startup=startup,
                drain=drain, own_cycles=0, child_cycles=child_cycles,
                overlapped=False,
            )
            breakdowns.append(breakdown)
            return breakdown

        if innermost:
            unroll = self.unroll_of(kernel, nest, ii)
            initiations = math.ceil(iters / unroll)
            own = overhead_entries * (startup + drain) + max(
                0, initiations - overhead_entries
            ) * ii
            overlapped = False
        else:
            unroll = 1
            if cfg.outer_pipelined and not threaded:
                # The outer-BB pipeline runs concurrently with the inner
                # bursts; Control FIFOs decouple them, so the two streams
                # cost max(), not sum() — plus startups and drains.
                outer_stream = iters * ii
                own = (
                    overhead_entries * (startup + drain)
                    + max(0, outer_stream - child_cycles)
                )
                overlapped = True
            else:
                per_iter = self._outer_iter_cost(kernel, nest)
                own = entries * startup + iters * per_iter
                overlapped = False

        breakdown = LoopBreakdown(
            header=nest.header, depth=nest.depth, innermost=innermost,
            entries=entries, iterations=iters, ii=ii, unroll=unroll,
            startup=startup, drain=drain, own_cycles=own,
            child_cycles=child_cycles, overlapped=overlapped,
        )
        breakdowns.append(breakdown)
        return breakdown


