"""TIA-like triggered-instructions model (Parashar et al., ISCA'13).

Triggered instructions give each PE autonomous, predicate-driven
instruction selection — branch arms share PEs and no CCU is involved (the
one ✓ TIA earns in paper Table 3).  But the trigger resolution is part of
every initiation (a dataflow PE in this taxonomy: scheduler selects
instructions based on input data), so the pipeline II carries the
tag/trigger stage, and control still travels the data fabric.
"""

from __future__ import annotations

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, ModelConfig


class TIAModel(ArchModel):
    """Triggered instructions: autonomous but token-coupled."""

    def __init__(self, params: ArchParams) -> None:
        super().__init__(params, ModelConfig(
            name="TIA",
            arms_share_pes=True,           # predicates select instructions
            static_whole_kernel=False,
            # Trigger resolution + operand matching per initiation, not
            # overlapped with execution (Fig. 2(b) timing).
            per_token_config=params.t_config + 1,
            ctrl_latency=params.data_net_latency,
            uses_ccu=False,
            config_visible=False,
            outer_pipelined=False,
            outer_serial_factor=1.5,       # per-op trigger on outer BBs
            unroll_spare=False,
        ))
