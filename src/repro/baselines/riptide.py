"""RipTide-like control-in-network model (Gobieski et al., MICRO'22).

RipTide compiles the whole program to a dataflow graph once and maps
control-flow operators *into the network switches* — no CCU, no per-token
reconfiguration, extremely energy-efficient.  The costs the paper calls out
(Section 8): the whole kernel is statically resident (its 16 fully
functional PEs plus 25 in-network control operators are a fixed budget),
and control transfers through the network are "slow and inflexible" —
control and data still share the fabric, so the effective control latency
exceeds a dedicated plane's.
"""

from __future__ import annotations

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, ModelConfig


class RipTideModel(ArchModel):
    """Control operators in the network, statically mapped kernels."""

    def __init__(self, params: ArchParams) -> None:
        super().__init__(params, ModelConfig(
            name="RipTide",
            arms_share_pes=True,        # in-network steering merges arms
            static_whole_kernel=True,   # one static dataflow configuration
            per_token_config=0,
            # Control shares the data NoC, crosses more switches, and
            # steering ops serialise at merge points.
            ctrl_latency=params.data_net_latency + 4,
            uses_ccu=False,
            config_visible=False,
            outer_pipelined=False,
            outer_serial_factor=1.2,    # control ops steal switch bandwidth
            unroll_spare=True,
        ))
