"""Architecture execution models (tier (b) of the evaluation stack).

One shared engine (:mod:`repro.baselines.base`) walks a kernel's loop-nest
tree with its dynamic trace and prices pipeline startups, steady-state
initiations, drains, and control transfers.  Each architecture is a
:class:`~repro.baselines.base.ModelConfig` preset that toggles the
*mechanisms* the paper contrasts — CCU indirection, token-coupled
configuration, control-through-data-path, proactive configuration, the
dedicated control network, and Agile PE Assignment — so the performance
differences emerge from mechanism, not from per-benchmark constants.
"""

from repro.baselines.base import (
    ArchModel,
    CycleResult,
    KernelInstance,
    LoopBreakdown,
    ModelConfig,
)
from repro.baselines.von_neumann import VonNeumannModel
from repro.baselines.dataflow import DataflowModel
from repro.baselines.marionette import MarionetteModel
from repro.baselines.softbrain import SoftbrainModel
from repro.baselines.tia import TIAModel
from repro.baselines.revel import RevelModel
from repro.baselines.riptide import RipTideModel
from repro.baselines.ideal import IdealModel

__all__ = [
    "ArchModel",
    "CycleResult",
    "KernelInstance",
    "LoopBreakdown",
    "ModelConfig",
    "VonNeumannModel",
    "DataflowModel",
    "MarionetteModel",
    "SoftbrainModel",
    "TIAModel",
    "RevelModel",
    "RipTideModel",
    "IdealModel",
]
