"""The Marionette execution model, with per-feature toggles.

Three switches mirror the paper's ablation structure:

* ``proactive`` — Proactive PE Configuration (Fig. 11's "Marionette PE"
  always has it; switching it off recovers a visible configuration phase);
* ``control_network`` — the dedicated CS-Benes network (Fig. 12): control
  transfers drop from the data path's ~6 cycles to 1;
* ``agile`` — Agile PE Assignment (Fig. 14): outer-BB pipelines built by the
  Marionette scheduler, overlapped with inner bursts through Control FIFOs,
  plus spatial unrolling of spare PEs.

When ``agile`` is on, the model consults the real
:class:`~repro.compiler.schedule.MarionetteScheduler` output for the
initiation intervals and unroll factors of each block — Fig. 14/15 numbers
are produced by the actual mapping algorithm, not by a closed-form guess.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, KernelInstance, ModelConfig
from repro.compiler.mapping import Schedule
from repro.compiler.schedule import MarionetteScheduler
from repro.ir.cdfg import LoopNest
from repro.ir.cfg import BlockRole


class MarionetteModel(ArchModel):
    """Marionette with feature toggles (defaults: everything on)."""

    def __init__(self, params: ArchParams, *, proactive: bool = True,
                 control_network: bool = True, agile: bool = True,
                 name: Optional[str] = None) -> None:
        label = name or self._label(proactive, control_network, agile)
        super().__init__(params, ModelConfig(
            name=label,
            arms_share_pes=True,          # steering merges branch arms
            static_whole_kernel=False,    # autonomous reconfiguration
            per_token_config=0,           # control decoupled from tokens
            ctrl_latency=(
                # The selected topology sets the dedicated network's
                # effective transfer cost (cs_benes is the calibrated
                # 1-cycle baseline; see ArchParams.control_transfer_latency).
                params.control_transfer_latency if control_network
                else params.data_net_latency
            ),
            uses_ccu=False,
            config_visible=not proactive,
            outer_pipelined=agile,
            loop_fifo=agile,
            unroll_spare=agile,
        ))
        self.agile = agile
        self._scheduler = MarionetteScheduler(params, enable_agile=agile)
        self._schedules: Dict[str, Schedule] = {}

    @staticmethod
    def _label(proactive: bool, network: bool, agile: bool) -> str:
        if proactive and network and agile:
            return "Marionette"
        parts = ["Marionette PE"]
        if network:
            parts.append("+Control Network")
        if agile:
            parts.append("+Agile PE Assignment")
        return " ".join(parts)

    # ------------------------------------------------------------------
    def _schedule_for(self, kernel: KernelInstance) -> Schedule:
        if kernel.name not in self._schedules:
            self._schedules[kernel.name] = self._scheduler.schedule(
                kernel.cdfg
            )
        return self._schedules[kernel.name]

    # ------------------------------------------------------------------
    def body_ii(self, kernel: KernelInstance, nest: LoopNest) -> int:
        """II from the real placements of the nest's own blocks."""
        schedule = self._schedule_for(kernel)
        own = kernel.own_blocks(nest)
        iis = []
        for bid in own:
            placement = schedule.placement_of(bid)
            if placement is not None and placement.op_count > 0:
                iis.append(placement.ii)
        if not iis:
            return super().body_ii(kernel, nest)
        return max(max(iis), self.recurrence_ii(kernel, nest))

    def unroll_of(self, kernel: KernelInstance, nest: LoopNest,
                  ii: int) -> int:
        if not self.agile:
            return 1
        if kernel.recurrence_of(nest) > 0:
            # Serially dependent iterations cannot be replicated spatially,
            # whatever the scheduler managed to fit.
            return 1
        schedule = self._schedule_for(kernel)
        unrolls = []
        for bid in kernel.own_blocks(nest):
            if kernel.cdfg.block(bid).role is BlockRole.LOOP_HEADER:
                continue  # the loop operator replicates with its body
            placement = schedule.placement_of(bid)
            if placement is not None and placement.op_count > 0:
                unrolls.append(placement.unroll)
        if not unrolls:
            return 1
        # The pipeline initiates as many iterations as its narrowest stage.
        return max(1, min(unrolls))
