"""Von Neumann PE array model (paper Section 3.2, Fig. 3(c)/(d)).

Mechanisms: the whole kernel is statically resident (every BB competes for
PEs — Predication consumes PEs for both branch arms), configuration is not
overlapped with computation, and any control decision that must re-target
other PEs (data-dependent loop bounds, capacity overflow) detours through
the Centralized Control Unit while the array idles.
"""

from __future__ import annotations

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, ModelConfig


class VonNeumannModel(ArchModel):
    """The evolved von Neumann PE array of Fig. 2(a)."""

    def __init__(self, params: ArchParams) -> None:
        super().__init__(params, ModelConfig(
            name="von Neumann PE",
            arms_share_pes=False,       # Predication maps both arms
            static_whole_kernel=True,   # no autonomous reconfiguration
            per_token_config=0,
            ctrl_latency=params.data_net_latency,
            uses_ccu=True,              # control hand-off via the CCU
            config_visible=True,        # no Proactive PE Configuration
            outer_pipelined=False,
            unroll_spare=True,          # classic CGRA unrolling when space
        ))
