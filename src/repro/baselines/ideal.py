"""The ideal PE of paper Fig. 3(g)/(h): a lower bound.

Autonomous, peer-to-peer with zero-latency control, temporally
loosely-coupled with free configuration, perfectly overlapped outer
pipelines.  Only structure remains: resource-constrained IIs, dataflow
critical paths, and iteration counts.  Every real model should be bounded
below by this one (asserted by tests).
"""

from __future__ import annotations

from repro.arch.params import ArchParams
from repro.baselines.base import ArchModel, ModelConfig


class IdealModel(ArchModel):
    """Zero-overhead control flow handling."""

    def __init__(self, params: ArchParams) -> None:
        super().__init__(params, ModelConfig(
            name="ideal PE",
            arms_share_pes=True,
            static_whole_kernel=False,
            per_token_config=0,
            ctrl_latency=1,
            uses_ccu=False,
            config_visible=False,
            outer_pipelined=True,
            loop_fifo=True,
            unroll_spare=True,
        ))
