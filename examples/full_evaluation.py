"""Regenerate every table and figure of the paper's evaluation.

Run:  python examples/full_evaluation.py [tiny|small|paper]

``small`` (default) completes in ~a minute; ``paper`` uses the exact
Table 5 sizes and takes several minutes of pure-Python interpretation.
"""

import sys

from repro.experiments.report import render_report


if __name__ == "__main__":
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(render_report(scale))
