"""Imperfect Loop study (paper Section 3.1 / 4.3, Fig. 8).

Uses GEMM and SPMV-shaped nests to show what Agile PE Assignment does:

* without it, the outer basic blocks execute serially between inner-loop
  bursts and the PEs holding them idle;
* with it, the Marionette scheduler time-extends/unrolls mappings so outer
  pipelines co-reside with inner ones, Control FIFOs keep the inner loop
  operator armed across entries, and utilization jumps.

Run:  python examples/imperfect_loop_study.py
"""

import numpy as np

from repro.arch.params import ArchParams
from repro.baselines import MarionetteModel
from repro.baselines.base import KernelInstance
from repro.compiler import MarionetteScheduler
from repro.ir import Interpreter, KernelBuilder
from repro.perf.utilization import outer_bb_utilization, pipeline_utilization
from repro.workloads import get_workload


def build_spmv():
    k = KernelBuilder("spmv")
    rows = k.param("rows")
    k.array("rowdel")
    k.array("val")
    k.array("cols")
    k.array("vec")
    k.array("out")
    with k.loop("i", 0, rows) as i:
        lo = k.load("rowdel", i)
        hi = k.load("rowdel", i + 1)
        k.set("sum", 0)
        with k.loop("j", lo, hi) as j:
            prod = k.load("val", j) * k.load("vec", k.load("cols", j))
            k.set("sum", k.get("sum") + prod)
        k.store("out", i, k.get("sum"))
    return k.build()


def spmv_study(params: ArchParams) -> None:
    print("=== SPMV (the paper's Fig. 3(b) example) ===")
    cdfg = build_spmv()
    rows, cols, density = 48, 48, 0.2
    rng = np.random.default_rng(1)
    mask = rng.random((rows, cols)) < density
    values = rng.integers(1, 9, mask.sum())
    rowdel = np.concatenate([[0], np.cumsum(mask.sum(axis=1))])
    col_idx = np.concatenate([np.nonzero(row)[0] for row in mask])
    vec = rng.integers(1, 9, cols)
    result = Interpreter(cdfg).run(
        {"rowdel": rowdel, "val": values, "cols": col_idx, "vec": vec,
         "out": np.zeros(rows, dtype=np.int64)},
        {"rows": rows},
    )
    dense = np.zeros((rows, cols), dtype=np.int64)
    dense[mask] = values
    assert np.array_equal(result.array("out"), dense @ vec)
    print(f"functional check OK ({mask.sum()} nonzeros)")

    kernel = KernelInstance(cdfg, result.trace)
    base = MarionetteModel(
        params, control_network=False, agile=False
    ).simulate(kernel)
    agile = MarionetteModel(
        params, control_network=False, agile=True
    ).simulate(kernel)
    print(f"  Marionette PE          : {base.cycles:6d} cycles")
    print(f"  + Agile PE Assignment  : {agile.cycles:6d} cycles "
          f"({base.cycles / agile.cycles:.2f}x)")


def gemm_study(params: ArchParams) -> None:
    print("\n=== GEMM: mappings per loop level (Fig. 8) ===")
    instance = get_workload("gemm").instance("small")
    instance.check()
    cdfg = instance.cdfg
    for agile in (False, True):
        scheduler = MarionetteScheduler(params, enable_agile=agile)
        schedule = scheduler.schedule(cdfg)
        label = "agile" if agile else "plain"
        print(f"  [{label}]")
        for level in schedule.levels:
            for block_id, placement in sorted(level.placements.items()):
                block = cdfg.block(block_id)
                tags = []
                if placement.time_extended:
                    tags.append("time-extended")
                if placement.unroll > 1:
                    tags.append(f"unroll x{placement.unroll}")
                print(f"    level {level.depth}: {block.name:22s} "
                      f"{placement.n_pes:2d} PEs II={placement.ii} "
                      f"{' '.join(tags)}")

    kernel = KernelInstance(cdfg, instance.run().trace)
    base_model = MarionetteModel(
        params, control_network=False, agile=False
    )
    agile_model = MarionetteModel(
        params, control_network=False, agile=True
    )
    base = base_model.simulate(kernel)
    agile = agile_model.simulate(kernel)
    outer_before = outer_bb_utilization(kernel, base, params, agile=False)
    outer_after = outer_bb_utilization(kernel, agile, params, agile=True)
    print(f"  cycles: {base.cycles} -> {agile.cycles} "
          f"({base.cycles / agile.cycles:.2f}x)")
    print(f"  outer-BB PE utilization: {100 * outer_before:.2f}% -> "
          f"{100 * outer_after:.2f}% "
          f"({outer_after / outer_before:.1f}x)")
    print(f"  pipeline utilization: {100 * pipeline_utilization(base):.1f}% "
          f"-> {100 * pipeline_utilization(agile):.1f}%")


if __name__ == "__main__":
    parameters = ArchParams()
    spmv_study(parameters)
    gemm_study(parameters)
