"""Branch Divergence study (paper Section 3, Fig. 3(c)/(e)/(g)).

Shows how the three PE execution models handle the paper's first control
flow form, using Merge Sort (the highest operators-under-branch kernel):

* von Neumann PE — Predication maps both branch arms spatially and the
  statically resident kernel competes for PEs;
* dataflow PE — tags steer arms onto shared PEs but every token pays the
  coupled configuration stage;
* Marionette PE — Proactive PE Configuration hides configuration behind
  computation, per-token steering keeps the arms on one PE lane.

Also demonstrates per-token steering on the micro-architectural simulator:
one PE holds both arm configurations and swaps per token with zero visible
configuration cycles (Fig. 7(b)).

Run:  python examples/branch_divergence_study.py
"""

import numpy as np

from repro.arch.params import ArchParams
from repro.baselines import DataflowModel, MarionetteModel, VonNeumannModel
from repro.baselines.base import KernelInstance
from repro.ir import analysis
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective
from repro.isa.data import DataInstruction
from repro.isa.operands import Dest, Operand
from repro.isa.program import ArrayProgram, TriggerEntry
from repro.sim import ArraySimulator
from repro.workloads import get_workload


def model_comparison(params: ArchParams) -> None:
    print("=== Merge Sort across PE execution models ===")
    instance = get_workload("merge_sort").instance("small")
    instance.check()
    kernel = KernelInstance(instance.cdfg, instance.run().trace)
    share = 100 * analysis.ops_under_branch_fraction(
        instance.cdfg, kernel.trace
    )
    print(f"operators under branch: {share:.1f}% of dynamic ops")

    von_neumann = VonNeumannModel(params).simulate(kernel)
    dataflow = DataflowModel(params).simulate(kernel)
    marionette = MarionetteModel(
        params, control_network=False, agile=False
    ).simulate(kernel)
    print(f"  von Neumann PE : {von_neumann.cycles:7d} cycles")
    print(f"  dataflow PE    : {dataflow.cycles:7d} cycles")
    print(f"  Marionette PE  : {marionette.cycles:7d} cycles "
          f"({von_neumann.cycles / marionette.cycles:.2f}x vs vN, "
          f"{dataflow.cycles / marionette.cycles:.2f}x vs dataflow)")


def steering_demo(params: ArchParams) -> None:
    """Fig. 7(b) on the cycle simulator: PE2 holds both arm configs."""
    print("\n=== Per-token steering on the array simulator ===")
    n = 16
    program = ArrayProgram(params.n_pes)
    program.declare_array(0, "OUT", 0, n)
    # PE0: loop operator streaming i to the branch PE, arm PE, store PE.
    program.program_for(0).add(TriggerEntry(
        1,
        DataInstruction.loop(
            Operand.imm(0), Operand.imm(n), Operand.imm(1),
            (Dest.pe_port(1, 0), Dest.pe_port(2, 0), Dest.pe_port(3, 1)),
        ),
        ControlDirective.loop(exit_addr=9, exit_targets=(params.n_pes,)),
    ))
    # PE1: branch operator — steers PE2 between addresses 2 and 3.
    program.program_for(1).add(TriggerEntry(
        1,
        DataInstruction.compute(
            Opcode.LT, (Operand.port(0), Operand.imm(n // 2)),
            (Dest.control(),),
        ),
        ControlDirective.branch(true_addr=2, false_addr=3, targets=(2,)),
    ))
    # PE2: both branch arms resident (taken: x*2, not taken: x+100).
    pe2 = program.program_for(2)
    pe2.add(TriggerEntry(2, DataInstruction.compute(
        Opcode.MUL, (Operand.port(0), Operand.imm(2)),
        (Dest.pe_port(3, 0),),
    )))
    pe2.add(TriggerEntry(3, DataInstruction.compute(
        Opcode.ADD, (Operand.port(0), Operand.imm(100)),
        (Dest.pe_port(3, 0),),
    )))
    program.program_for(3).add(TriggerEntry(
        1, DataInstruction.store(0, Operand.port(1), Operand.port(0)),
    ))
    for pe, addr in ((0, 1), (1, 1), (2, 2), (3, 1)):
        program.set_initial(pe, addr)

    sim = ArraySimulator(params, program)
    result = sim.run(halt_messages=999)
    out = result.array_out(program, "OUT")
    expected = [i * 2 if i < n // 2 else i + 100 for i in range(n)]
    assert list(out) == expected, "steering mismatch"
    pe2_stats = result.stats.pe_stats[2]
    print(f"  {n} tokens steered through PE2: {pe2_stats.firings} firings, "
          f"{sim.pes[2].control.configurations} configuration, "
          f"{pe2_stats.cycles_configuring} visible config cycles")
    print("  -> configuration fully hidden behind computation "
          "(Proactive PE Configuration)")


if __name__ == "__main__":
    parameters = ArchParams()
    model_comparison(parameters)
    steering_demo(parameters)
