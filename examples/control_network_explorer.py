"""Control network explorer (paper Section 4.1 / Fig. 6, Fig. 13, Table 6).

Interactively demonstrates the CS-Benes control network substrate:

* routes a permutation through a 64x64 Benes network and verifies it by
  pushing values through the configured switches;
* broadcasts with the consecutive-spreading stage;
* delivers multicast control messages through the composed network;
* sweeps the Fig. 13 delay-vs-stages-vs-frequency model;
* prints the Table 6 area comparison.

Run:  python examples/control_network_explorer.py
"""

import random

from repro.arch.network import (
    BenesNetwork,
    Broadcast,
    ControlMessage,
    ControlNetwork,
    CSNetwork,
)
from repro.arch.network.area import delay_model, stages_for_array
from repro.perf.area import table6_rows


def benes_demo() -> None:
    print("=== 64x64 Benes permutation routing ===")
    net = BenesNetwork(64)
    rng = random.Random(7)
    permutation = list(range(64))
    rng.shuffle(permutation)
    config = net.route(permutation)
    outputs = net.simulate(config, list(range(64)))
    assert all(outputs[permutation[i]] == i for i in range(64))
    print(f"  {net.stages} stages, {net.switch_count} switches "
          f"(vs {64 * 64} crossbar crosspoints); random permutation "
          "routed and verified")


def cs_demo() -> None:
    print("\n=== 16x16 consecutive-spreading broadcast ===")
    net = CSNetwork(16)
    broadcasts = [Broadcast(1, 0, 5), Broadcast(4, 6, 11),
                  Broadcast(9, 12, 15)]
    outputs = net.apply(broadcasts, [f"cfg{i}" for i in range(16)])
    print(f"  three broadcasts -> outputs: {outputs}")
    crossing = [Broadcast(9, 0, 3), Broadcast(1, 8, 11)]
    print(f"  crossing request admissible? {net.admissible(crossing)} "
          "(source order must match range order)")


def control_network_demo() -> None:
    print("\n=== Composed CS-Benes control network ===")
    net = ControlNetwork(16)
    delivered = net.realise([
        ControlMessage.to(0, [4, 5, 6, 7], payload="BB3 @0x12"),
        ControlMessage.to(9, [1, 2], payload="BB5 @0x07"),
    ])
    print(f"  multicast delivered: {delivered}")
    report = net.offer([
        ControlMessage.to(2, [8], "a"),
        ControlMessage.to(3, [8], "b"),   # destination conflict
    ])
    print(f"  conflicting offer: {len(report.delivered)} delivered, "
          f"{len(report.rejected)} retried next cycle")


def scaling_demo() -> None:
    print("\n=== Fig. 13: delay vs stages vs synthesis frequency ===")
    print(f"  {'stages':>6} {'0.5 GHz':>10} {'1 GHz':>10} {'2 GHz':>10}")
    for stages in (3, 7, 11, 15, 19):
        row = [
            delay_model(stages, f)["latency_cycles"]
            for f in (0.5, 1.0, 2.0)
        ]
        print(f"  {stages:>6} {row[0]:>9}c {row[1]:>9}c {row[2]:>9}c")
    proto = stages_for_array(16)
    print(f"  4x4 prototype = {proto} stages -> "
          f"{delay_model(proto, 0.5)['latency_cycles']} cycle at 500 MHz")


def area_demo() -> None:
    print("\n=== Table 6: network area ratio ===")
    for row in table6_rows():
        print(f"  {row['architecture']:<12} network "
              f"{row['network_area']:.4f} mm^2 / fabric "
              f"{row['computing_fabric']:.4f} mm^2 = "
              f"{100 * row['network_ratio']:5.1f}%")


if __name__ == "__main__":
    benes_demo()
    cs_demo()
    control_network_demo()
    scaling_demo()
    area_demo()
