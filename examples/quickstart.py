"""Quickstart: write a kernel, run it everywhere.

This walks the full Marionette stack on a small custom kernel:

1. express the kernel with :class:`~repro.ir.builder.KernelBuilder`;
2. execute it functionally with the interpreter (and check the result);
3. schedule it with Agile PE Assignment and inspect the mapping;
4. compile it to an :class:`~repro.isa.program.ArrayProgram` and run the
   cycle-level array simulator;
5. compare architecture execution models on its dynamic trace.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch.params import ArchParams
from repro.baselines import (
    DataflowModel,
    IdealModel,
    MarionetteModel,
    VonNeumannModel,
)
from repro.baselines.base import KernelInstance
from repro.compiler import MarionetteScheduler, generate_program
from repro.ir import Interpreter, KernelBuilder
from repro.sim import ArraySimulator


def build_kernel():
    """out[i] = 3 * x[i] + y[i], with a running checksum."""
    k = KernelBuilder("quickstart")
    n = k.param("n")
    k.array("x")
    k.array("y")
    k.array("out")
    k.set("checksum", 0)
    with k.loop("i", 0, n) as i:
        value = k.load("x", i) * 3 + k.load("y", i)
        k.store("out", i, value)
        k.set("checksum", k.get("checksum") + value)
    return k.build()


def main() -> None:
    params = ArchParams()
    cdfg = build_kernel()
    print("kernel:", cdfg.summary())

    # -- 2. functional execution ---------------------------------------
    n = 32
    rng = np.random.default_rng(0)
    x = rng.integers(0, 20, n)
    y = rng.integers(0, 20, n)
    result = Interpreter(cdfg).run(
        {"x": x, "y": y, "out": np.zeros(n, dtype=np.int64)}, {"n": n}
    )
    expected = 3 * x + y
    assert np.array_equal(result.array("out"), expected)
    print(f"interpreter: OK, checksum={int(result.env['checksum'])}, "
          f"{result.trace.total_block_execs} block executions")

    # -- 3. Agile PE Assignment ----------------------------------------
    schedule = MarionetteScheduler(params).schedule(cdfg)
    for level in schedule.levels:
        for block_id, placement in sorted(level.placements.items()):
            block = cdfg.block(block_id)
            print(f"  level {level.depth}: {block.name:24s} "
                  f"{placement.n_pes:2d} PEs  II={placement.ii} "
                  f"unroll={placement.unroll}")

    # -- 4. cycle-level simulation -------------------------------------
    program = generate_program(
        cdfg, params, param_values={"n": n},
        array_lengths={"x": n, "y": n, "out": n},
    )
    sim = ArraySimulator(params, program)
    sim.load_array("x", x)
    sim.load_array("y", y)
    sim_result = sim.run(halt_messages=999)
    assert np.array_equal(sim_result.array_out(program, "out"), expected)
    print(f"array simulator: OK in {sim_result.cycles} cycles "
          f"(mean PE utilization "
          f"{100 * sim_result.stats.mean_utilization:.1f}%)")

    # -- 5. architecture models ----------------------------------------
    kernel = KernelInstance(cdfg, result.trace)
    models = [
        VonNeumannModel(params),
        DataflowModel(params),
        MarionetteModel(params),
        IdealModel(params),
    ]
    print("\nexecution models:")
    baseline = None
    for model in models:
        cycles = model.simulate(kernel).cycles
        baseline = baseline or cycles
        print(f"  {model.config.name:16s} {cycles:6d} cycles "
              f"({baseline / cycles:4.2f}x vs von Neumann)")


if __name__ == "__main__":
    main()
