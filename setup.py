"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
