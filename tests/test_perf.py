"""Tests for speedup helpers and utilization analyses."""

import pytest

from repro.errors import ReproError
from repro.arch.params import ArchParams
from repro.baselines import MarionetteModel
from repro.baselines.base import KernelInstance
from repro.perf.speedup import geomean, normalize
from repro.perf.utilization import outer_bb_utilization, pipeline_utilization
from repro.workloads import get_workload


class TestSpeedupHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ReproError):
            geomean([])
        with pytest.raises(ReproError):
            geomean([1.0, 0.0])

    def test_normalize(self):
        out = normalize({"a": 100, "b": 50}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_missing_baseline(self):
        with pytest.raises(ReproError):
            normalize({"a": 1}, "z")


class TestUtilization:
    @pytest.fixture(scope="class")
    def gemm_setup(self):
        params = ArchParams()
        instance = get_workload("gemm").instance("tiny")
        kernel = KernelInstance(instance.cdfg, instance.run().trace)
        base = MarionetteModel(
            params, control_network=False, agile=False
        ).simulate(kernel)
        agile = MarionetteModel(
            params, control_network=False, agile=True
        ).simulate(kernel)
        return params, kernel, base, agile

    def test_outer_bb_utilization_bounded(self, gemm_setup):
        params, kernel, base, agile = gemm_setup
        orig = outer_bb_utilization(kernel, base, params, agile=False)
        new = outer_bb_utilization(kernel, agile, params, agile=True)
        assert 0.0 <= orig <= 1.0
        assert 0.0 <= new <= 1.0

    def test_agile_improves_outer_utilization(self, gemm_setup):
        params, kernel, base, agile = gemm_setup
        orig = outer_bb_utilization(kernel, base, params, agile=False)
        new = outer_bb_utilization(kernel, agile, params, agile=True)
        assert new > orig

    def test_pipeline_utilization_bounded_and_improved(self, gemm_setup):
        _, _, base, agile = gemm_setup
        orig = pipeline_utilization(base)
        new = pipeline_utilization(agile)
        assert 0.0 <= orig <= 1.0
        assert 0.0 <= new <= 1.0
        assert new >= orig

    def test_flat_kernel_rejected(self):
        params = ArchParams()
        instance = get_workload("si").instance("tiny")
        kernel = KernelInstance(instance.cdfg, instance.run().trace)
        result = MarionetteModel(params).simulate(kernel)
        with pytest.raises(ReproError):
            outer_bb_utilization(kernel, result, params, agile=False)
