"""Durable-coordinator tests: the write-ahead job journal.

The contract under test is the tentpole of the serve layer's crash
story — ``repro serve --state-dir`` must make a server restart
*invisible* to the fleet:

* every acknowledged state transition survives a ``kill -9`` (the
  journal append is fsync'd before the coordinator replies), so a
  resumed table holds exactly the jobs, results, and verdicts the old
  process had acknowledged — no more, no less;
* delivered results stay pollable at their original cursors; pending
  and ready tasks re-enter their queues; in-flight leases are
  deliberately *not* restored, so the tasks re-lease and the old
  tokens bounce as stale — exactly-once delivery holds across the
  restart boundary;
* the journal tolerates its own crash signature (a torn final line),
  refuses real corruption and version skew loudly, and self-compacts
  so replay cost is bounded by the live table, not by history;
* end to end: a serve process killed mid-job and restarted on the same
  state dir and port resumes its fleet, and the dispatched report is
  byte-identical to a local run.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.arch.params import DEFAULT_PARAMS
from repro.engine import Engine, ModelSpec, RunSpec
from repro.engine.distributed.backend import HTTPBackend
from repro.engine.distributed.coordinator import Coordinator
from repro.engine.distributed.journal import (
    JOURNAL_VERSION,
    JobJournal,
    open_journal,
)
from repro.engine.distributed.worker import (
    CoordinatorClient,
    dispatch_job,
    work_loop,
)
from repro.errors import DistributedError, DistributedUnavailable

VN = ModelSpec.make("von_neumann")
MARIONETTE = ModelSpec.make("marionette")

SRC_DIR = str(Path(repro.__file__).parents[1])


def _specs(scale: str = "tiny"):
    return [
        RunSpec(name, scale, 0, model, DEFAULT_PARAMS)
        for name in ("gemm", "crc", "fft")
        for model in (VN, MARIONETTE)
    ]


def _payloads(specs):
    return [spec.to_payload() for spec in specs]


# ----------------------------------------------------------------------
# The journal file itself
# ----------------------------------------------------------------------
class TestJournalFile:
    def test_fresh_state_dir_replays_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "state")
        events, torn = journal.replay()
        assert events == []
        assert not torn
        # Replay of a journal that never existed must not create one.
        assert not journal.path.exists()

    def test_append_replay_roundtrip_stamps_versions(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"event": "submit", "job": "j1-x"})
        journal.append({"event": "done", "task": "j1-x:t0"})
        events, torn = journal.replay()
        assert not torn
        assert [event["event"] for event in events] == ["submit", "done"]
        for event in events:
            assert event["v"] == JOURNAL_VERSION
            assert "protocol" in event

    def test_torn_final_line_is_dropped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"event": "submit", "job": "j1-x"})
        journal.append({"event": "done", "task": "j1-x:t0"})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "event": "do')   # crash mid-append
        events, torn = journal.replay()
        assert torn
        assert [event["event"] for event in events] == ["submit", "done"]

    def test_mid_file_corruption_refuses_to_replay(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append({"event": "submit", "job": "j1-x"})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        journal.append({"event": "done", "task": "j1-x:t0"})
        with pytest.raises(DistributedError, match="line 2"):
            journal.replay()

    def test_version_skew_refuses_to_replay(self, tmp_path):
        journal = JobJournal(tmp_path)
        record = journal._stamp({"event": "submit", "job": "j1-x"})
        record["v"] = JOURNAL_VERSION + 1
        journal.path.write_text(json.dumps(record) + "\n",
                                encoding="utf-8")
        with pytest.raises(DistributedError, match="incompatible build"):
            journal.replay()
        record["v"] = JOURNAL_VERSION
        record["protocol"] = -1
        journal.path.write_text(json.dumps(record) + "\n",
                                encoding="utf-8")
        with pytest.raises(DistributedError, match="incompatible build"):
            journal.replay()

    def test_append_reports_when_compaction_is_due(self, tmp_path):
        journal = JobJournal(tmp_path, max_bytes=64)
        assert not journal.append({"event": "submit", "job": "j"})
        assert journal.append({"event": "submit", "job": "j" * 64})

    def test_compact_replaces_history_with_the_snapshot(self, tmp_path):
        journal = JobJournal(tmp_path)
        for index in range(10):
            journal.append({"event": "noise", "n": index})
        journal.compact([{"event": "submit", "job": "j1-x"}])
        events, torn = journal.replay()
        assert not torn
        assert [event["event"] for event in events] == ["submit"]

    def test_open_journal_maps_none_to_memory_mode(self, tmp_path):
        assert open_journal(None) is None
        assert isinstance(open_journal(tmp_path), JobJournal)


# ----------------------------------------------------------------------
# Coordinator resume (in-process: injected clock, direct calls)
# ----------------------------------------------------------------------
class TestCoordinatorResume:
    def _coordinator(self, tmp_path, **kwargs):
        journal = JobJournal(tmp_path / "state",
                             max_bytes=kwargs.pop("max_bytes",
                                                  4 << 20))
        return Coordinator(journal=journal, **kwargs), journal

    def _finish_trace(self, coordinator):
        grant = coordinator.lease("w")
        assert grant["task"]["kind"] == "trace"
        assert coordinator.ack(grant["id"], grant["lease"],
                               computed=True)
        return grant

    def test_restart_keeps_results_and_requeues_pending(self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        specs = _payloads(_specs()[:2])       # one trace, two sims
        receipt = coordinator.submit(specs, scale="tiny", seed=0)
        job = receipt["job"]
        self._finish_trace(coordinator)
        sim = coordinator.lease("w")
        assert coordinator.ack(sim["id"], sim["lease"],
                               result={"cycles": 11})
        # -- crash here: only the journal carries the state across ----
        resumed, summary = Coordinator.resume(journal)
        assert summary["jobs"] == 1
        assert summary["active"] == 1
        assert summary["results"] == 1
        assert summary["requeued"] == 1       # the un-acked sim
        batch = resumed.results_since(job, 0)
        assert batch["results"] == [[sim["task"]["index"],
                                     {"cycles": 11}]]
        assert not batch["done"]
        # The surviving sim re-leases and the job completes normally.
        retry = resumed.lease("w2")
        assert retry["task"]["kind"] == "sim"
        assert resumed.ack(retry["id"], retry["lease"],
                           result={"cycles": 22})
        final = resumed.results_since(job, 0)
        assert final["done"]
        assert sorted(index for index, _payload in final["results"]) \
            == [0, 1]

    def test_leases_are_not_restored_and_old_tokens_bounce(
            self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        doomed = coordinator.lease("old-worker")
        resumed, _summary = Coordinator.resume(journal)
        # The task is pending again (not leased), so the old process's
        # ack is stale by token — exactly-once across the restart.
        assert not resumed.ack(doomed["id"], doomed["lease"],
                               computed=True)
        retry = resumed.lease("new-worker")
        assert retry["task"] == doomed["task"]
        assert retry["lease"] != doomed["lease"]
        assert resumed.ack(retry["id"], retry["lease"], computed=True)
        assert resumed.status()["stats"]["stale_acks"] == 1

    def test_failed_job_replays_its_verdict(self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        receipt = coordinator.submit(_payloads(_specs()[:1]),
                                     scale="tiny", seed=0)
        grant = coordinator.lease("w")
        assert coordinator.ack(grant["id"], grant["lease"],
                               error="model crashed")
        resumed, summary = Coordinator.resume(journal)
        assert summary["active"] == 0
        batch = resumed.results_since(receipt["job"], 0)
        assert "model crashed" in batch["failed"]
        assert resumed.lease("w") == {"wait": True}

    def test_evicted_job_replays_into_lifetime_stats(self, tmp_path,
                                                     monkeypatch):
        from repro.engine.distributed import coordinator as module

        monkeypatch.setattr(module, "FINISHED_JOB_RETENTION", 0)
        coordinator, journal = self._coordinator(tmp_path)
        receipt = coordinator.submit(_payloads(_specs()[:1]),
                                     scale="tiny", seed=0)
        self._finish_trace(coordinator)
        sim = coordinator.lease("w")
        assert coordinator.ack(sim["id"], sim["lease"],
                               result={"cycles": 1})
        assert coordinator.status()["jobs"] == []   # evicted on done
        resumed, summary = Coordinator.resume(journal)
        assert summary["jobs"] == 0
        assert resumed.status()["stats"]["traces_computed"] == 1
        with pytest.raises(DistributedError, match="unknown job"):
            resumed.results_since(receipt["job"], 0)

    def test_compaction_bounds_the_journal_under_load(self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path,
                                                 max_bytes=4096)
        specs = _payloads(_specs()[:2])
        jobs = []
        for _round in range(8):
            jobs.append(coordinator.submit(specs, scale="tiny",
                                           seed=0)["job"])
            self._finish_trace(coordinator)
            for _sim in range(2):
                grant = coordinator.lease("w")
                assert coordinator.ack(grant["id"], grant["lease"],
                                       result={"cycles": 7})
        # History would be ~8x the table; compaction keeps the file
        # within one snapshot of the budget, not proportional to it.
        assert journal.path.stat().st_size < 3 * 4096
        resumed, summary = Coordinator.resume(journal)
        assert summary["jobs"] == len(jobs)
        for job in jobs:
            batch = resumed.results_since(job, 0)
            assert batch["done"]
            assert sorted(i for i, _p in batch["results"]) == [0, 1]

    def test_cursors_mean_the_same_thing_after_restart(self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        receipt = coordinator.submit(_payloads(_specs()),
                                     scale="tiny", seed=0)
        job = receipt["job"]
        while True:
            grant = coordinator.lease("w")
            if grant == {"wait": True}:
                break
            if grant["task"]["kind"] == "trace":
                assert coordinator.ack(grant["id"], grant["lease"],
                                       computed=True)
            else:
                index = grant["task"]["index"]
                assert coordinator.ack(grant["id"], grant["lease"],
                                       result={"cycles": 100 + index})
        before = coordinator.results_since(job, 2)
        # Force a compaction cycle before the restart so the snapshot's
        # result *order* (the cursor contract) is what replay sees.
        coordinator.journal.compact(coordinator._snapshot_events())
        resumed, _summary = Coordinator.resume(journal)
        after = resumed.results_since(job, 2)
        assert after["results"] == before["results"]
        assert after["done"] and before["done"]

    def test_drain_is_journaled_but_not_replayed(self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        coordinator.drain()
        with pytest.raises(DistributedError, match="shutting down"):
            coordinator.submit(_payloads(_specs()[:1]), scale="tiny",
                               seed=0)
        resumed, _summary = Coordinator.resume(journal)
        # The restart reopens the tap: draining is an operator action
        # on a process, not a property of the state dir.
        receipt = resumed.submit(_payloads(_specs()[:1]), scale="tiny",
                                 seed=0)
        assert receipt["job"]

    def test_job_counter_stays_monotonic_past_replayed_ids(
            self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        first = coordinator.submit(_payloads(_specs()[:1]),
                                   scale="tiny", seed=0)["job"]
        assert first.startswith("j1-")
        resumed, _summary = Coordinator.resume(journal)
        second = resumed.submit(_payloads(_specs()[:1]), scale="tiny",
                                seed=0)["job"]
        assert second.startswith("j2-")

    def test_resume_compacts_a_torn_tail_away(self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "torn mid-app')
        _resumed, summary = Coordinator.resume(journal)
        assert summary["torn"]
        assert summary["jobs"] == 1
        # resume() rewrote the journal as a snapshot: the torn line is
        # gone and the *next* replay is clean.
        _events, torn = journal.replay()
        assert not torn

    def test_memory_mode_has_no_journal_io(self, tmp_path):
        coordinator = Coordinator()
        assert coordinator.durability == "memory"
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        assert list(tmp_path.iterdir()) == []
        durable, _journal = self._coordinator(tmp_path)
        assert durable.durability.startswith("journal:")

    def test_journal_write_failure_errors_the_request(self, tmp_path):
        coordinator, journal = self._coordinator(tmp_path)
        # Yank the state dir out from under the coordinator: the
        # *submit* must fail (write-ahead: no reply without a record),
        # and the table must not have mutated behind the journal's back.
        journal.state_dir = tmp_path / "gone" / "deeper"
        with pytest.raises(DistributedError, match="cannot journal"):
            coordinator.submit(_payloads(_specs()[:1]), scale="tiny",
                               seed=0)
        assert coordinator.status()["jobs"] == []


# ----------------------------------------------------------------------
# Restart-survival end to end (real serve subprocess, kill -9)
# ----------------------------------------------------------------------
def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_serve(port: int, state_dir: Path, cache_dir: Path
                 ) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--state-dir", str(state_dir),
         "--cache-dir", str(cache_dir), "--lease-timeout", "15"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_healthy(url: str, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return HTTPBackend(url).health()
        except DistributedError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def test_serve_restart_survival_end_to_end(tmp_path):
    """Kill -9 a durable serve mid-job; the fleet resumes seamlessly.

    The dispatch client and the worker both outlive the server process:
    the journal replay brings the job back (delivered results intact,
    the rest re-leased), reconnect backoff re-attaches both sides, and
    the final report is byte-identical to a local run.
    """
    specs = _specs()
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    state_dir, cache_dir = tmp_path / "state", tmp_path / "cache"
    proc = _spawn_serve(port, state_dir, cache_dir)
    worker_done = threading.Event()
    try:
        health = _wait_healthy(url)
        assert health["durability"].startswith("journal:")

        def _serve_fleet():
            try:
                work_loop(url, poll=0.05, max_idle=60.0,
                          worker_id="survivor", reconnect=60.0)
            finally:
                worker_done.set()

        worker = threading.Thread(target=_serve_fleet, daemon=True)
        worker.start()
        client = CoordinatorClient(url)
        landed = []
        for index, payload in dispatch_job(
                client, _payloads(specs), scale="tiny", seed=0,
                poll=0.05, stall_timeout=60.0, reconnect=60.0):
            landed.append((index, payload))
            if len(landed) == 1:
                # First result delivered: kill the server mid-job and
                # restart it on the same port and state dir.
                proc.kill()
                proc.wait(timeout=30)
                proc = _spawn_serve(port, state_dir, cache_dir)
                _wait_healthy(url)
        # Every spec index exactly once, across the restart boundary.
        assert sorted(index for index, _payload in landed) \
            == list(range(len(specs)))
        # Byte-identical to a local run of the same specs.
        dispatched = {index: payload for index, payload in landed}
        local = [run.result.to_payload()
                 for run in Engine(jobs=2).execute(specs)]
        assert json.dumps([dispatched[i] for i in range(len(specs))],
                          sort_keys=True) \
            == json.dumps(local, sort_keys=True)
        with contextlib.suppress(DistributedError):
            client.shutdown()
        assert worker_done.wait(timeout=60.0)
    finally:
        worker_done.set()
        if proc is not None:
            with contextlib.suppress(ProcessLookupError):
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
