"""Area/delay model tests (Table 4/6 calibration, Fig. 13 scaling)."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.network.area import (
    NetworkAreaModel,
    benes_switch_count,
    crossbar_crosspoint_count,
    cs_switch_count,
    delay_model,
    scaling_series,
    stages_for_array,
)
from repro.perf.area import AreaPowerModel, table4_rows, table6_rows


class TestCalibration:
    def test_control_network_area_matches_table4(self):
        assert NetworkAreaModel().control_network_area() == pytest.approx(
            0.0022, rel=1e-6
        )

    def test_data_network_area_matches_table4(self):
        assert NetworkAreaModel().data_network_area() == pytest.approx(
            0.0063, rel=1e-6
        )

    def test_total_network_near_table6(self):
        total = NetworkAreaModel().total_network_area()
        assert total == pytest.approx(0.0118, abs=0.0008)

    def test_crossbar_far_larger_than_benes(self):
        model = NetworkAreaModel()
        assert model.crossbar_equivalent_area() > model.control_network_area()

    def test_switch_count_helpers(self):
        assert benes_switch_count(64) == 352
        assert cs_switch_count(16) == 32
        assert crossbar_crosspoint_count(32) == 1024

    def test_area_scales_with_pes(self):
        small = NetworkAreaModel(n_pes=16)
        large = NetworkAreaModel(n_pes=64)
        assert large.control_network_area() > small.control_network_area()
        assert large.data_network_area() > small.data_network_area()


class TestDelayModel:
    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            delay_model(0, 1.0)
        with pytest.raises(ConfigurationError):
            delay_model(5, 0.0)

    def test_delay_monotonic_in_stages(self):
        delays = [
            delay_model(s, 1.0)["network_delay_ns"] for s in range(1, 20)
        ]
        assert delays == sorted(delays)

    def test_tighter_clock_buys_faster_cells(self):
        relaxed = delay_model(11, 0.5)["network_delay_ns"]
        tight = delay_model(11, 2.0)["network_delay_ns"]
        assert tight < relaxed

    def test_cycles_grow_slowly_with_frequency(self):
        # The Fig. 13 claim: latency stays low even at high frequency.
        for stages in (7, 11, 19):
            cycles = delay_model(stages, 2.0)["latency_cycles"]
            assert cycles <= 6

    def test_prototype_single_cycle_at_500mhz(self):
        stages = stages_for_array(16)
        assert delay_model(stages, 0.5)["meets_single_cycle"]

    def test_scaling_series_covers_grid(self):
        series = scaling_series((3, 5), (0.5, 1.0))
        assert len(series) == 4


class TestTable4:
    def test_totals_match_paper(self):
        rows = table4_rows()
        total = rows[-1]
        assert total["area_mm2"] == pytest.approx(0.151, abs=0.004)
        assert total["power_mw"] == pytest.approx(152.09, abs=0.5)

    def test_component_count(self):
        assert len(table4_rows()) == 9  # 8 components + total

    def test_groups_present(self):
        groups = {r["group"] for r in table4_rows()}
        assert groups == {"PE", "Network", "Memory", "Control", "Total"}

    def test_scaling_to_larger_array_increases_area(self):
        from repro.arch.params import ArchParams

        big = ArchParams(rows=8, cols=8)
        assert AreaPowerModel(big).total_area() > AreaPowerModel().total_area()


class TestTable6:
    def test_marionette_ratio_near_paper(self):
        rows = table6_rows()
        ours = [r for r in rows if r["architecture"] == "Marionette"][0]
        assert ours["network_ratio"] == pytest.approx(0.115, abs=0.02)

    def test_marionette_has_lowest_ratio(self):
        rows = table6_rows()
        ratios = {r["architecture"]: r["network_ratio"] for r in rows}
        ours = ratios.pop("Marionette")
        assert all(ours < other for other in ratios.values())

    def test_published_rows_present(self):
        archs = {r["architecture"] for r in table6_rows()}
        assert {"Softbrain", "REVEL", "DySER", "Plasticine", "SPU",
                "Marionette"} <= archs
