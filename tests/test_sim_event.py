"""Differential tests: all stepping strategies vs the naive reference.

``ArraySimulator(strategy="event")`` must be *indistinguishable* from
``strategy="naive"`` — identical cycle counts, identical
:class:`ArrayStats` (every per-PE counter included), and identical
scratchpad images and access counters — on every workload shape the
configuration generator can map, under truncated runs, and under
randomized timing parameters.  The naive stepper polls every PE every
cycle, so any event the fast path's scheduler misses shows up here as a
divergence.

The batch simulator (:func:`repro.sim.batch.simulate_batch`) extends
the same law to cohorts: every member of a lockstep batch — at sizes
1, 2, and 8, with per-member data, under truncation, zero-trip loops,
data-divergent branches (the replay fallback), and randomized timing —
must be bit-identical to its own standalone naive run.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from dataclasses import replace

from repro.arch.params import ArchParams
from repro.compiler.config_gen import generate_program
from repro.errors import SimulationError
from repro.ir.builder import KernelBuilder
from repro.ir.interp import Interpreter
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective
from repro.isa.data import DataInstruction
from repro.isa.operands import Dest, Operand
from repro.isa.program import ArrayProgram, TriggerEntry
from repro.sim.array import ArraySimulator
from repro.sim.batch import BatchRun, simulate_batch

from test_sim_array import branch_program, vec_mul_program

BATCH_SIZES = (1, 2, 8)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_both(params, program, arrays=None, *, halt_messages=999,
             max_cycles=200_000):
    """One naive and one event simulation of the same program."""
    results = {}
    for strategy in ("naive", "event"):
        sim = ArraySimulator(params, program, strategy=strategy)
        for name, values in (arrays or {}).items():
            sim.load_array(name, values)
        results[strategy] = sim.run(
            halt_messages=halt_messages, max_cycles=max_cycles
        )
    return results["naive"], results["event"]


def run_naive(params, program, arrays=None, *, halt_messages=999,
              max_cycles=200_000):
    """One naive simulation (the per-member batch reference)."""
    sim = ArraySimulator(params, program, strategy="naive")
    for name, values in (arrays or {}).items():
        sim.load_array(name, values)
    return sim.run(halt_messages=halt_messages, max_cycles=max_cycles)


def assert_batch_matches_naive(params, program, member_arrays, *,
                               halt_messages=999, max_cycles=200_000):
    """Simulate the members as one lockstep batch and check each against
    its own standalone naive run (the three-way law: naive == event is
    covered elsewhere, so batch == naive closes the triangle)."""
    batch = simulate_batch(
        params, program,
        [BatchRun(arrays=arrays) for arrays in member_arrays],
        halt_messages=halt_messages, max_cycles=max_cycles,
    )
    assert len(batch) == len(member_arrays)
    for member, arrays in zip(batch, member_arrays):
        reference = run_naive(
            params, program, arrays,
            halt_messages=halt_messages, max_cycles=max_cycles,
        )
        assert_identical(reference, member)


def assert_identical(naive, event):
    """Cycle counts, stats, and memory must match bit-for-bit."""
    assert event.cycles == naive.cycles
    assert event.halted == naive.halted
    assert event.stats == naive.stats  # pe_stats + network counters
    assert event.scratchpad.data == naive.scratchpad.data
    assert event.scratchpad.reads == naive.scratchpad.reads
    assert event.scratchpad.writes == naive.scratchpad.writes
    assert event.scratchpad.bank_conflicts == naive.scratchpad.bank_conflicts


# ----------------------------------------------------------------------
# The workload suite, as single-loop kernels the config generator maps.
# Each entry is the innermost-loop body shape of one suite benchmark
# (richer control flow is priced by the trace-driven models; the array
# simulator validates the class config_gen supports end to end).
# ----------------------------------------------------------------------
def _ints(rng, n, lo=1, hi=50):
    return rng.integers(lo, hi, n)


def _gemm(n, rng):
    """Dot-product MAC with a register accumulator (GEMM inner loop)."""
    k = KernelBuilder("gemm_mac")
    size = k.param("n")
    k.array("a")
    k.array("b")
    k.array("o")
    k.set("acc", 0)
    with k.loop("i", 0, size) as i:
        k.set("acc", k.get("acc") + k.load("a", i) * k.load("b", i))
        k.store("o", i, k.get("acc"))
    return k.build(), {"a": _ints(rng, n), "b": _ints(rng, n)}


def _fft(n, rng):
    """Radix-2 butterfly: sum and difference combine (FFT inner loop)."""
    k = KernelBuilder("fft_butterfly")
    size = k.param("n")
    k.array("re")
    k.array("im")
    k.array("o")
    with k.loop("i", 0, size) as i:
        a = k.load("re", i)
        b = k.load("im", i)
        k.store("o", i, (a + b) * (a - b))
    return k.build(), {"re": _ints(rng, n), "im": _ints(rng, n)}


def _viterbi(n, rng):
    """Add-compare-select over two path metrics (Viterbi ACS)."""
    k = KernelBuilder("viterbi_acs")
    size = k.param("n")
    k.array("p0")
    k.array("p1")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, k.minimum(k.load("p0", i) + 3,
                                  k.load("p1", i) + 5))
    return k.build(), {"p0": _ints(rng, n), "p1": _ints(rng, n)}


def _ldpc(n, rng):
    """Min-magnitude check-node update (LDPC min-sum)."""
    k = KernelBuilder("ldpc_minsum")
    size = k.param("n")
    k.array("a")
    k.array("b")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, k.minimum(k.absolute(k.load("a", i)),
                                  k.absolute(k.load("b", i))))
    return k.build(), {"a": _ints(rng, n, -20, 20), "b": _ints(rng, n, -20, 20)}


def _conv1d(n, rng):
    """Two-tap multiply-accumulate (1-D convolution body)."""
    k = KernelBuilder("conv1d_tap")
    size = k.param("n")
    k.array("x")
    k.array("h")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, k.load("x", i) * 2 + k.load("h", i) * 3)
    return k.build(), {"x": _ints(rng, n), "h": _ints(rng, n)}


def _crc(n, rng):
    """XOR-and-shift step (CRC bit loop)."""
    k = KernelBuilder("crc_step")
    size = k.param("n")
    k.array("x")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, (k.load("x", i) ^ 0x5A) >> 1)
    return k.build(), {"x": _ints(rng, n, 0, 255)}


def _gray(n, rng):
    """Binary-to-Gray conversion: x ^ (x >> 1)."""
    k = KernelBuilder("gray_code")
    size = k.param("n")
    k.array("x")
    k.array("o")
    with k.loop("i", 0, size) as i:
        value = k.load("x", i)
        k.store("o", i, value ^ (value >> 1))
    return k.build(), {"x": _ints(rng, n, 0, 255)}


def _sigmoid(n, rng):
    """Nonlinear activation through the fitting PE op."""
    k = KernelBuilder("sigmoid_map")
    size = k.param("n")
    k.array("x")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, k.sigmoid(k.load("x", i)))
    return k.build(), {"x": rng.normal(0, 1, n)}


def _adpcm(n, rng):
    """Step-size clamp (ADPCM quantizer body)."""
    k = KernelBuilder("adpcm_clamp")
    size = k.param("n")
    k.array("x")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, k.maximum(k.minimum(k.load("x", i), 80), -80))
    return k.build(), {"x": _ints(rng, n, -120, 120)}


def _nw(n, rng):
    """Three-way minimum (Needleman-Wunsch cell update)."""
    k = KernelBuilder("nw_cell")
    size = k.param("n")
    k.array("d")
    k.array("v")
    k.array("o")
    with k.loop("i", 0, size) as i:
        diag = k.load("d", i)
        vert = k.load("v", i)
        k.store("o", i, k.minimum(k.minimum(diag + 1, vert + 1),
                                  diag + vert))
    return k.build(), {"d": _ints(rng, n), "v": _ints(rng, n)}


def _merge_sort(n, rng):
    """Compare-select of two sorted streams (merge step)."""
    k = KernelBuilder("ms_merge")
    size = k.param("n")
    k.array("a")
    k.array("b")
    k.array("o")
    with k.loop("i", 0, size) as i:
        x = k.load("a", i)
        y = k.load("b", i)
        k.store("o", i, k.select(x < y, x, y))
    return k.build(), {"a": _ints(rng, n), "b": _ints(rng, n)}


def _hough(n, rng):
    """Rho-bin distance vote (Hough transform body)."""
    k = KernelBuilder("hough_vote")
    size = k.param("n")
    k.array("cs")
    k.array("sn")
    k.array("o")
    with k.loop("i", 0, size) as i:
        k.store("o", i, k.absolute(k.load("cs", i) - k.load("sn", i)) + 7)
    return k.build(), {"cs": _ints(rng, n), "sn": _ints(rng, n)}


def _sc_decode(n, rng):
    """f-node magnitude combine (successive-cancellation decode)."""
    k = KernelBuilder("sc_fnode")
    size = k.param("n")
    k.array("l0")
    k.array("l1")
    k.array("o")
    with k.loop("i", 0, size) as i:
        a = k.load("l0", i)
        b = k.load("l1", i)
        k.store("o", i, k.minimum(k.absolute(a), k.absolute(b)))
    return k.build(), {"l0": _ints(rng, n, -30, 30), "l1": _ints(rng, n, -30, 30)}


WORKLOAD_KERNELS = {
    "gemm": _gemm,
    "fft": _fft,
    "viterbi": _viterbi,
    "ldpc": _ldpc,
    "conv1d": _conv1d,
    "crc": _crc,
    "gray": _gray,
    "sigmoid": _sigmoid,
    "adpcm": _adpcm,
    "nw": _nw,
    "ms": _merge_sort,
    "hough": _hough,
    "sc": _sc_decode,
}


def _compiled(name, n, rng, params):
    maker = WORKLOAD_KERNELS[name]
    cdfg, inputs = maker(n, rng)
    lengths = {array: n for array in cdfg.arrays}
    program = generate_program(
        cdfg, params, param_values={"n": n}, array_lengths=lengths
    )
    return cdfg, inputs, program


def _member_inputs(name, n, rng, count):
    """``count`` independently drawn input sets for one workload kernel
    (the program is data-independent, so one compile serves them all)."""
    maker = WORKLOAD_KERNELS[name]
    return [maker(n, rng)[1] for _ in range(count)]


def data_branch_program(params, n):
    """loop -> load A[i] -> LT-branch on A[i] steering PE3 -> store.

    The branch outcome depends on the *data*, so batch members with
    different ``A`` images take different control schedules — the
    lockstep replay must detect the divergence and fall back to exact
    per-member simulation."""
    program = ArrayProgram(params.n_pes)
    program.declare_array(0, "A", 0, n)
    program.declare_array(1, "OUT", n, n)
    program.program_for(0).add(TriggerEntry(1, DataInstruction.loop(
        Operand.imm(0), Operand.imm(n), Operand.imm(1),
        (Dest.pe_port(1, 0), Dest.pe_port(4, 1)),
    ), ControlDirective.loop(exit_addr=9, exit_targets=(params.n_pes,))))
    program.program_for(1).add(TriggerEntry(1, DataInstruction.load(
        0, Operand.port(0), (Dest.pe_port(2, 0), Dest.pe_port(3, 0)),
    )))
    program.program_for(2).add(TriggerEntry(1, DataInstruction.compute(
        Opcode.LT, (Operand.port(0), Operand.imm(25)), (Dest.control(),),
    ), ControlDirective.branch(true_addr=2, false_addr=3, targets=(3,))))
    pe3 = program.program_for(3)
    pe3.add(TriggerEntry(2, DataInstruction.compute(
        Opcode.MUL, (Operand.port(0), Operand.imm(2)),
        (Dest.pe_port(4, 0),),
    )))
    pe3.add(TriggerEntry(3, DataInstruction.compute(
        Opcode.ADD, (Operand.port(0), Operand.imm(10)),
        (Dest.pe_port(4, 0),),
    )))
    program.program_for(4).add(TriggerEntry(1, DataInstruction.store(
        1, Operand.port(1), Operand.port(0),
    )))
    for pe, addr in ((0, 1), (1, 1), (2, 1), (3, 2), (4, 1)):
        program.set_initial(pe, addr)
    return program


# ----------------------------------------------------------------------
# The differential suite
# ----------------------------------------------------------------------
class TestWorkloadSuiteEquivalence:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_KERNELS))
    def test_event_matches_naive(self, params, name):
        n = 17
        rng = np.random.default_rng(11)
        cdfg, inputs, program = _compiled(name, n, rng, params)
        naive, event = run_both(params, program, inputs)
        assert_identical(naive, event)

    @pytest.mark.parametrize("name", sorted(WORKLOAD_KERNELS))
    def test_event_matches_interpreter(self, params, name):
        """The fast path is also functionally right, not just self-
        consistent: outputs match the CDFG interpreter."""
        n = 9
        rng = np.random.default_rng(5)
        cdfg, inputs, program = _compiled(name, n, rng, params)
        memory = dict(inputs)
        for array in cdfg.arrays:
            memory.setdefault(array, np.zeros(n))
        reference = Interpreter(cdfg).run(memory, {"n": n})

        sim = ArraySimulator(params, program, strategy="event")
        for name_, values in inputs.items():
            sim.load_array(name_, values)
        result = sim.run(halt_messages=999)
        for array in cdfg.arrays:
            if array in inputs:
                continue
            assert np.allclose(
                result.array_out(program, array),
                reference.array(array), atol=1e-9,
            ), array


class TestHandwrittenProgramEquivalence:
    @pytest.mark.parametrize("n", [1, 2, 7, 24])
    def test_loop_pipeline(self, params, n):
        program = vec_mul_program(params, n)
        arrays = {"A": np.arange(1, n + 1), "B": np.arange(2, n + 2)}
        naive, event = run_both(params, program, arrays)
        assert_identical(naive, event)

    @pytest.mark.parametrize("n", [1, 4, 16])
    def test_branch_steering(self, params, n):
        naive, event = run_both(params, branch_program(params, n))
        assert_identical(naive, event)

    def test_halt_on_first_message(self, params):
        program = vec_mul_program(params, 6)
        arrays = {"A": np.ones(6), "B": np.ones(6)}
        naive, event = run_both(params, program, arrays, halt_messages=1)
        assert naive.halted and event.halted
        assert_identical(naive, event)

    @pytest.mark.parametrize("max_cycles", [1, 2, 13, 37, 64])
    def test_truncated_runs(self, params, max_cycles):
        """Cutting the run mid-flight must truncate both strategies at
        exactly the same state (the skip logic may never jump past
        ``max_cycles``)."""
        program = vec_mul_program(params, 12)
        arrays = {"A": np.ones(12), "B": np.ones(12)}
        naive, event = run_both(params, program, arrays,
                                max_cycles=max_cycles)
        assert naive.cycles == max_cycles
        assert_identical(naive, event)

    def test_zero_trip_loop(self, params):
        cdfg, inputs, program = _compiled(
            "conv1d", 0, np.random.default_rng(0), params
        )
        naive, event = run_both(params, program)
        assert_identical(naive, event)

    def test_fifo_pressure(self, params):
        """Depth-1 control FIFOs force network retries — the retry path
        must stay cycle-identical."""
        tight = replace(params, control_fifo_depth=1)
        rng = np.random.default_rng(3)
        _cdfg, inputs, program = _compiled("gemm", 10, rng, tight)
        naive, event = run_both(tight, program, inputs)
        assert_identical(naive, event)

    def test_quiescence_without_halt(self, params):
        """With no route to the controller the run ends on the idle
        streak — the skip must credit the quiescence window exactly."""
        program = branch_program(params, 5)
        naive, event = run_both(params, program,
                                halt_messages=999)
        assert not naive.halted
        assert_identical(naive, event)


class TestBatchLockstepEquivalence:
    """batch == naive on every member (naive == event is proved above,
    so these close the three-way ``naive == event == batch`` matrix)."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("name", sorted(WORKLOAD_KERNELS))
    def test_workload_matrix(self, params, name, batch_size):
        n = 9 if batch_size == 8 else 17
        rng = np.random.default_rng(11)
        _cdfg, _inputs, program = _compiled(name, n, rng, params)
        members = _member_inputs(name, n, rng, batch_size)
        assert_batch_matches_naive(params, program, members)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("max_cycles", [1, 2, 13, 37, 64])
    def test_truncated_runs(self, params, max_cycles, batch_size):
        """max-cycles truncation must stop every member at exactly the
        same state the standalone steppers stop at."""
        n = 12
        program = vec_mul_program(params, n)
        members = [
            {"A": np.arange(1, n + 1) + member,
             "B": np.arange(2, n + 2)}
            for member in range(batch_size)
        ]
        assert_batch_matches_naive(
            params, program, members, max_cycles=max_cycles
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_zero_trip_loop(self, params, batch_size):
        _cdfg, _inputs, program = _compiled(
            "conv1d", 0, np.random.default_rng(0), params
        )
        assert_batch_matches_naive(
            params, program, [{} for _ in range(batch_size)]
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_halt_on_first_message(self, params, batch_size):
        n = 6
        program = vec_mul_program(params, n)
        members = [
            {"A": np.ones(n) * (member + 1), "B": np.ones(n)}
            for member in range(batch_size)
        ]
        assert_batch_matches_naive(
            params, program, members, halt_messages=1
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_divergent_branches_fall_back_exactly(self, params,
                                                  batch_size):
        """Members whose data steers different branch arms leave the
        lockstep schedule — the replay must detect it and re-simulate
        those members with the exact event stepper."""
        n = 24
        program = data_branch_program(params, n)
        rng = np.random.default_rng(7)
        members = [
            {"A": rng.integers(0, 50, n)} for _ in range(batch_size)
        ]
        assert_batch_matches_naive(params, program, members)

    def test_fifo_pressure(self, params):
        tight = replace(params, control_fifo_depth=1)
        rng = np.random.default_rng(3)
        _cdfg, _inputs, program = _compiled("gemm", 10, rng, tight)
        members = _member_inputs("gemm", 10, rng, 4)
        assert_batch_matches_naive(tight, program, members)


class TestRandomizedParameterEquivalence:
    def test_latency_sweep_never_diverges(self, params):
        """Property test: random timing parameters, program shapes, and
        truncation points — the two strategies must agree bit-for-bit
        on all of them."""
        rng = random.Random(0xA5)
        data_rng = np.random.default_rng(7)
        for _trial in range(25):
            trial_params = ArchParams(
                t_config=rng.randint(1, 4),
                t_execute=rng.randint(1, 5),
                data_net_latency=rng.randint(1, 12),
                ctrl_net_latency=rng.randint(1, 3),
                control_fifo_depth=rng.randint(1, 8),
            )
            n = rng.randint(1, 18)
            halt = rng.choice([1, 999])
            max_cycles = rng.choice([29, 61, 200_000])
            kind = rng.choice(["vec_mul", "branch", "gemm", "ms"])
            if kind == "vec_mul":
                program = vec_mul_program(trial_params, n)
                arrays = {"A": np.arange(1, n + 1),
                          "B": np.arange(2, n + 2)}
            elif kind == "branch":
                program = branch_program(trial_params, n)
                arrays = {}
            else:
                _cdfg, arrays, program = _compiled(
                    kind, n, data_rng, trial_params
                )
            naive, event = run_both(
                trial_params, program, arrays,
                halt_messages=halt, max_cycles=max_cycles,
            )
            assert_identical(naive, event)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_batch_latency_sweep_never_diverges(self, batch_size):
        """The same 25-trial property under lockstep batching: random
        timing parameters, program shapes, truncation points, and
        per-member data — every member must match its naive run."""
        rng = random.Random(0xB7 + batch_size)
        data_rng = np.random.default_rng(13)
        for _trial in range(25):
            trial_params = ArchParams(
                t_config=rng.randint(1, 4),
                t_execute=rng.randint(1, 5),
                data_net_latency=rng.randint(1, 12),
                ctrl_net_latency=rng.randint(1, 3),
                control_fifo_depth=rng.randint(1, 8),
            )
            n = rng.randint(1, 12)
            halt = rng.choice([1, 999])
            max_cycles = rng.choice([29, 61, 200_000])
            kind = rng.choice(["vec_mul", "branch", "gemm", "ms"])
            if kind == "vec_mul":
                program = vec_mul_program(trial_params, n)
                members = [
                    {"A": np.arange(1, n + 1) + member,
                     "B": np.arange(2, n + 2)}
                    for member in range(batch_size)
                ]
            elif kind == "branch":
                program = branch_program(trial_params, n)
                members = [{} for _ in range(batch_size)]
            else:
                _cdfg, _arrays, program = _compiled(
                    kind, n, data_rng, trial_params
                )
                members = _member_inputs(kind, n, data_rng, batch_size)
            assert_batch_matches_naive(
                trial_params, program, members,
                halt_messages=halt, max_cycles=max_cycles,
            )


class TestEventStrategySurface:
    def test_event_is_the_default(self, params):
        sim = ArraySimulator(params, vec_mul_program(params, 4))
        assert sim.strategy == "event"

    def test_unknown_strategy_rejected(self, params):
        with pytest.raises(SimulationError, match="strategy"):
            ArraySimulator(params, vec_mul_program(params, 4),
                           strategy="turbo")

    def test_utilization_counters_account_every_cycle(self, params):
        """Lazily billed idle cycles must still sum to the run length
        for every PE (the naive invariant, preserved under skipping)."""
        program = vec_mul_program(params, 8)
        sim = ArraySimulator(params, program, strategy="event")
        sim.load_array("A", np.ones(8))
        sim.load_array("B", np.ones(8))
        result = sim.run(halt_messages=999)
        for stats in result.stats.pe_stats.values():
            assert stats.total_cycles == result.cycles
