"""Property-style tests for RunSpec fingerprint stability.

The fingerprint is the cache address *and* the sharding coordinate, so
two properties are load-bearing: it must be invariant under incidental
representation differences (dict key ordering, keyword order), and it
must change whenever any semantic input — workload, scale, seed, model
(key, options, label), any architecture parameter, or the engine
version — changes.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import replace

import pytest

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine import ModelSpec, RunSpec, fingerprint
from repro.engine import cache as engine_cache

MARIONETTE_PE = ModelSpec.make(
    "marionette", label="Marionette PE", control_network=False, agile=False
)

BASE = RunSpec("gemm", "small", 0, MARIONETTE_PE, DEFAULT_PARAMS)


def _perturb(field_name):
    """A valid value for ``field_name`` that differs from the default."""
    value = getattr(DEFAULT_PARAMS, field_name)
    if isinstance(value, str):
        return "mesh" if value != "mesh" else "cs_benes"
    return value + 1


class TestFingerprintStability:
    def test_stable_across_key_dict_ordering(self):
        key = BASE.cache_key()
        for permutation in itertools.islice(
                itertools.permutations(key.items()), 24):
            assert fingerprint(dict(permutation)) == BASE.fingerprint()

    def test_stable_across_params_dict_ordering(self):
        key = BASE.cache_key()
        params = key["params"]
        reordered = dict(key)
        reordered["params"] = dict(reversed(list(params.items())))
        assert list(reordered["params"]) != list(params)
        assert fingerprint(reordered) == fingerprint(key)

    def test_stable_across_model_option_keyword_order(self):
        forward = ModelSpec.make("marionette", label="Marionette PE",
                                 control_network=False, agile=False)
        backward = ModelSpec.make("marionette", agile=False,
                                  control_network=False,
                                  label="Marionette PE")
        a = RunSpec("gemm", "small", 0, forward, DEFAULT_PARAMS)
        b = RunSpec("gemm", "small", 0, backward, DEFAULT_PARAMS)
        assert a.fingerprint() == b.fingerprint()

    def test_independently_built_equal_specs_agree(self):
        twin = RunSpec(
            "gemm", "small", 0,
            ModelSpec.make("marionette", label="Marionette PE",
                           control_network=False, agile=False),
            ArchParams(),
        )
        assert DEFAULT_PARAMS == ArchParams()
        assert twin.fingerprint() == BASE.fingerprint()

    def test_deterministic_across_calls(self):
        assert BASE.fingerprint() == BASE.fingerprint()


class TestFingerprintSensitivity:
    def test_workload_changes_fingerprint(self):
        assert replace(BASE, workload="crc").fingerprint() \
            != BASE.fingerprint()

    def test_scale_changes_fingerprint(self):
        assert replace(BASE, scale="tiny").fingerprint() \
            != BASE.fingerprint()

    def test_seed_changes_fingerprint(self):
        assert replace(BASE, seed=1).fingerprint() != BASE.fingerprint()

    def test_model_key_changes_fingerprint(self):
        assert replace(BASE, model=ModelSpec.make("von_neumann")) \
            .fingerprint() != BASE.fingerprint()

    def test_model_option_changes_fingerprint(self):
        toggled = ModelSpec.make("marionette", label="Marionette PE",
                                 control_network=True, agile=False)
        assert replace(BASE, model=toggled).fingerprint() \
            != BASE.fingerprint()

    def test_model_label_changes_fingerprint(self):
        relabeled = ModelSpec.make("marionette", label="other",
                                   control_network=False, agile=False)
        assert replace(BASE, model=relabeled).fingerprint() \
            != BASE.fingerprint()

    @pytest.mark.parametrize(
        "field_name",
        [f.name for f in dataclasses.fields(ArchParams)],
    )
    def test_every_arch_param_changes_fingerprint(self, field_name):
        perturbed = replace(
            DEFAULT_PARAMS, **{field_name: _perturb(field_name)})
        assert replace(BASE, params=perturbed).fingerprint() \
            != BASE.fingerprint()

    def test_cache_key_covers_every_arch_param_field(self):
        # A field missing from the params token would silently alias
        # cache records across architecture variants.
        token = BASE.cache_key()["params"]
        assert set(token) == {
            f.name for f in dataclasses.fields(ArchParams)}

    def test_engine_version_changes_fingerprint(self, monkeypatch):
        before = BASE.fingerprint()
        monkeypatch.setattr(engine_cache, "ENGINE_VERSION",
                            engine_cache.ENGINE_VERSION + 1)
        assert BASE.fingerprint() != before

    def test_no_collisions_across_a_sweep(self):
        specs = [
            RunSpec(workload, scale, seed, model, params)
            for workload in ("gemm", "crc", "fft")
            for scale in ("tiny", "small")
            for seed in (0, 1)
            for model in (ModelSpec.make("von_neumann"), MARIONETTE_PE)
            for params in (DEFAULT_PARAMS,
                           replace(DEFAULT_PARAMS, data_net_latency=9))
        ]
        prints = {spec.fingerprint() for spec in specs}
        assert len(prints) == len(specs)
