"""Docs-consistency checks: the CLI reference cannot drift silently.

``docs/CLI.md`` claims to be the *complete* reference for the ``repro``
command line.  These tests hold it to that: every subcommand (including
nested ones like ``cache stats``) and every flag that
:func:`repro.cli.build_parser` defines must appear in the document, and
— the reverse direction — every ``--flag`` token the document mentions
must actually exist in the parser, so removed flags cannot linger as
documented fiction.  The README's pointers into ``docs/`` are checked
the same way.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[1]
CLI_DOC = REPO_ROOT / "docs" / "CLI.md"
README = REPO_ROOT / "README.md"

#: Flags that are argparse plumbing, not part of the documented surface.
_IGNORED_FLAGS = {"-h", "--help"}


def _walk_commands(parser: argparse.ArgumentParser, prefix: str = ""):
    """Yield ``(command path, subparser)`` for every (nested) subcommand."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                path = f"{prefix}{name}"
                yield path, sub
                yield from _walk_commands(sub, prefix=f"{path} ")


def _flags_of(parser: argparse.ArgumentParser):
    for action in parser._actions:
        for option in action.option_strings:
            if option not in _IGNORED_FLAGS:
                yield option


class TestCLIReference:
    def test_reference_exists(self):
        assert CLI_DOC.is_file(), "docs/CLI.md is missing"

    def test_every_subcommand_is_documented(self):
        text = CLI_DOC.read_text(encoding="utf-8")
        commands = [path for path, _sub in _walk_commands(build_parser())]
        assert commands, "parser defines no subcommands?"
        missing = [path for path in commands
                   if f"repro {path}" not in text]
        assert not missing, (
            f"subcommands missing from docs/CLI.md: {missing} — "
            f"document each as a 'repro <command>' section"
        )

    def test_every_flag_is_documented(self):
        text = CLI_DOC.read_text(encoding="utf-8")
        missing = []
        for path, sub in _walk_commands(build_parser()):
            for flag in _flags_of(sub):
                if flag not in text:
                    missing.append(f"{path} {flag}")
        assert not missing, (
            f"flags missing from docs/CLI.md: {missing}"
        )

    def test_documented_flags_all_exist(self):
        # The reverse direction: a flag removed from the CLI must be
        # removed from the reference too.
        known = set()
        for _path, sub in _walk_commands(build_parser()):
            known.update(_flags_of(sub))
        documented = set(re.findall(r"--[a-z][a-z0-9-]*",
                                    CLI_DOC.read_text(encoding="utf-8")))
        stale = documented - known
        assert not stale, (
            f"docs/CLI.md documents flags the CLI does not define: "
            f"{sorted(stale)}"
        )

    def test_exit_code_conventions_are_documented(self):
        text = CLI_DOC.read_text(encoding="utf-8")
        for needle in ("Exit codes", "`2`", "`130`", "error:"):
            assert needle in text, (
                f"docs/CLI.md lost its exit-code conventions "
                f"({needle!r} not found)"
            )


class TestREADME:
    def test_readme_exists_and_links_the_docs(self):
        assert README.is_file(), "top-level README.md is missing"
        text = README.read_text(encoding="utf-8")
        for target in ("docs/CLI.md", "docs/ENGINE.md",
                       "docs/DISTRIBUTED.md", "examples/"):
            assert target in text, f"README.md does not point at {target}"

    def test_readme_names_every_subcommand(self):
        text = README.read_text(encoding="utf-8")
        top_level = [path for path, _sub in _walk_commands(build_parser())
                     if " " not in path]
        missing = [name for name in top_level if name not in text]
        assert not missing, (
            f"README.md never mentions subcommands: {missing}"
        )
