"""Unit tests for CFG structure: dominators, back edges, natural loops.

Dominator sets are cross-checked against networkx's independent
implementation on randomly generated graphs.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IRError
from repro.ir.cfg import BlockRole, Branch, CFG, Halt, Jump
from repro.ir.ops import Opcode


def diamond() -> CFG:
    """entry -> (then|else) -> merge -> exit."""
    cfg = CFG()
    entry = cfg.new_block("entry")
    then_b = cfg.new_block("then", BlockRole.BRANCH_ARM)
    else_b = cfg.new_block("else", BlockRole.BRANCH_ARM)
    merge = cfg.new_block("merge", BlockRole.MERGE)
    lt = entry.dfg.add(
        Opcode.LT, (entry.dfg.const(0), entry.dfg.const(1))
    )
    entry.terminator = Branch(lt, then_b.block_id, else_b.block_id)
    then_b.terminator = Jump(merge.block_id)
    else_b.terminator = Jump(merge.block_id)
    merge.terminator = Halt()
    return cfg


def simple_loop() -> CFG:
    """entry -> head <-> body, head -> exit."""
    cfg = CFG()
    entry = cfg.new_block("entry")
    head = cfg.new_block("head", BlockRole.LOOP_HEADER)
    body = cfg.new_block("body", BlockRole.LOOP_BODY)
    exit_b = cfg.new_block("exit")
    cond = head.dfg.add(
        Opcode.LT, (head.dfg.input("i"), head.dfg.const(10))
    )
    entry.terminator = Jump(head.block_id)
    head.terminator = Branch(cond, body.block_id, exit_b.block_id,
                             is_loop_branch=True)
    body.terminator = Jump(head.block_id)
    exit_b.terminator = Halt()
    return cfg


class TestStructure:
    def test_successors_and_predecessors(self):
        cfg = diamond()
        assert cfg.successors(0) == (1, 2)
        preds = cfg.predecessors()
        assert sorted(preds[3]) == [1, 2]

    def test_edges(self):
        assert len(diamond().edges()) == 4

    def test_reachable(self):
        cfg = diamond()
        dead = cfg.new_block("dead")
        dead.terminator = Halt()
        assert dead.block_id not in cfg.reachable()

    def test_reverse_postorder_starts_at_entry(self):
        rpo = simple_loop().reverse_postorder()
        assert rpo[0] == 0
        assert set(rpo) == {0, 1, 2, 3}


class TestDominators:
    def test_diamond_dominators(self):
        dom = diamond().dominators()
        assert dom[3] == {0, 3}
        assert dom[1] == {0, 1}

    def test_loop_dominators(self):
        dom = simple_loop().dominators()
        assert dom[2] == {0, 1, 2}

    def test_immediate_dominators(self):
        idom = diamond().immediate_dominators()
        assert idom[0] is None
        assert idom[1] == 0
        assert idom[3] == 0

    def test_back_edges_and_loops(self):
        cfg = simple_loop()
        assert cfg.back_edges() == [(2, 1)]
        loops = cfg.natural_loops()
        assert loops == {1: {1, 2}}

    def test_diamond_has_no_loops(self):
        assert diamond().natural_loops() == {}


class TestValidation:
    def test_missing_terminator(self):
        cfg = CFG()
        cfg.new_block("entry")
        with pytest.raises(IRError):
            cfg.validate()

    def test_dangling_target(self):
        cfg = CFG()
        block = cfg.new_block("entry")
        block.terminator = Jump(99)
        with pytest.raises(IRError):
            cfg.validate()

    def test_no_halt(self):
        cfg = CFG()
        a = cfg.new_block("a")
        b = cfg.new_block("b")
        a.terminator = Jump(b.block_id)
        b.terminator = Jump(a.block_id)
        with pytest.raises(IRError):
            cfg.validate()

    def test_branch_condition_must_exist(self):
        cfg = CFG()
        a = cfg.new_block("a")
        b = cfg.new_block("b")
        a.terminator = Branch(42, b.block_id, b.block_id)
        b.terminator = Halt()
        with pytest.raises(IRError):
            cfg.validate()


@st.composite
def random_cfg(draw):
    """A random CFG with one Halt, arbitrary jumps/branches."""
    n = draw(st.integers(2, 12))
    cfg = CFG()
    blocks = [cfg.new_block(f"b{i}") for i in range(n)]
    for i, block in enumerate(blocks):
        kind = draw(st.sampled_from(["jump", "branch", "halt"]))
        if i == n - 1 or kind == "halt":
            block.terminator = Halt()
        elif kind == "jump":
            block.terminator = Jump(draw(st.integers(0, n - 1)))
        else:
            cond = block.dfg.add(
                Opcode.LT, (block.dfg.const(0), block.dfg.const(1))
            )
            block.terminator = Branch(
                cond, draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1))
            )
    return cfg


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(random_cfg())
    def test_immediate_dominators_match_networkx(self, cfg):
        graph = nx.DiGraph()
        graph.add_nodes_from(b.block_id for b in cfg.blocks)
        graph.add_edges_from(cfg.edges())
        reachable = cfg.reachable()
        ours = cfg.immediate_dominators()
        theirs = nx.immediate_dominators(graph, cfg.entry)
        for bid in reachable:
            if bid == cfg.entry:
                assert ours[bid] is None
            else:
                assert ours[bid] == theirs[bid], f"block {bid}"

    @settings(max_examples=60, deadline=None)
    @given(random_cfg())
    def test_back_edge_targets_dominate_sources(self, cfg):
        dom = cfg.dominators()
        for src, dst in cfg.back_edges():
            assert dst in dom[src]
