"""Unit tests for the parallel experiment engine.

Covers the cache layers (hit/miss accounting, on-disk persistence,
invalidation on parameter change), serial-vs-parallel result equality,
deterministic result ordering, and the declarative spec layer.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.engine import (
    Engine,
    ModelSpec,
    RunSpec,
    TraceCache,
    fingerprint,
)
from repro.errors import ConfigurationError
from repro.workloads import get_workload

VN = ModelSpec.make("von_neumann")
MARIONETTE = ModelSpec.make("marionette")
MARIONETTE_PE = ModelSpec.make(
    "marionette", label="Marionette PE", control_network=False, agile=False
)


def _specs(params: ArchParams = DEFAULT_PARAMS, scale: str = "tiny"):
    return [
        RunSpec(name, scale, 0, model, params)
        for name in ("gemm", "crc")
        for model in (VN, MARIONETTE, MARIONETTE_PE)
    ]


class TestSpecLayer:
    def test_specs_are_hashable_and_equal_by_value(self):
        assert _specs()[0] == _specs()[0]
        assert len(set(_specs() + _specs())) == len(_specs())

    def test_model_spec_builds_named_model(self):
        model = MARIONETTE_PE.build(DEFAULT_PARAMS)
        assert model.config.name == "Marionette PE"

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelSpec.make("quantum_pe")

    def test_options_on_fixed_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelSpec.make("von_neumann", agile=True)


class TestTraceCache:
    def test_fingerprint_is_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_memory_roundtrip(self):
        cache = TraceCache()
        assert cache.get({"k": 1}) is None
        cache.put({"k": 1}, {"v": 42})
        assert cache.get({"k": 1}) == {"v": 42}
        assert cache.misses == 1 and cache.memory_hits == 1

    def test_disk_roundtrip(self, tmp_path):
        TraceCache(tmp_path).put({"k": 1}, {"v": 42})
        fresh = TraceCache(tmp_path)
        assert fresh.get({"k": 1}) == {"v": 42}
        assert fresh.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put({"k": 1}, {"v": 42})
        digest = fingerprint({"k": 1})
        (tmp_path / digest[:2] / f"{digest}.json").write_text("{broken")
        fresh = TraceCache(tmp_path)
        assert fresh.get({"k": 1}) is None


class TestEngineCaching:
    def test_cold_run_computes_everything(self):
        engine = Engine()
        results = engine.execute(_specs())
        assert all(not r.cached for r in results)
        assert engine.stats.traces_computed == 2      # gemm + crc
        assert engine.stats.simulations == len(_specs())

    def test_second_execute_hits_the_memo(self):
        engine = Engine()
        first = engine.execute(_specs())
        second = engine.execute(_specs())
        assert all(r.cached for r in second)
        assert engine.stats.simulations == len(_specs())
        # Memo re-reads are tracked apart from cross-run cache hits.
        assert engine.stats.sim_memo_hits == len(_specs())
        assert engine.stats.sim_cache_hits == 0
        assert [r.cycles for r in first] == [r.cycles for r in second]

    def test_warm_disk_cache_does_no_work(self, tmp_path):
        Engine(cache_dir=tmp_path).execute(_specs())
        warm = Engine(cache_dir=tmp_path)
        results = warm.execute(_specs())
        assert all(r.cached for r in results)
        assert warm.stats.traces_computed == 0
        assert warm.stats.simulations == 0
        assert warm.stats.sim_cache_hits == len(_specs())
        assert warm.stats.sim_memo_hits == 0

    def test_warm_cache_results_equal_cold_results(self, tmp_path):
        cold = Engine(cache_dir=tmp_path).execute(_specs())
        warm = Engine(cache_dir=tmp_path).execute(_specs())
        assert [r.result.to_payload() for r in cold] == \
               [r.result.to_payload() for r in warm]

    def test_arch_params_change_invalidates_cycles_not_traces(self, tmp_path):
        Engine(cache_dir=tmp_path).execute(_specs())
        changed = replace(DEFAULT_PARAMS, data_net_latency=9)
        engine = Engine(cache_dir=tmp_path)
        results = engine.execute(_specs(params=changed))
        # New parameters: every model result recomputed...
        assert all(not r.cached for r in results)
        assert engine.stats.simulations == len(_specs())
        # ...but the functional traces are parameter-independent and reused.
        assert engine.stats.traces_computed == 0
        assert engine.stats.trace_cache_hits == 2

    def test_changed_params_change_at_least_one_result(self, tmp_path):
        base = Engine(cache_dir=tmp_path).execute(_specs())
        slower = Engine(cache_dir=tmp_path).execute(
            _specs(params=replace(DEFAULT_PARAMS, data_net_latency=12))
        )
        assert any(
            a.cycles != b.cycles for a, b in zip(base, slower)
        )

    def test_kernel_run_from_warm_cache_skips_interpretation(self, tmp_path):
        Engine(cache_dir=tmp_path).execute(_specs())
        warm = Engine(cache_dir=tmp_path)
        run = warm.kernel_run(get_workload("gemm"), "tiny", 0)
        assert warm.stats.traces_computed == 0
        assert run.kernel.trace.total_block_execs > 0
        assert run.instance.cdfg.name == run.kernel.cdfg.name


class TestParallelExecution:
    def test_parallel_equals_serial(self):
        serial = Engine(jobs=1).execute(_specs())
        parallel = Engine(jobs=4).execute(_specs())
        assert [r.result.to_payload() for r in serial] == \
               [r.result.to_payload() for r in parallel]

    def test_results_come_back_in_spec_order(self):
        specs = _specs()
        for jobs in (1, 3):
            results = Engine(jobs=jobs).execute(specs)
            assert [r.spec for r in results] == specs

    def test_duplicate_specs_simulated_once(self):
        engine = Engine(jobs=2)
        spec = _specs()[0]
        results = engine.execute([spec, spec, spec])
        assert engine.stats.simulations == 1
        assert len({r.cycles for r in results}) == 1

    def test_parallel_populates_shared_disk_cache(self, tmp_path):
        Engine(cache_dir=tmp_path, jobs=4).execute(_specs())
        warm = Engine(cache_dir=tmp_path, jobs=1)
        warm.execute(_specs())
        assert warm.stats.traces_computed == 0
        assert warm.stats.simulations == 0
