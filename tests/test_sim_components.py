"""Tests for simulator components: FIFOs, scratchpad, control plane,
data path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective
from repro.isa.data import DataInstruction
from repro.isa.operands import Dest, Operand
from repro.isa.program import PEProgram, TriggerEntry
from repro.sim.control_plane import ControlFlowPart
from repro.sim.datapath import DataFlowPart
from repro.sim.events import CtrlMsg
from repro.sim.fifo import Fifo
from repro.sim.memory import Scratchpad


class TestFifo:
    def test_order_preserved(self):
        fifo = Fifo()
        for i in range(5):
            fifo.push(i)
        assert [fifo.pop() for _ in range(5)] == list(range(5))

    def test_bounded_capacity(self):
        fifo = Fifo(2)
        fifo.push(1)
        fifo.push(2)
        assert fifo.full
        assert not fifo.try_push(3)
        with pytest.raises(SimulationError):
            fifo.push(3)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            Fifo().pop()

    def test_stats(self):
        fifo = Fifo()
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        assert fifo.pushes == 2 and fifo.pops == 1
        assert fifo.max_occupancy == 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(), max_size=40))
    def test_fifo_is_exact_queue(self, items):
        fifo = Fifo()
        for item in items:
            fifo.push(item)
        assert fifo.drain() == items


class TestScratchpad:
    def test_read_write(self):
        pad = Scratchpad(64)
        pad.write(5, 42)
        assert pad.read(5) == 42

    def test_bounds(self):
        pad = Scratchpad(8)
        with pytest.raises(SimulationError):
            pad.read(8)
        with pytest.raises(SimulationError):
            pad.write(-1, 0)

    def test_bank_conflicts_counted(self):
        pad = Scratchpad(64, banks=4)
        pad.read(0, cycle=7)
        pad.read(4, cycle=7)  # same bank, same cycle
        pad.read(1, cycle=7)  # different bank
        assert pad.bank_conflicts == 1

    def test_array_load_dump(self):
        pad = Scratchpad(16)
        pad.load_array(4, [1, 2, 3])
        assert list(pad.dump_array(4, 3)) == [1, 2, 3]

    def test_array_overflow(self):
        pad = Scratchpad(4)
        with pytest.raises(SimulationError):
            pad.load_array(2, [1, 2, 3])


def _program_with(entries) -> PEProgram:
    program = PEProgram()
    for entry in entries:
        program.add(entry)
    return program


class TestControlFlowPart:
    def test_configuration_takes_t_config_cycles(self):
        program = _program_with([TriggerEntry(1, DataInstruction.nop())])
        part = ControlFlowPart(0, program, t_config=2)
        part.receive(CtrlMsg(0, 1))
        assert not part.configured
        part.step()
        assert part.configuring
        part.step()
        assert part.configured and part.current_addr == 1

    def test_same_address_sustains_configuration(self):
        program = _program_with([TriggerEntry(1, DataInstruction.nop())])
        part = ControlFlowPart(0, program, t_config=1)
        part.receive(CtrlMsg(0, 1))
        part.step()
        configurations = part.configurations
        part.receive(CtrlMsg(0, 1))
        part.step()
        assert part.configurations == configurations  # no reconfiguration

    def test_dfg_mode_proactive_emit(self):
        program = _program_with([TriggerEntry(
            1, DataInstruction.nop(),
            ControlDirective.dfg(next_addr=7, targets=(3, 4)),
        )])
        part = ControlFlowPart(0, program, t_config=1)
        part.receive(CtrlMsg(0, 1))
        msgs = part.step()
        assert {(m.dst_pe, m.addr) for m in msgs} == {(3, 7), (4, 7)}

    def test_branch_mode_steering(self):
        program = _program_with([TriggerEntry(
            1,
            DataInstruction.compute(
                Opcode.LT, (Operand.port(0), Operand.imm(5)),
                (Dest.control(),),
            ),
            ControlDirective.branch(true_addr=2, false_addr=3, targets=(9,)),
        )])
        part = ControlFlowPart(0, program, t_config=1)
        part.receive(CtrlMsg(0, 1))
        part.step()
        taken = part.on_branch_result(True)
        not_taken = part.on_branch_result(False)
        assert taken[0].addr == 2 and taken[0].steer
        assert not_taken[0].addr == 3

    def test_loop_mode_holds_then_releases(self):
        program = _program_with([
            TriggerEntry(
                1,
                DataInstruction.loop(
                    Operand.imm(0), Operand.imm(4), Operand.imm(1), ()
                ),
                ControlDirective.loop(exit_addr=9, exit_targets=(16,)),
            ),
            TriggerEntry(2, DataInstruction.nop()),
        ])
        part = ControlFlowPart(0, program, t_config=1)
        part.receive(CtrlMsg(0, 1))
        part.step()
        assert part.loop_holding
        part.receive(CtrlMsg(0, 2))   # queued behind the loop
        part.step()
        assert part.current_addr == 1  # still the loop
        exit_msgs = part.on_loop_exit()
        assert exit_msgs[0].addr == 9 and exit_msgs[0].dst_pe == 16
        part.step()  # now free to start configuring addr 2
        assert part.configuring or part.current_addr == 2

    def test_full_pending_fifo_rejects(self):
        program = _program_with([
            TriggerEntry(a, DataInstruction.nop()) for a in range(1, 6)
        ])
        part = ControlFlowPart(0, program, t_config=1, fifo_depth=2)
        part.loop_holding = True  # force queueing
        assert part.receive(CtrlMsg(0, 1))
        assert part.receive(CtrlMsg(0, 2))
        assert not part.receive(CtrlMsg(0, 3))


class TestDataFlowPart:
    def test_compute_firing(self):
        part = DataFlowPart(0, t_execute=2)
        inst = DataInstruction.compute(
            Opcode.ADD, (Operand.port(0), Operand.imm(10)), (Dest.reg(1),)
        )
        part.push_token(0, 5)
        assert part.can_fire(inst)
        part.issue(inst, cycle=0)
        assert part.complete(1) == []
        outcomes = part.complete(2)
        assert outcomes[0].value == 15
        assert part.regs[1] == 15

    def test_cannot_fire_without_tokens(self):
        part = DataFlowPart(0, t_execute=2)
        inst = DataInstruction.compute(
            Opcode.NEG, (Operand.port(2),), ()
        )
        assert not part.can_fire(inst)

    def test_pipelined_issue(self):
        part = DataFlowPart(0, t_execute=2)
        inst = DataInstruction.compute(
            Opcode.ADD, (Operand.port(0), Operand.imm(1)), ()
        )
        part.push_token(0, 10)
        part.push_token(0, 20)
        part.issue(inst, cycle=0)
        part.issue(inst, cycle=1)  # back-to-back (pipelined FU)
        assert [o.value for o in part.complete(2)] == [11]
        assert [o.value for o in part.complete(3)] == [21]

    def test_loop_operator_stream(self):
        part = DataFlowPart(0, t_execute=1)
        inst = DataInstruction.loop(
            Operand.imm(0), Operand.imm(3), Operand.imm(1), ()
        )
        values = []
        cycle = 0
        while part.can_fire(inst):
            part.issue(inst, cycle)
            cycle += 1
            values.extend(o.value for o in part.complete(cycle))
        assert values == [0, 1, 2]
        assert part.loop_exhausted
        outcomes = part.complete(cycle + 1)
        assert not part.can_fire(inst)

    def test_zero_trip_loop_exits_immediately(self):
        part = DataFlowPart(0, t_execute=1)
        inst = DataInstruction.loop(
            Operand.imm(5), Operand.imm(5), Operand.imm(1), ()
        )
        part.issue(inst, 0)
        outcomes = part.complete(1)
        assert outcomes[0].loop_exit
        assert outcomes[0].dests == ()

    def test_loop_rearm(self):
        part = DataFlowPart(0, t_execute=1)
        inst = DataInstruction.loop(
            Operand.imm(0), Operand.imm(2), Operand.imm(1), ()
        )
        while part.can_fire(inst):
            part.issue(inst, 0)
        part.rearm_loop()
        assert part.can_fire(inst)

    def test_branch_result_to_control(self):
        part = DataFlowPart(0, t_execute=1)
        inst = DataInstruction.compute(
            Opcode.LT, (Operand.imm(1), Operand.imm(2)), (Dest.control(),)
        )
        part.issue(inst, 0)
        outcome = part.complete(1)[0]
        assert outcome.branch_result is True

    def test_store_outcome(self):
        part = DataFlowPart(0, t_execute=1)
        inst = DataInstruction.store(3, Operand.imm(7), Operand.imm(99))
        part.issue(inst, 0)
        outcome = part.complete(1)[0]
        assert outcome.store == (3, 7, 99)
