"""Property-style round-trip tests for the ISA encoder.

Random *valid* instructions — drawn across many seeds from the full
operand/destination/directive space, including the field-width extremes —
must satisfy ``decode(encode(x)) == x`` field for field.  The exhaustive
hand-written cases live in test_isa.py; this file hammers the space the
hand-written cases cannot enumerate.
"""

from __future__ import annotations

import random

import pytest

from repro.ir.ops import Opcode, op_info
from repro.isa.control import ControlDirective, SenderMode
from repro.isa.data import DataInstruction, DataKind
from repro.isa.encoding import (
    decode_entry,
    decode_program,
    encode_entry,
    encode_program,
)
from repro.isa.operands import (
    Dest,
    DestKind,
    IMM_BITS,
    N_PORTS,
    N_REGS,
    Operand,
    OperandKind,
)
from repro.isa.program import ArrayProgram, MAX_ADDR, TriggerEntry

IMM_LO = -(1 << (IMM_BITS - 1))
IMM_HI = (1 << (IMM_BITS - 1)) - 1

#: opcodes a COMPUTE instruction may carry (FU ops that are not memory)
COMPUTE_OPCODES = [
    op for op in Opcode
    if op_info(op).needs_fu and not op_info(op).is_memory
]


def random_operand(rng: random.Random) -> Operand:
    kind = rng.choice(list(OperandKind))
    if kind is OperandKind.PORT:
        return Operand.port(rng.randrange(N_PORTS))
    if kind is OperandKind.REG:
        return Operand.reg(rng.randrange(N_REGS))
    # Bias towards the extremes: they exercise the bias encoding.
    value = rng.choice(
        [IMM_LO, IMM_HI, -1, 0, 1, rng.randint(IMM_LO, IMM_HI)]
    )
    return Operand.imm(value)


def random_dest(rng: random.Random) -> Dest:
    kind = rng.choice(list(DestKind))
    if kind is DestKind.PE_PORT:
        return Dest.pe_port(rng.randrange(256), rng.randrange(N_PORTS))
    if kind is DestKind.REG:
        return Dest.reg(rng.randrange(N_REGS))
    return Dest(kind)


def random_dests(rng: random.Random, lo: int = 0) -> tuple:
    return tuple(
        random_dest(rng) for _ in range(rng.randint(lo, 4))
    )


def random_data(rng: random.Random) -> DataInstruction:
    kind = rng.choice(list(DataKind))
    if kind is DataKind.COMPUTE:
        opcode = rng.choice(COMPUTE_OPCODES)
        srcs = tuple(
            random_operand(rng) for _ in range(op_info(opcode).arity)
        )
        return DataInstruction.compute(opcode, srcs, random_dests(rng))
    if kind is DataKind.LOAD:
        return DataInstruction.load(
            rng.randrange(64), random_operand(rng), random_dests(rng)
        )
    if kind is DataKind.STORE:
        return DataInstruction.store(
            rng.randrange(64), random_operand(rng), random_operand(rng)
        )
    if kind is DataKind.LOOP:
        return DataInstruction.loop(
            random_operand(rng), random_operand(rng), random_operand(rng),
            random_dests(rng),
        )
    return DataInstruction.nop()


def random_targets(rng: random.Random) -> tuple:
    # 0 targets and the 8-target maximum both matter for the count field.
    count = rng.choice([0, 8, rng.randint(0, 8)])
    return tuple(rng.randrange(256) for _ in range(count))


def random_directive(rng: random.Random) -> ControlDirective:
    mode = rng.choice(list(SenderMode))
    priority = rng.randrange(16)
    if mode is SenderMode.DFG:
        return ControlDirective.dfg(
            rng.randrange(MAX_ADDR), random_targets(rng), priority
        )
    if mode is SenderMode.BRANCH:
        return ControlDirective.branch(
            rng.randrange(MAX_ADDR), rng.randrange(MAX_ADDR),
            random_targets(rng), priority,
        )
    if mode is SenderMode.LOOP:
        return ControlDirective.loop(
            rng.randrange(MAX_ADDR), random_targets(rng), priority
        )
    return ControlDirective.none()


def random_entry(rng: random.Random) -> TriggerEntry:
    return TriggerEntry(
        rng.randrange(MAX_ADDR), random_data(rng), random_directive(rng)
    )


@pytest.mark.parametrize("seed", range(200))
def test_entry_roundtrip(seed):
    rng = random.Random(seed)
    entry = random_entry(rng)
    word = encode_entry(entry)
    decoded = decode_entry(word)
    assert decoded.addr == entry.addr
    assert decoded.data == entry.data
    assert decoded.control == entry.control


@pytest.mark.parametrize("seed", range(20))
def test_program_roundtrip(seed):
    rng = random.Random(1000 + seed)
    n_pes = rng.randint(1, 16)
    program = ArrayProgram(n_pes)
    base = 0
    for array_id in range(rng.randint(0, 4)):
        length = rng.randint(1, 32)
        program.declare_array(array_id, f"arr{array_id}", base, length)
        base += length
    for pe in range(n_pes):
        used = set()
        for _ in range(rng.randint(0, 6)):
            entry = random_entry(rng)
            if entry.addr in used:
                continue
            used.add(entry.addr)
            program.program_for(pe).add(entry)
        if used:
            program.set_initial(pe, rng.choice(sorted(used)))

    image = encode_program(program)
    decoded = decode_program(image)

    assert decoded.n_pes == program.n_pes
    assert decoded.initial_addrs == program.initial_addrs
    assert decoded.array_table == program.array_table
    assert set(decoded.pe_programs) == set(program.pe_programs)
    for pe, original in program.pe_programs.items():
        assert list(decoded.pe_programs[pe]) == list(original)


def test_immediate_extremes_roundtrip():
    """Both ends of the biased 20-bit immediate field survive exactly."""
    for value in (IMM_LO, IMM_LO + 1, -1, 0, 1, IMM_HI - 1, IMM_HI):
        entry = TriggerEntry(0, DataInstruction.compute(
            Opcode.ADD, (Operand.imm(value), Operand.port(0)), ()
        ))
        assert decode_entry(encode_entry(entry)).data.srcs[0].value == value
