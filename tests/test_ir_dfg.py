"""Unit tests for the per-block data flow graph."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode


def build_chain(length: int) -> DFG:
    dfg = DFG()
    node = dfg.const(1)
    prev = dfg.input("x")
    for _ in range(length):
        prev = dfg.add(Opcode.ADD, (prev, node))
    return dfg


class TestConstruction:
    def test_add_returns_dense_ids(self):
        dfg = DFG()
        a = dfg.const(1)
        b = dfg.const(2)
        c = dfg.add(Opcode.ADD, (a, b))
        assert [a, b, c] == [0, 1, 2]

    def test_const_deduplicated(self):
        dfg = DFG()
        assert dfg.const(7) == dfg.const(7)
        assert dfg.const(7) != dfg.const(8)

    def test_input_deduplicated(self):
        dfg = DFG()
        assert dfg.input("v") == dfg.input("v")
        assert dfg.input("v") != dfg.input("w")

    def test_arity_mismatch_raises(self):
        dfg = DFG()
        a = dfg.const(1)
        with pytest.raises(IRError):
            dfg.add(Opcode.ADD, (a,))

    def test_dangling_operand_raises(self):
        dfg = DFG()
        with pytest.raises(IRError):
            dfg.add(Opcode.NEG, (5,))

    def test_memory_requires_array(self):
        dfg = DFG()
        a = dfg.const(0)
        with pytest.raises(IRError):
            dfg.add(Opcode.LOAD, (a,))

    def test_store_has_no_result_consumers(self):
        dfg = DFG()
        a = dfg.const(0)
        v = dfg.const(42)
        s = dfg.add(Opcode.STORE, (a, v), array="mem")
        assert dfg.consumers()[s] == []


class TestQueries:
    def test_fu_nodes_exclude_meta(self):
        dfg = DFG()
        a = dfg.const(1)
        b = dfg.input("x")
        dfg.add(Opcode.ADD, (a, b))
        assert dfg.op_count == 1
        assert len(dfg) == 3

    def test_live_ins_in_first_use_order(self):
        dfg = DFG()
        dfg.input("b")
        dfg.input("a")
        assert dfg.live_ins == ["b", "a"]

    def test_critical_path_of_chain(self):
        dfg = build_chain(5)
        assert dfg.critical_path_length() == 10  # 5 ADDs x 2 cycles

    def test_critical_path_empty(self):
        assert DFG().critical_path_length() == 0

    def test_depth_of_intermediate(self):
        dfg = build_chain(3)
        assert dfg.depth_of(len(dfg.nodes) - 1) == 6

    def test_consumers(self):
        dfg = DFG()
        a = dfg.const(1)
        b = dfg.input("x")
        c = dfg.add(Opcode.ADD, (a, b))
        d = dfg.add(Opcode.MUL, (c, c))
        assert dfg.consumers()[c] == [d, d]

    def test_op_histogram(self):
        dfg = build_chain(4)
        assert dfg.op_histogram() == {Opcode.ADD: 4}

    def test_memory_and_nonlinear_counts(self):
        dfg = DFG()
        a = dfg.const(0)
        dfg.add(Opcode.LOAD, (a,), array="m")
        x = dfg.input("x")
        dfg.add(Opcode.EXP, (x,))
        assert dfg.memory_op_count() == 1
        assert dfg.nonlinear_op_count() == 1

    def test_validate_passes_on_well_formed(self):
        build_chain(3).validate()


class TestProperties:
    @given(st.integers(1, 40))
    def test_chain_critical_path_scales(self, length):
        assert build_chain(length).critical_path_length() == 2 * length

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    def test_const_cache_is_injective(self, values):
        dfg = DFG()
        ids = {}
        for value in values:
            node = dfg.const(value)
            if value in ids:
                assert ids[value] == node
            ids[value] = node
        assert len({dfg.node(i).value for i in ids.values()}) == len(ids)
